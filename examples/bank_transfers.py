#!/usr/bin/env python
"""Fault tolerance demo: a replicated bank surviving a replica crash.

Accounts live in a :class:`~repro.apps.bank.BankService` replicated over a
3-replica Multi-Paxos cluster (f = 1).  Client threads fire concurrent
transfers between random accounts — which the lock-free scheduler overlaps
whenever they touch disjoint accounts — while one replica is crash-stopped
mid-run.  At the end the surviving replicas must agree and the total money
must be conserved.

Run:  python examples/bank_transfers.py
"""

import random
import threading
import time

from repro.apps import BankService
from repro.smr import ClusterConfig, ThreadedCluster

N_ACCOUNTS = 20
INITIAL_BALANCE = 1_000
N_CLIENTS = 6
TRANSFERS_PER_CLIENT = 40


def main() -> None:
    config = ClusterConfig(
        service_factory=BankService,
        n_replicas=3,
        cos_algorithm="lock-free",
        workers=4,
        # the crashed replica stops answering: rely on the other replicas
        client_timeout=1.0,
    )
    with ThreadedCluster(config) as cluster:
        accounts = [f"acct-{i}" for i in range(N_ACCOUNTS)]
        funding = cluster.client()
        funding.execute_batch(
            [BankService.deposit(account, INITIAL_BALANCE)
             for account in accounts]
        )
        expected_total = N_ACCOUNTS * INITIAL_BALANCE
        print(f"funded {N_ACCOUNTS} accounts with {expected_total} total")

        def transfer_loop(index: int) -> None:
            rng = random.Random(index)
            client = cluster.client(contact=index % 3)
            for _ in range(TRANSFERS_PER_CLIENT):
                src, dst = rng.sample(accounts, 2)
                client.execute(
                    BankService.transfer(src, dst, rng.randint(1, 50)))

        threads = [
            threading.Thread(target=transfer_loop, args=(i,), daemon=True)
            for i in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()

        time.sleep(0.15)
        print("crashing replica 2 mid-run (f = 1 tolerated)...")
        cluster.crash(2)

        for thread in threads:
            thread.join(timeout=30.0)
        time.sleep(0.4)  # drain

        survivors = [cluster.replicas[i].service for i in (0, 1)]
        totals = [service.total_money() for service in survivors]
        snapshots = [service.snapshot() for service in survivors]
        print(f"surviving replica totals: {totals}")
        print(f"survivors agree: {snapshots[0] == snapshots[1]}")
        print(f"money conserved: {totals[0] == expected_total}")
        if snapshots[0] != snapshots[1] or totals[0] != expected_total:
            raise SystemExit("invariant violated — this is a bug")
        print("done: service stayed live and consistent through the crash")


if __name__ == "__main__":
    main()
