#!/usr/bin/env python
"""Scheduler comparison: lock-free DAG vs class-based (early) scheduling.

The paper's dependency DAG tracks pairwise conflicts at insert time; the
related-work alternative it cites (early scheduling, Alchieri et al. 2018)
partitions commands into conflict classes known a priori — O(#classes)
insert, but commands sharing a class serialize even when they commute.

This example runs the same simulated workload through both schedulers and
prints an ASCII chart of throughput vs write percentage, showing the
trade-off: with a single class the readers/writers workload fully
serializes; sharding recovers read parallelism; the DAG needs no such
tuning but pays the per-insert conflict scan.

Run:  python examples/class_scheduling.py
"""

from repro.bench import FigureData, plot_figure
from repro.bench.harness import StandaloneConfig, run_standalone
from repro.sim import LIGHT


def main() -> None:
    figure = FigureData(
        name="class-vs-dag",
        title="Lock-free DAG vs class-based scheduling "
              "(light commands, 8 workers)",
        x_label="write %",
        y_label="kops/sec",
    )
    variants = (
        ("lock-free DAG", "lock-free", 1),
        ("class-based, 1 shard", "class-based", 1),
        ("class-based, 16 shards", "class-based", 16),
    )
    for label, algorithm, shards in variants:
        for write_pct in (0, 5, 15, 25, 50, 100):
            result = run_standalone(StandaloneConfig(
                algorithm=algorithm,
                workers=8,
                profile=LIGHT,
                write_pct=float(write_pct),
                class_shards=shards,
                measure_ops=2500,
                warm_ops=250,
            ))
            figure.add_point("light", label, write_pct, result.kops)
    print(plot_figure(figure))
    one_shard = dict(figure.panels["light"]["class-based, 1 shard"])
    sharded = dict(figure.panels["light"]["class-based, 16 shards"])
    dag = dict(figure.panels["light"]["lock-free DAG"])
    print(f"read-only: DAG {dag[0]:.0f} kops/s vs 1-shard classes "
          f"{one_shard[0]:.0f} (serialized!) vs 16-shard {sharded[0]:.0f}")
    print("take-away: class scheduling needs workload-aware sharding to "
          "match the DAG's concurrency; the DAG discovers it per command.")


if __name__ == "__main__":
    main()
