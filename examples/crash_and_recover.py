#!/usr/bin/env python
"""Crash recovery demo: a replica dies, rejoins, and catches up.

A 3-replica cluster (stable acceptor storage enabled) serves a KV store
under continuous client traffic.  Replica 2 is crash-stopped mid-run, the
cluster keeps serving with f = 1, then the replica is rebuilt from a live
peer's checkpoint (quiesce -> snapshot + dedup table -> rejoin at
checkpoint.instance + 1) and pulls the instances it missed through the
heartbeat anti-entropy of the Multi-Paxos layer.

Run:  python examples/crash_and_recover.py
"""

import threading
import time

from repro.apps import KVStoreService
from repro.smr import ClusterConfig, ThreadedCluster


def main() -> None:
    config = ClusterConfig(
        service_factory=KVStoreService,
        n_replicas=3,
        cos_algorithm="lock-free",
        workers=4,
        stable_storage=True,       # acceptors survive their crash
        heartbeat_interval=0.03,
        leader_timeout=0.15,
    )
    with ThreadedCluster(config) as cluster:
        stop = threading.Event()
        written = []

        def traffic() -> None:
            client = cluster.client("writer")
            index = 0
            while not stop.is_set():
                client.execute(KVStoreService.put(f"key-{index % 40}", index))
                written.append(index)
                index += 1

        thread = threading.Thread(target=traffic, daemon=True)
        thread.start()

        time.sleep(0.3)
        print(f"{len(written)} writes in; crashing replica 2 ...")
        cluster.crash(2)

        time.sleep(0.3)
        print(f"{len(written)} writes in; recovering replica 2 from a "
              f"peer checkpoint ...")
        cluster.restart_replica(2)

        time.sleep(0.4)
        stop.set()
        thread.join(timeout=5)
        time.sleep(0.3)  # drain executions everywhere

        # The recovered replica must converge to the survivors' state.
        deadline = time.time() + 10
        while time.time() < deadline:
            snapshots = [s.snapshot() for s in cluster.services()]
            if snapshots[0] == snapshots[1] == snapshots[2]:
                break
            time.sleep(0.05)
        snapshots = [s.snapshot() for s in cluster.services()]
        agree = snapshots[0] == snapshots[1] == snapshots[2]
        print(f"total writes: {len(written)}; replicas converged: {agree}")
        print(f"recovered replica holds {len(snapshots[2])} keys "
              f"(executed {cluster.replicas[2].executed} commands "
              f"after rejoin)")
        if not agree:
            raise SystemExit("replica divergence after recovery — a bug")
        print("done: crash, continued service, and catch-up all worked")


if __name__ == "__main__":
    main()
