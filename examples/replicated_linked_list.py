#!/usr/bin/env python
"""The paper's linked-list service, end to end (paper §7.2).

Replays the paper's workload on a real threaded deployment: a 3-replica
cluster serving a linked list, many closed-loop client threads issuing a
read/write mix, and a schedulable choice of COS algorithm.  Prints the
measured throughput per scheduler and verifies replica consistency.

Under CPython this demonstrates *correct concurrent scheduling*, not
multi-core speedup (see DESIGN.md §2); the simulated experiments in
benchmarks/ reproduce the paper's performance figures.

Run:  python examples/replicated_linked_list.py [write_pct] [clients]
"""

import sys
import threading
import time

from repro.apps import LinkedListService
from repro.smr import ClusterConfig, ThreadedCluster
from repro.workload import WorkloadGenerator


def run_clients(cluster: ThreadedCluster, n_clients: int, write_pct: float,
                duration: float) -> int:
    """Closed-loop clients hammering the cluster; returns commands done."""
    done = [0] * n_clients
    stop = threading.Event()

    def client_loop(index: int) -> None:
        client = cluster.client(contact=index % cluster.config.n_replicas)
        workload = WorkloadGenerator(write_pct, key_space=2_000,
                                     seed=100 + index)
        while not stop.is_set():
            batch = workload.commands(10)
            client.execute_batch(batch)
            done[index] += len(batch)

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=2.0)
    return sum(done)


def main() -> None:
    write_pct = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    n_clients = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    duration = 2.0

    for algorithm in ("sequential", "coarse-grained", "fine-grained",
                      "lock-free"):
        config = ClusterConfig(
            service_factory=lambda: LinkedListService(initial_size=1_000),
            cos_algorithm=algorithm,
            workers=1 if algorithm == "sequential" else 4,
        )
        with ThreadedCluster(config) as cluster:
            executed = run_clients(cluster, n_clients, write_pct, duration)
            time.sleep(0.3)  # drain in-flight executions
            snapshots = [sorted(s.snapshot()) for s in cluster.services()]
            agree = all(snap == snapshots[0] for snap in snapshots)
            print(
                f"{algorithm:15s} {executed / duration:10.0f} cmds/s  "
                f"(write_pct={write_pct}%, clients={n_clients}, "
                f"replicas consistent: {agree})"
            )
            if not agree:
                raise SystemExit("replica divergence — this is a bug")


if __name__ == "__main__":
    main()
