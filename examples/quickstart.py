#!/usr/bin/env python
"""Quickstart: a fault-tolerant replicated key-value store in ~30 lines.

Spins up an in-process cluster of 3 replicas (Multi-Paxos ordering,
lock-free parallel scheduler with 4 workers each), runs a few commands
through a client, and shows that all replicas converge to the same state.

Run:  python examples/quickstart.py
"""

from repro.apps import KVStoreService
from repro.smr import ClusterConfig, ThreadedCluster


def main() -> None:
    config = ClusterConfig(
        service_factory=KVStoreService,
        n_replicas=3,
        cos_algorithm="lock-free",   # the paper's best scheduler
        workers=4,
    )
    with ThreadedCluster(config) as cluster:
        client = cluster.client()

        # Writes on different keys do not conflict, so the replicas'
        # worker pools execute them concurrently — yet every replica
        # applies conflicting commands in the same order.
        client.execute(KVStoreService.put("language", "python"))
        client.execute(KVStoreService.put("paper", "middleware-2019"))
        previous = client.execute(KVStoreService.put("language", "java"))
        print(f"put returned previous value: {previous!r}")

        value = client.execute(KVStoreService.get("language"))
        print(f"get('language') -> {value!r}")

        swapped = client.execute(
            KVStoreService.cas("paper", "middleware-2019", "cos"))
        print(f"cas succeeded: {swapped}")

        # A batch travels as one atomic-broadcast payload (paper §7.1).
        batch = [KVStoreService.put(f"key-{i}", i) for i in range(10)]
        client.execute_batch(batch)

        import time
        time.sleep(0.2)  # let trailing executions land on all replicas
        snapshots = [service.snapshot() for service in cluster.services()]
        agree = snapshots[0] == snapshots[1] == snapshots[2]
        print(f"replicas consistent: {agree}; store size: {len(snapshots[0])}")


if __name__ == "__main__":
    main()
