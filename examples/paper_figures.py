#!/usr/bin/env python
"""Simulation study: regenerate the paper's figures as ASCII tables.

Runs the same experiment harnesses as the benchmark suite and prints each
figure.  In quick mode (default) this takes a couple of minutes; pass
``--full`` (or set REPRO_BENCH_FULL=1) for the paper's complete grids.

Run:  python examples/paper_figures.py [--full] [fig2 fig3 fig4 fig5 fig6]
"""

import sys
import time

from repro.bench import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    print_figure,
)


def main() -> None:
    args = [arg for arg in sys.argv[1:]]
    quick = "--full" not in args
    wanted = {arg for arg in args if arg.startswith("fig")} or {
        "fig2", "fig3", "fig4", "fig5", "fig6"}

    fig2_data = fig4_data = None
    started = time.time()
    if wanted & {"fig2", "fig3"}:
        fig2_data = figure2(quick=quick)
        if "fig2" in wanted:
            print_figure(fig2_data)
    if "fig3" in wanted:
        print_figure(figure3(quick=quick, fig2=fig2_data))
    if wanted & {"fig4", "fig5"}:
        fig4_data = figure4(quick=quick)
        if "fig4" in wanted:
            print_figure(fig4_data)
    if "fig5" in wanted:
        print_figure(figure5(quick=quick, fig4=fig4_data))
    if "fig6" in wanted:
        print_figure(figure6(quick=quick))
    mode = "quick" if quick else "full"
    print(f"[{mode} mode, {time.time() - started:.0f}s — compare shapes "
          f"against EXPERIMENTS.md]")


if __name__ == "__main__":
    main()
