"""Setup shim so `pip install -e .` works without network/wheel.

All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
