"""Tests for the simulated runtime: processes, primitives, cost charging."""

import pytest

from repro.core.effects import (
    Acquire,
    Cas,
    Down,
    Load,
    Release,
    Signal,
    Store,
    Up,
    Wait,
    Work,
)
from repro.errors import SimulationError
from repro.sim import SimRuntime, Simulator, SyncCosts

ZERO = SyncCosts(lock_fast=0, lock_remote=0, handoff=0, park=0, wake=0,
                 atomic_load=0, atomic_rmw=0, semaphore=0, signal=0)


def make(costs=ZERO, **kwargs):
    sim = Simulator()
    return sim, SimRuntime(sim, costs=costs, **kwargs)


class TestProcesses:
    def test_process_runs_to_completion(self):
        sim, runtime = make()

        def proc():
            yield Work(1.0)
            yield Work(2.0)
            return "done"

        process = runtime.spawn(proc())
        sim.run()
        assert process.done
        assert process.result == "done"
        assert sim.now == 3.0

    def test_work_advances_virtual_time(self):
        sim, runtime = make()
        stamps = []

        def proc():
            yield Work(0.5)
            stamps.append(sim.now)
            yield Work(0.25)
            stamps.append(sim.now)

        runtime.spawn(proc())
        sim.run()
        assert stamps == [0.5, 0.75]

    def test_processes_overlap_in_virtual_time(self):
        sim, runtime = make()

        def proc():
            yield Work(10.0)

        for _ in range(8):
            runtime.spawn(proc())
        sim.run()
        assert sim.now == 10.0  # 8 x 10s of work in 10 virtual seconds

    def test_on_done_callback(self):
        sim, runtime = make()
        seen = []

        def proc():
            yield Work(1.0)
            return 5

        process = runtime.spawn(proc())
        process.on_done(lambda p: seen.append(p.result))
        sim.run()
        assert seen == [5]

    def test_exception_propagates(self):
        sim, runtime = make()

        def proc():
            yield Work(1.0)
            raise RuntimeError("algorithm bug")

        process = runtime.spawn(proc())
        with pytest.raises(RuntimeError):
            sim.run()
        assert isinstance(process.error, RuntimeError)

    def test_livelock_detection(self):
        sim, runtime = make()

        def spinner():
            while True:
                yield Load(runtime.atomic(0))

        runtime.spawn(spinner())
        with pytest.raises(SimulationError, match="livelock"):
            sim.run()


class TestMutex:
    def test_mutual_exclusion_in_virtual_time(self):
        costs = SyncCosts(lock_fast=0, lock_remote=0, handoff=0, park=0,
                          wake=0, atomic_load=0, atomic_rmw=0, semaphore=0,
                          signal=0)
        sim, runtime = make(costs)
        mutex = runtime.mutex()
        intervals = []

        def proc():
            yield Acquire(mutex)
            start = sim.now
            yield Work(1.0)
            intervals.append((start, sim.now))
            yield Release(mutex)

        for _ in range(3):
            runtime.spawn(proc())
        sim.run()
        assert len(intervals) == 3
        ordered = sorted(intervals)
        for (_, end), (start, _) in zip(ordered, ordered[1:]):
            assert start >= end  # critical sections never overlap

    def test_handoff_cost_charged(self):
        costs = SyncCosts(lock_fast=0, lock_remote=0, handoff=5.0, park=0,
                          wake=0, atomic_load=0, atomic_rmw=0, semaphore=0,
                          signal=0)
        sim, runtime = make(costs)
        mutex = runtime.mutex()

        def proc():
            yield Acquire(mutex)
            yield Work(1.0)
            yield Release(mutex)

        runtime.spawn(proc())
        runtime.spawn(proc())
        sim.run()
        # Second process waits for first (1.0) then pays the 5.0 hand-off.
        assert sim.now == pytest.approx(7.0)

    def test_remote_acquire_cost(self):
        costs = SyncCosts(lock_fast=1.0, lock_remote=10.0, handoff=0, park=0,
                          wake=0, atomic_load=0, atomic_rmw=0, semaphore=0,
                          signal=0)
        sim, runtime = make(costs)
        mutex = runtime.mutex()

        def reacquire():
            yield Acquire(mutex)   # first touch: remote (10)
            yield Release(mutex)   # release: fast (1)
            yield Acquire(mutex)   # same holder: fast (1)
            yield Release(mutex)   # (1)

        runtime.spawn(reacquire())
        sim.run()
        assert sim.now == pytest.approx(13.0)

    def test_fifo_fairness(self):
        sim, runtime = make()
        mutex = runtime.mutex()
        order = []

        def proc(tag, delay):
            yield Work(delay)
            yield Acquire(mutex)
            order.append(tag)
            yield Work(10.0)
            yield Release(mutex)

        for tag, delay in (("a", 0.0), ("b", 1.0), ("c", 2.0)):
            runtime.spawn(proc(tag, delay))
        sim.run()
        assert order == ["a", "b", "c"]


class TestSemaphore:
    def test_down_blocks_until_up(self):
        sim, runtime = make()
        sem = runtime.semaphore(0)
        stamps = []

        def consumer():
            yield Down(sem)
            stamps.append(sim.now)

        def producer():
            yield Work(4.0)
            yield Up(sem)

        runtime.spawn(consumer())
        runtime.spawn(producer())
        sim.run()
        assert stamps == [4.0]

    def test_initial_value_consumed_without_blocking(self):
        sim, runtime = make()
        sem = runtime.semaphore(2)
        count = []

        def consumer():
            yield Down(sem)
            count.append(sim.now)

        runtime.spawn(consumer())
        runtime.spawn(consumer())
        sim.run()
        assert count == [0.0, 0.0]

    def test_bulk_up_wakes_many(self):
        sim, runtime = make()
        sem = runtime.semaphore(0)
        woken = []

        def consumer(tag):
            yield Down(sem)
            woken.append(tag)

        for tag in range(3):
            runtime.spawn(consumer(tag))

        def producer():
            yield Work(1.0)
            yield Up(sem, 3)

        runtime.spawn(producer())
        sim.run()
        assert sorted(woken) == [0, 1, 2]

    def test_wake_cost_charged_to_caller(self):
        costs = SyncCosts(lock_fast=0, lock_remote=0, handoff=0, park=0,
                          wake=7.0, atomic_load=0, atomic_rmw=0, semaphore=0,
                          signal=0)
        sim, runtime = make(costs)
        sem = runtime.semaphore(0)
        producer_done = []

        def consumer():
            yield Down(sem)

        def producer():
            yield Up(sem)      # wakes the parked consumer: pays 7
            yield Work(1.0)
            producer_done.append(sim.now)

        runtime.spawn(consumer())
        runtime.spawn(producer())
        sim.run()
        assert producer_done == [pytest.approx(8.0)]


class TestCondition:
    def test_wait_signal_cycle(self):
        sim, runtime = make()
        mutex = runtime.mutex()
        cond = runtime.condition(mutex)
        state = {"ready": False}
        observed = []

        def waiter():
            yield Acquire(mutex)
            while not state["ready"]:
                yield Wait(cond)
            observed.append(sim.now)
            yield Release(mutex)

        def signaller():
            yield Work(3.0)
            yield Acquire(mutex)
            state["ready"] = True
            yield Signal(cond)
            yield Release(mutex)

        runtime.spawn(waiter())
        runtime.spawn(signaller())
        sim.run()
        assert observed == [3.0]

    def test_signal_without_mutex_raises(self):
        sim, runtime = make()
        mutex = runtime.mutex()
        cond = runtime.condition(mutex)

        def bad():
            yield Signal(cond)

        runtime.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestAtomics:
    def test_load_store_cas(self):
        sim, runtime = make()
        cell = runtime.atomic(5)
        results = []

        def proc():
            results.append((yield Load(cell)))
            yield Store(cell, 6)
            results.append((yield Cas(cell, 6, 7)))
            results.append((yield Cas(cell, 6, 8)))
            results.append((yield Load(cell)))

        runtime.spawn(proc())
        sim.run()
        assert results == [5, True, False, 7]


class TestPreemptionModes:
    def test_effect_mode_interleaves_finer(self):
        """In effect mode two counters interleave; in quantum mode one
        process's whole loop runs within a slice."""
        for mode, expect_interleaved in (("effect", True), ("quantum", False)):
            sim = Simulator()
            runtime = SimRuntime(sim, costs=ZERO, preemption=mode)
            cell = runtime.atomic(None)
            trace = []

            def proc(tag):
                for _ in range(5):
                    yield Store(cell, tag)
                    trace.append(tag)

            runtime.spawn(proc("a"))
            runtime.spawn(proc("b"))
            sim.run()
            interleaved = trace != sorted(trace)
            assert interleaved == expect_interleaved, (mode, trace)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            SimRuntime(Simulator(), preemption="bogus")

    def test_quantum_must_be_positive(self):
        with pytest.raises(SimulationError):
            SimRuntime(Simulator(), quantum=0)
