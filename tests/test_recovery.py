"""Tests for checkpointing, stable storage, and replica recovery."""

import time

import pytest

from repro.apps import KVStoreService, LinkedListService
from repro.broadcast.storage import InMemoryStableStore
from repro.broadcast import MultiPaxos, Accept, Prepare
from repro.core.command import Command
from repro.smr import ClusterConfig, ThreadedCluster
from repro.smr.checkpoint import Checkpoint, CheckpointError
from repro.smr.replica import ParallelReplica


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestStableStore:
    def test_round_trip(self):
        store = InMemoryStableStore()
        store.put("promised", (3, 1))
        store.put(("accepted", 4), ((3, 1), "v"))
        assert store.get("promised") == (3, 1)
        assert store.get("missing", "dflt") == "dflt"
        assert dict(store.items())[("accepted", 4)] == ((3, 1), "v")

    def test_backing_dict_shared(self):
        backing = {}
        InMemoryStableStore(backing).put("k", 1)
        assert InMemoryStableStore(backing).get("k") == 1


class TestPaxosPersistence:
    def test_promise_survives_restart(self):
        backing = {}
        node = MultiPaxos(1, 3, stable_store=InMemoryStableStore(backing))
        node.on_message(2, Prepare((5, 2)))
        rebuilt = MultiPaxos(1, 3, stable_store=InMemoryStableStore(backing))
        assert rebuilt.promised == (5, 2)
        # The reborn acceptor must still reject older ballots.
        actions = rebuilt.on_message(0, Prepare((1, 0)))
        from repro.broadcast import Nack, Send
        nacks = [a for a in actions if isinstance(a, Send)
                 and isinstance(a.msg, Nack)]
        assert nacks and nacks[0].msg.promised == (5, 2)

    def test_accepted_values_survive_restart(self):
        backing = {}
        node = MultiPaxos(1, 3, stable_store=InMemoryStableStore(backing))
        node.on_message(0, Accept((0, 0), 3, ("v",)))
        rebuilt = MultiPaxos(1, 3, stable_store=InMemoryStableStore(backing))
        assert rebuilt.accepted[3] == ((0, 0), ("v",))

    def test_restored_node_is_not_leader(self):
        backing = {}
        MultiPaxos(0, 3, stable_store=InMemoryStableStore(backing))
        rebuilt = MultiPaxos(0, 3, first_instance=0,
                             stable_store=InMemoryStableStore(backing))
        # A fresh store leaves node 0 leading; with *any* persisted promise
        # above its ballot it must not resume leadership blindly.
        store = InMemoryStableStore(backing)
        store.put("promised", (2, 1))
        rebuilt = MultiPaxos(0, 3, stable_store=store)
        assert not rebuilt.is_leader

    def test_first_instance_skips_prefix(self):
        node = MultiPaxos(1, 3, first_instance=10)
        assert node.next_deliver == 10
        from repro.broadcast import Decide
        actions = node.on_message(0, Decide(10, ("v",)))
        from repro.broadcast import Deliver
        delivered = [a for a in actions if isinstance(a, Deliver)]
        assert [(d.instance, d.payload) for d in delivered] == [(10, ("v",))]


class TestReplicaCheckpoint:
    def test_checkpoint_reflects_delivered_prefix(self):
        replica = ParallelReplica(0, KVStoreService(), workers=3)
        replica.start()
        try:
            commands = tuple(Command("put", (f"k{i}", i), writes=True)
                             for i in range(20))
            replica.on_deliver(7, commands)
            checkpoint = replica.take_checkpoint()
            assert checkpoint.instance == 7
            assert checkpoint.state == {f"k{i}": i for i in range(20)}
        finally:
            replica.stop()

    def test_checkpoint_includes_dedup(self):
        replica = ParallelReplica(0, KVStoreService(), workers=1)
        replica.start()
        try:
            command = Command("put", ("k", 1), client_id="c", request_id=4,
                              writes=True)
            replica.on_deliver(0, (command,))
            checkpoint = replica.take_checkpoint()
            assert checkpoint.dedup["c"] == (4, None)
        finally:
            replica.stop()

    def test_empty_checkpoint(self):
        replica = ParallelReplica(0, KVStoreService(), workers=1)
        replica.start()
        try:
            checkpoint = replica.take_checkpoint()
            assert checkpoint.instance == -1
            assert checkpoint.state == {}
        finally:
            replica.stop()

    def test_install_checkpoint_before_start(self):
        replica = ParallelReplica(0, KVStoreService(), workers=1)
        replica.install_checkpoint(Checkpoint(5, {"a": 1}, {"c": (2, "r")}))
        assert replica.last_instance == 5
        assert replica.service.snapshot() == {"a": 1}
        replica.start()
        try:
            # A duplicate of the checkpointed request must be skipped.
            duplicate = Command("put", ("a", 9), client_id="c", request_id=2,
                                writes=True)
            replica.on_deliver(6, (duplicate,))
            time.sleep(0.1)
            assert replica.service.snapshot() == {"a": 1}
        finally:
            replica.stop()

    def test_install_while_running_rejected(self):
        replica = ParallelReplica(0, KVStoreService(), workers=1)
        replica.start()
        try:
            with pytest.raises(CheckpointError):
                replica.install_checkpoint(Checkpoint(0, {}))
        finally:
            replica.stop()


class TestClusterRecovery:
    def _config(self):
        return ClusterConfig(
            service_factory=lambda: LinkedListService(initial_size=20),
            cos_algorithm="lock-free",
            workers=3,
            stable_storage=True,
            heartbeat_interval=0.03,
            leader_timeout=0.12,
        )

    def test_crashed_follower_rejoins_and_catches_up(self):
        with ThreadedCluster(self._config()) as cluster:
            client = cluster.client()
            client.execute(Command("add", (100,), writes=True))
            cluster.crash(2)
            for key in range(101, 111):
                client.execute(Command("add", (key,), writes=True))
            cluster.restart_replica(2)
            # New traffic plus heartbeat anti-entropy bring replica 2 level.
            client.execute(Command("add", (200,), writes=True))
            assert wait_for(
                lambda: sorted(cluster.replicas[2].service.snapshot())
                == sorted(cluster.replicas[0].service.snapshot()),
                timeout=10,
            )

    def test_recovered_replica_serves_reads(self):
        with ThreadedCluster(self._config()) as cluster:
            client = cluster.client()
            client.execute(Command("add", (55,), writes=True))
            cluster.crash(1)
            cluster.restart_replica(1)
            assert wait_for(lambda: cluster.nodes[1].running)
            assert client.execute(
                Command("contains", (55,), writes=False)) is True

    def test_restart_running_replica_rejected(self):
        from repro.errors import ConfigurationError
        with ThreadedCluster(self._config()) as cluster:
            with pytest.raises(ConfigurationError):
                cluster.restart_replica(0)

    def test_crash_leader_then_recover_it(self):
        with ThreadedCluster(self._config()) as cluster:
            client = cluster.client(contact=1)
            client.execute(Command("add", (300,), writes=True))
            cluster.crash(0)
            client.execute(Command("add", (301,), writes=True))
            cluster.restart_replica(0)
            client.execute(Command("add", (302,), writes=True))
            assert wait_for(
                lambda: sorted(cluster.replicas[0].service.snapshot())
                == sorted(cluster.replicas[1].service.snapshot()),
                timeout=10,
            )
