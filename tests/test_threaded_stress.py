"""Concurrency stress tests: Algorithm 1 on real threads.

Invariants checked for every scheduler:

- every command is executed exactly once (no losses, no duplicates);
- conflicting commands never overlap and execute in delivery order;
- the structure drains completely (no stuck workers).
"""

import pytest

from conftest import (
    GRAPH_ALGORITHMS,
    make_mixed_commands,
    make_threaded_cos,
    run_threaded_workload,
)
from repro.core import AlwaysConflicts, KeyedConflicts, ReadWriteConflicts
from repro.core.command import Command


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
@pytest.mark.parametrize("n_workers", (1, 4, 16))
def test_read_heavy_mix(algorithm, n_workers):
    cos = make_threaded_cos(algorithm, ReadWriteConflicts(), max_size=64)
    commands = make_mixed_commands(800, write_every=10)
    log = run_threaded_workload(cos, commands, n_workers)
    assert len(log.start) == len(commands)
    assert len(log.finish) == len(commands)
    log.assert_conflicts_ordered(commands, ReadWriteConflicts())


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_write_only_serializes(algorithm):
    cos = make_threaded_cos(algorithm, ReadWriteConflicts(), max_size=32)
    commands = make_mixed_commands(300, write_every=1)
    log = run_threaded_workload(cos, commands, n_workers=8)
    # Full serialization: execution order equals delivery order.
    assert log.order == [command.uid for command in commands]


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_always_conflicts_total_order(algorithm):
    cos = make_threaded_cos(algorithm, AlwaysConflicts(), max_size=16)
    commands = [Command("op", (i,), writes=False) for i in range(200)]
    log = run_threaded_workload(cos, commands, n_workers=6)
    assert log.order == [command.uid for command in commands]


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_keyed_conflicts(algorithm):
    relation = KeyedConflicts()
    cos = make_threaded_cos(algorithm, relation, max_size=64)
    commands = make_mixed_commands(600, write_every=3, key_space=8)
    log = run_threaded_workload(cos, commands, n_workers=8)
    log.assert_conflicts_ordered(commands, relation)


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_tiny_graph_capacity(algorithm):
    """A 2-slot graph forces constant insert blocking without deadlock."""
    cos = make_threaded_cos(algorithm, ReadWriteConflicts(), max_size=2)
    commands = make_mixed_commands(200, write_every=4)
    log = run_threaded_workload(cos, commands, n_workers=3)
    assert len(log.finish) == len(commands)
    log.assert_conflicts_ordered(commands, ReadWriteConflicts())


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_slow_execution(algorithm):
    """Nonzero execution time widens the windows races need to show up."""
    cos = make_threaded_cos(algorithm, ReadWriteConflicts(), max_size=32)
    commands = make_mixed_commands(120, write_every=5)
    log = run_threaded_workload(cos, commands, n_workers=8,
                                execute_ns=200_000)
    log.assert_conflicts_ordered(commands, ReadWriteConflicts())


@pytest.mark.parametrize("n_workers", (2, 8))
def test_sequential_cos_strict_order(n_workers):
    """The FIFO COS serializes even with many workers attached."""
    cos = make_threaded_cos("sequential", ReadWriteConflicts(), max_size=16)
    commands = make_mixed_commands(300, write_every=0)
    log = run_threaded_workload(cos, commands, n_workers=n_workers)
    assert log.order == [command.uid for command in commands]
