"""Tests for the class-based (early) scheduler."""

import threading

import pytest

from conftest import run_threaded_workload
from repro.core import ThreadedCOS, ThreadedRuntime
from repro.core.class_based import (
    ClassBasedCOS,
    ClassConflicts,
    read_write_classes,
)
from repro.core.command import Command
from repro.core.history import RecordingCOS, check_history


def keyed(command_key, writes=False):
    return Command("op", (command_key,), writes=writes)


def keyed_classes(command):
    return (command.args[0],)


def make(classes_of=keyed_classes, max_size=64):
    runtime = ThreadedRuntime()
    return ThreadedCOS(
        ClassBasedCOS(runtime, classes_of, max_size=max_size), runtime)


class TestSemantics:
    def test_same_class_serializes(self):
        cos = make()
        a, b = keyed("k"), keyed("k")
        cos.insert(a)
        cos.insert(b)
        handle = cos.get()
        assert cos.command_of(handle) is a
        got = []

        def getter():
            got.append(cos.command_of(cos.get()))

        thread = threading.Thread(target=getter, daemon=True)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # b blocked behind a
        cos.remove(handle)
        thread.join(timeout=5)
        assert got == [b]

    def test_different_classes_parallel(self):
        cos = make()
        a, b = keyed("x"), keyed("y")
        cos.insert(a)
        cos.insert(b)
        handles = [cos.get(), cos.get()]
        assert {cos.command_of(h).uid for h in handles} == {a.uid, b.uid}

    def test_multi_class_command_waits_for_all(self):
        cos = make(classes_of=lambda c: tuple(c.args))
        first = Command("op", ("x",))
        second = Command("op", ("y",))
        barrier = Command("op", ("x", "y"))
        cos.insert(first)
        cos.insert(second)
        cos.insert(barrier)
        h1, h2 = cos.get(), cos.get()
        cos.remove(h1)
        got = []

        def getter():
            got.append(cos.command_of(cos.get()))

        thread = threading.Thread(target=getter, daemon=True)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # barrier still waits for "y"
        cos.remove(h2)
        thread.join(timeout=5)
        assert got == [barrier]

    def test_command_with_no_classes_rejected(self):
        cos = make(classes_of=lambda c: ())
        with pytest.raises(ValueError):
            cos.insert(keyed("k"))

    def test_remove_wrong_node_rejected(self):
        cos = make()
        cos.insert(keyed("k"))
        cos.insert(keyed("k"))
        handle = cos.get()
        cos.remove(handle)
        with pytest.raises(LookupError):
            cos.remove(handle)  # already removed


class TestReadWriteClasses:
    def test_single_shard_model(self):
        classes_of = read_write_classes(shards=1)
        read = Command("contains", (5,), writes=False)
        write = Command("add", (5,), writes=True)
        assert classes_of(read) == (0,)
        assert classes_of(write) == (0,)

    def test_sharded_writes_touch_all(self):
        classes_of = read_write_classes(shards=4)
        write = Command("add", (5,), writes=True)
        assert classes_of(write) == (0, 1, 2, 3)
        read = Command("contains", (5,), writes=False)
        assert len(classes_of(read)) == 1

    def test_class_conflicts_relation(self):
        relation = ClassConflicts(read_write_classes(shards=4))
        write = Command("add", (1,), writes=True)
        read_a = Command("contains", (1,), writes=False)
        assert relation.conflicts(write, read_a)
        # Two reads conflict only if they land in the same shard.
        same = [Command("contains", (k,), writes=False) for k in range(16)]
        hits = sum(relation.conflicts(same[0], other) for other in same[1:])
        assert hits < 15  # sharding separates at least some reads


class TestStress:
    def test_invariants_under_threads(self):
        classes_of = lambda c: (c.args[0] % 7,)
        runtime = ThreadedRuntime()
        cos = RecordingCOS(ThreadedCOS(
            ClassBasedCOS(runtime, classes_of, max_size=32), runtime))
        commands = [Command("op", (i,)) for i in range(400)]

        def worker():
            while True:
                handle = cos.get()
                if cos.command_of(handle).op == "__stop__":
                    cos.remove(handle)
                    return
                cos.remove(handle)

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(6)]
        for thread in threads:
            thread.start()
        for command in commands:
            cos.insert(command)
        stops = [Command("__stop__", (i,)) for i in range(6)]
        for stop in stops:
            cos.insert(stop)
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        check_history(cos.recorder.events, commands + stops,
                      ClassConflicts(classes_of))

    def test_full_workload_with_rw_classes(self):
        from repro.core import ThreadedCOS as TC
        runtime = ThreadedRuntime()
        classes_of = read_write_classes(shards=8)
        cos = TC(ClassBasedCOS(runtime, classes_of, max_size=64), runtime)
        from conftest import make_mixed_commands
        commands = make_mixed_commands(600, write_every=10)
        log = run_threaded_workload(cos, commands, n_workers=8)
        assert len(log.finish) == len(commands)
        log.assert_conflicts_ordered(commands, ClassConflicts(classes_of))
