"""Unit tests for the speculation engine and the undo providers.

The engine (:mod:`repro.spec.engine`) is the pure commit/rollback core of
the optimistic pipeline; these tests drive it single-threaded, the way
the DES and the ``spec-rollback`` harness do.  The undo providers are
exercised against all three bundled apps: the service-specific inverse
records (``capture_undo``/``apply_undo``) and the generic shard-snapshot
fallback must both restore pre-speculation state bit for bit.
"""

from __future__ import annotations

import pytest

from repro.apps import build_service
from repro.apps.kvstore import KVStoreService
from repro.core.command import Command, ReadWriteConflicts
from repro.errors import SpeculationError
from repro.spec.engine import SkipUndoEngine, SpeculationEngine
from repro.spec.undo import ServiceUndo, SnapshotUndo


def put(key, value, rid):
    return KVStoreService.put(key, value, client_id="c", request_id=rid)


def get(key, rid):
    return KVStoreService.get(key, client_id="c", request_id=rid)


def engine(**kwargs) -> SpeculationEngine:
    return SpeculationEngine(KVStoreService(), **kwargs)


class TestSpeculation:
    def test_speculate_executes_and_buffers_the_response(self):
        eng = engine()
        first = eng.speculate(put("k", 1, 1))
        second = eng.speculate(put("k", 2, 2))
        # put returns the previous value; both responses are buffered,
        # nothing is released until confirmation.
        assert first.response is None and second.response == 1
        assert eng.uncommitted == 2 and not eng.clean
        assert eng.stats.speculated == 2

    def test_duplicate_of_a_queued_entry_is_dropped(self):
        eng = engine()
        command = put("k", 1, 1)
        assert eng.speculate(command) is not None
        assert eng.speculate(command) is None
        assert eng.uncommitted == 1
        assert eng.stats.duplicates_dropped == 1

    def test_duplicate_of_a_committed_command_is_dropped(self):
        eng = engine()
        command = put("k", 1, 1)
        eng.speculate(command)
        eng.confirm([command])
        assert eng.speculate(command) is None, (
            "a late optimistic duplicate of a committed command re-entered "
            "the log")
        assert eng.stats.duplicates_dropped == 1

    def test_committed_window_is_bounded(self):
        eng = engine(committed_window=2)
        old = put("k0", 0, 1)
        eng.speculate(old)
        eng.confirm([old])
        for rid in (2, 3):  # roll ``old`` out of the window
            fresh = put(f"k{rid}", rid, rid)
            eng.speculate(fresh)
            eng.confirm([fresh])
        # Beyond the window the engine no longer remembers the commit —
        # the documented bound (callers size the window to the optimistic
        # reorder horizon).
        assert eng.speculate(old) is not None

    def test_committed_window_must_be_positive(self):
        with pytest.raises(ValueError, match="committed_window"):
            engine(committed_window=0)

    def test_record_twice_raises(self):
        eng = engine()
        entry = eng.speculate(put("k", 1, 1))
        with pytest.raises(SpeculationError, match="recorded twice"):
            eng.record(entry, None, None)

    def test_admit_without_record_blocks_confirm(self):
        eng = engine()
        command = put("k", 1, 1)
        eng.admit(command)
        assert eng.unexecuted == 1
        with pytest.raises(SpeculationError, match="drain"):
            eng.confirm([command])


class TestConfirm:
    def test_matching_prefix_commits_and_releases_hits(self):
        eng = engine()
        commands = [put("k", value, value + 1) for value in range(3)]
        for command in commands:
            eng.speculate(command)
        result = eng.confirm(commands)
        assert [(c, hit) for c, _r, hit in result.released] == [
            (command, True) for command in commands]
        assert [r for _c, r, _h in result.released] == [None, 0, 1]
        assert result.respeculate == [] and result.rolled_back == 0
        assert eng.clean
        assert eng.stats.hits == 3 and eng.stats.misses == 0
        assert eng.stats.match_rate == 1.0

    def test_mismatch_rolls_back_and_reexecutes_conservatively(self):
        eng = engine()
        a, b = put("k", 1, 1), put("k", 2, 2)
        eng.speculate(a)
        eng.speculate(b)
        # Conservative order arrives reversed: positional rule => full
        # rollback, then conservative re-execution in the decided order.
        result = eng.confirm([b, a])
        assert [(r, hit) for _c, r, hit in result.released] == [
            (None, False), (2, False)]
        assert result.rolled_back == 2 and result.respeculate == []
        assert eng.service.snapshot() == {"k": 1}
        assert eng.stats.rollbacks == 1 and eng.stats.rolled_back == 2
        assert eng.stats.misses == 2 and eng.stats.match_rate == 0.0

    def test_rollback_restores_the_exact_pre_speculation_state(self):
        service = KVStoreService()
        service.execute(put("k", "committed", 0))
        eng = SpeculationEngine(service)
        for rid, value in enumerate(("x", "y", "z"), start=1):
            eng.speculate(put("k", value, rid))
        intruder = put("other", 1, 99)
        result = eng.confirm([intruder])
        # Reverse-order undo: k back to "committed", only the intruder's
        # conservative effect remains.
        assert service.snapshot() == {"k": "committed", "other": 1}
        assert len(result.respeculate) == 3

    def test_unconfirmed_rolled_back_commands_are_respeculated(self):
        eng = engine()
        a, b, c = (put(f"k{i}", i, i + 1) for i in range(3))
        for command in (a, b, c):
            eng.speculate(command)
        intruder = put("k0", 9, 10)
        result = eng.confirm([a, intruder])
        # a hits; the intruder diverges, rolling back b and c, which were
        # not in this batch: handed back in original optimistic order.
        assert [hit for _c, _r, hit in result.released] == [True, False]
        assert result.respeculate == [b, c]
        assert result.rolled_back == 2
        # They can be speculated again and then hit.
        for command in result.respeculate:
            eng.speculate(command)
        result = eng.confirm([b, c])
        assert all(hit for _c, _r, hit in result.released)
        assert eng.clean

    def test_partial_match_then_divergence_counts_hits_and_misses(self):
        eng = engine()
        commands = [put(f"k{i}", i, i + 1) for i in range(4)]
        for command in commands:
            eng.speculate(command)
        reordered = [commands[0], commands[1], commands[3], commands[2]]
        result = eng.confirm(reordered)
        assert [hit for _c, _r, hit in result.released] == [
            True, True, False, False]
        assert eng.stats.hits == 2 and eng.stats.misses == 2
        assert eng.clean

    def test_confirm_of_never_speculated_commands_is_pure_misses(self):
        eng = engine()
        commands = [put(f"k{i}", i, i + 1) for i in range(2)]
        result = eng.confirm(commands)
        assert all(not hit for _c, _r, hit in result.released)
        assert result.rolled_back == 0
        assert eng.service.snapshot() == {"k0": 0, "k1": 1}

    def test_custom_execute_runs_the_misses(self):
        eng = engine()
        ran = []

        def execute(command):
            ran.append(command)
            return eng.service.execute(command)

        command = put("k", 1, 1)
        eng.confirm([command], execute=execute)
        assert ran == [command]

    def test_abort_rolls_back_everything(self):
        service = KVStoreService()
        eng = SpeculationEngine(service)
        for rid in range(3):
            eng.speculate(put(f"k{rid}", rid, rid + 1))
        assert eng.abort() == 3
        assert eng.clean and service.snapshot() == {}

    def test_abort_with_inflight_executions_raises(self):
        eng = engine()
        eng.admit(put("k", 1, 1))
        with pytest.raises(SpeculationError, match="abort"):
            eng.abort()


class TestSkipUndoMutant:
    def test_skip_undo_corrupts_state_on_rollback(self):
        # The seeded bug the spec-rollback harness must catch: rolling
        # back without applying undo records leaves the mis-speculated
        # effects in place.
        healthy, mutated = KVStoreService(), KVStoreService()
        speculated = put("k", "guess", 1)
        intruder = put("other", 1, 2)
        for service, cls in ((healthy, SpeculationEngine),
                             (mutated, SkipUndoEngine)):
            eng = cls(service)
            eng.speculate(speculated)
            eng.confirm([intruder])
        assert healthy.snapshot() == {"other": 1}
        assert mutated.snapshot() == {"k": "guess", "other": 1}, (
            "the mutant is supposed to leave rolled-back effects behind")


# ---------------------------------------------------------------- undo

#: (service name, state-seeding commands, the speculated write).
_APP_CASES = [
    ("kv",
     [KVStoreService.put("k", "old", client_id="s", request_id=1)],
     KVStoreService.put("k", "new", client_id="s", request_id=2)),
    ("bank",
     [Command("deposit", ("a", 100), client_id="s", request_id=1,
              writes=True)],
     Command("transfer", ("a", "b", 30), client_id="s", request_id=2,
             writes=True)),
    # Values beyond the service's initial population, so the write has
    # an observable effect to undo.
    ("linked-list",
     [Command("add", (1_000_001,), client_id="s", request_id=1,
              writes=True)],
     Command("add-all", (1_000_002, 1_000_003), client_id="s",
             request_id=2, writes=True)),
]


@pytest.mark.parametrize("name,seeding,write", _APP_CASES,
                         ids=[case[0] for case in _APP_CASES])
class TestServiceUndo:
    def test_capture_execute_apply_restores_the_snapshot(
            self, name, seeding, write):
        service = build_service(name)
        for command in seeding:
            service.execute(command)
        before = service.snapshot()
        undo = ServiceUndo()
        record = undo.capture(service, write)
        service.execute(write)
        assert service.snapshot() != before  # the write had an effect
        undo.apply(service, record)
        assert service.snapshot() == before

    def test_reads_capture_nothing(self, name, seeding, write):
        service = build_service(name)
        read = Command("contains" if name == "linked-list"
                       else ("balance" if name == "bank" else "get"),
                       (seeding[0].args[0],), writes=False)
        undo = ServiceUndo()
        assert undo.capture(service, read) is None
        undo.apply(service, None)  # no-op


class TestSnapshotUndo:
    def test_shard_records_restore_via_recomposition(self):
        service = KVStoreService()
        for index in range(8):
            service.execute(put(f"k{index}", index, index + 1))
        before = service.snapshot()
        undo = SnapshotUndo(n_shards=4)
        write = put("k3", "overwritten", 100)
        (captured_shard,) = service.shards_of(write, 4)
        record = undo.capture(service, write)
        kind, payload = record
        assert kind == "shards" and len(payload) == 1
        service.execute(write)
        # Mutate a shard the record did NOT capture: recomposition must
        # keep that later state and restore only the captured shard.
        other_key = next(
            f"other{i}" for i in range(64)
            if service.shards_of(put(f"other{i}", 0, 0), 4)[0]
            != captured_shard)
        service.execute(put(other_key, "kept", 101))
        undo.apply(service, record)
        expected = dict(before)
        expected[other_key] = "kept"
        assert service.snapshot() == expected

    def test_service_without_sharding_falls_back_to_full_snapshot(self):
        class Plain:
            def __init__(self):
                self.state = {"a": 1}

            def snapshot(self):
                return dict(self.state)

            def restore(self, snapshot):
                self.state = dict(snapshot)

        service = Plain()
        undo = SnapshotUndo()
        record = undo.capture(service, Command("mut", ("a",), writes=True))
        assert record == ("full", {"a": 1})
        service.state["a"] = 2
        undo.apply(service, record)
        assert service.state == {"a": 1}

    def test_reads_capture_nothing(self):
        undo = SnapshotUndo()
        assert undo.capture(KVStoreService(),
                            Command("get", ("k",), writes=False)) is None

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ValueError, match="n_shards"):
            SnapshotUndo(n_shards=0)


class TestEngineWithSnapshotUndo:
    def test_rollback_correct_under_the_generic_provider(self):
        # The engine must be provider-agnostic: same rollback guarantee
        # with shard snapshots as with the apps' inverse records.
        service = KVStoreService()
        service.execute(put("k", "committed", 0))
        eng = SpeculationEngine(service, undo=SnapshotUndo(n_shards=4))
        eng.speculate(put("k", "guess", 1))
        eng.confirm([put("other", 1, 2)])
        assert service.snapshot() == {"k": "committed", "other": 1}
