"""Self-validation of the spec-rollback checking harness.

Same bar as the lease and groups harness suites: the seeded
``spec-skip-undo`` mutant (roll back without applying undo records) must
be caught within a bounded schedule budget, its counterexample must
shrink, and the frozen replay file must reproduce the violation
deterministically — and dispatch correctly next to the COS, lease, and
groups replay files sharing the ``repro check --replay`` entry point.
"""

from __future__ import annotations

import json

import pytest

from repro.check.paxos_lease import replay_harness_kind
from repro.check.spec_rollback import (
    SPEC_MUTANTS,
    SpecCheckConfig,
    SpecRollbackHarness,
    generate_schedule,
    load_spec_replay,
    replay_spec,
    run_spec_check,
    run_spec_schedule,
    save_spec_replay,
    shrink_spec,
)
from repro.errors import SimulationError

BUDGET = 120


def caught_report(seed: int = 0):
    config = SpecCheckConfig(mutant="spec-skip-undo")
    return config, run_spec_check(config, max_schedules=BUDGET, seed=seed)


class TestMutantCatching:
    def test_skip_undo_is_caught_within_budget(self):
        _, report = caught_report()
        assert not report.ok, f"spec-skip-undo escaped {BUDGET} schedules"
        assert report.violation.kind in (
            "response-divergence", "state-divergence", "stale-speculation")
        assert report.schedules_explored <= BUDGET

    def test_catch_is_seed_robust(self):
        for seed in (1, 2, 3):
            config = SpecCheckConfig(mutant="spec-skip-undo")
            report = run_spec_check(config, max_schedules=BUDGET,
                                    seed=seed,
                                    shrink_counterexamples=False)
            assert not report.ok, f"mutant escaped under seed {seed}"

    def test_clean_engine_survives_exploration(self):
        config = SpecCheckConfig()
        report = run_spec_check(config, max_schedules=40)
        assert report.ok, report.describe()

    def test_unknown_mutant_is_rejected(self):
        with pytest.raises(ValueError, match="unknown spec mutant"):
            run_spec_check(SpecCheckConfig(mutant="nope"), max_schedules=1)


class TestShrinking:
    def test_counterexample_shrinks(self):
        config, report = caught_report()
        assert report.shrunk_decisions is not None
        assert len(report.shrunk_decisions) < len(report.decisions)
        # The shrunk schedule still violates on its own.
        violation = run_spec_schedule(config, report.shrunk_decisions)
        assert violation is not None

    def test_shrink_requires_a_violating_schedule(self):
        config = SpecCheckConfig()
        with pytest.raises(SimulationError):
            shrink_spec(config, ["put:0-0"])


class TestReplay:
    def test_replay_reproduces_the_shrunk_violation(self, tmp_path):
        config, report = caught_report()
        path = str(tmp_path / "spec-ce.json")
        save_spec_replay(path, config, report.shrunk_decisions,
                         report.violation)
        assert replay_harness_kind(path) == "spec-rollback"
        reproduced = replay_spec(path)
        assert reproduced is not None
        assert reproduced.kind == report.violation.kind
        assert reproduced.step == report.violation.step

    def test_replay_roundtrips_config_and_decisions(self, tmp_path):
        config, report = caught_report()
        path = str(tmp_path / "spec-ce.json")
        save_spec_replay(path, config, report.shrunk_decisions,
                         report.violation)
        loaded_config, decisions, violation = load_spec_replay(path)
        assert loaded_config == config
        assert decisions == report.shrunk_decisions
        assert violation.kind == report.violation.kind

    def test_fixed_implementation_no_longer_violates(self, tmp_path):
        # Replaying a mutant counterexample against the *fixed* engine
        # (mutant=None) must come back clean — the replay answers "is
        # this bug still there", not "was it ever".
        config, report = caught_report()
        fixed = SpecCheckConfig()
        path = str(tmp_path / "spec-ce.json")
        save_spec_replay(path, fixed, report.shrunk_decisions,
                         report.violation)
        assert replay_spec(path) is None

    def test_foreign_replay_files_are_not_claimed(self, tmp_path):
        path = str(tmp_path / "cos-ce.json")
        with open(path, "w") as handle:
            json.dump({"version": 1, "config": {}, "decisions": [],
                       "violation": {"kind": "double-get", "message": "x",
                                     "step": 1}}, handle)
        assert replay_harness_kind(path) is None
        with pytest.raises(SimulationError):
            load_spec_replay(path)


class TestHarnessDeterminism:
    def test_schedules_replay_bit_for_bit(self):
        config, report = caught_report()
        first = run_spec_schedule(config, report.decisions)
        second = run_spec_schedule(config, report.decisions)
        assert (first.kind, first.step) == (second.kind, second.step)

    def test_generated_schedules_are_seed_deterministic(self):
        import random

        config = SpecCheckConfig()
        assert (generate_schedule(config, random.Random(7))
                == generate_schedule(config, random.Random(7)))

    def test_out_of_range_decisions_are_deterministic_noops(self):
        # Decision arguments are taken modulo the config's bounds;
        # advancing past the decided frontier and speculating before
        # anything was issued do nothing: any recorded list replays.
        config = SpecCheckConfig()
        decisions = ["adv:7", "opt:5,9", "dup:1,3", "ord:4",
                     "put:999-999", "cas:8-7-6", "get:12", "adv:0"]
        assert run_spec_schedule(config, decisions) is None

    def test_unknown_decisions_are_rejected(self):
        harness = SpecRollbackHarness(SpecCheckConfig())
        with pytest.raises(SimulationError):
            harness.apply("warp:3", step=0)

    def test_registry_is_disjoint_from_other_harnesses(self):
        from repro.check.groups_rendezvous import GROUPS_MUTANTS
        from repro.check.mutants import MUTANTS
        from repro.check.paxos_lease import LEASE_MUTANTS

        assert not set(SPEC_MUTANTS) & set(MUTANTS)
        assert not set(SPEC_MUTANTS) & set(LEASE_MUTANTS)
        assert not set(SPEC_MUTANTS) & set(GROUPS_MUTANTS)


class TestOracles:
    def test_clean_reordering_is_not_a_violation(self):
        # Mis-speculation with a correct engine: rollback + conservative
        # re-execution must satisfy both oracles (this is the pipeline's
        # whole claim).
        decisions = [
            "put:0-1",          # issue put(k0, 1)
            "put:0-2",          # issue put(k0, 2)
            "opt:0,0", "opt:0,1",   # replica 0 speculates both, in order
            "ord:1", "ord:0",       # consensus decides the REVERSE
            "adv:0", "adv:0",       # replica 0 confirms: rollback path
            "adv:1", "adv:1",       # replica 1 never speculated
        ]
        assert run_spec_schedule(SpecCheckConfig(), decisions) is None

    def test_skip_undo_fails_the_same_schedule(self):
        decisions = [
            "put:0-1",
            "put:0-2",
            "opt:0,0", "opt:0,1",
            "ord:1", "ord:0",
            "adv:0", "adv:0",
        ]
        violation = run_spec_schedule(
            SpecCheckConfig(mutant="spec-skip-undo"), decisions)
        assert violation is not None
        assert violation.kind in ("response-divergence", "state-divergence")
