"""Tests for commands and conflict relations."""

import pytest

from repro.core.command import (
    AlwaysConflicts,
    Command,
    KeyedConflicts,
    NeverConflicts,
    PredicateConflicts,
    ReadWriteConflicts,
)


def read(key=0):
    return Command("contains", (key,), writes=False)


def write(key=0):
    return Command("add", (key,), writes=True)


class TestCommand:
    def test_uids_are_unique(self):
        a, b = read(), read()
        assert a.uid != b.uid

    def test_fields(self):
        cmd = Command("op", (1, 2), client_id="c1", request_id=7, writes=True)
        assert cmd.op == "op"
        assert cmd.args == (1, 2)
        assert cmd.client_id == "c1"
        assert cmd.request_id == 7
        assert cmd.writes

    def test_defaults(self):
        cmd = Command("noargs")
        assert cmd.args == ()
        assert cmd.client_id is None
        assert cmd.request_id == 0
        assert cmd.writes is True  # safe default: assume a write

    def test_frozen(self):
        with pytest.raises(Exception):
            read().op = "other"

    def test_repr_is_compact(self):
        cmd = read(3)
        assert "contains" in repr(cmd)
        assert str(cmd.uid) in repr(cmd)


class TestReadWriteConflicts:
    def test_reads_independent(self):
        assert not ReadWriteConflicts().conflicts(read(1), read(1))

    def test_read_write_conflict(self):
        relation = ReadWriteConflicts()
        assert relation.conflicts(read(1), write(2))
        assert relation.conflicts(write(2), read(1))

    def test_write_write_conflict(self):
        assert ReadWriteConflicts().conflicts(write(1), write(2))

    def test_callable(self):
        assert ReadWriteConflicts()(write(1), read(1))


class TestKeyedConflicts:
    def test_same_key_write_conflicts(self):
        relation = KeyedConflicts()
        assert relation.conflicts(write(1), write(1))
        assert relation.conflicts(write(1), read(1))

    def test_different_key_independent(self):
        relation = KeyedConflicts()
        assert not relation.conflicts(write(1), write(2))
        assert not relation.conflicts(write(1), read(2))

    def test_reads_never_conflict(self):
        assert not KeyedConflicts().conflicts(read(1), read(1))

    def test_custom_key_extractor(self):
        relation = KeyedConflicts(key_of=lambda cmd: cmd.args[1])
        a = Command("op", ("x", "k"), writes=True)
        b = Command("op", ("y", "k"), writes=True)
        assert relation.conflicts(a, b)

    def test_argless_commands_share_none_key(self):
        relation = KeyedConflicts()
        a = Command("op", (), writes=True)
        b = Command("op", (), writes=True)
        assert relation.conflicts(a, b)

    def test_symmetry(self):
        relation = KeyedConflicts()
        pairs = [(read(1), write(1)), (write(1), write(2)), (read(1), read(2))]
        for a, b in pairs:
            assert relation.conflicts(a, b) == relation.conflicts(b, a)


class TestOtherRelations:
    def test_never(self):
        assert not NeverConflicts().conflicts(write(1), write(1))

    def test_always(self):
        assert AlwaysConflicts().conflicts(read(1), read(2))

    def test_predicate(self):
        relation = PredicateConflicts(lambda a, b: a.op == b.op)
        assert relation.conflicts(read(1), read(2))
        assert not relation.conflicts(read(1), write(2))

    def test_base_class_is_abstract(self):
        from repro.core.command import ConflictRelation
        with pytest.raises(NotImplementedError):
            ConflictRelation().conflicts(read(), read())
