"""Direct tests of the simulated synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimRuntime, Simulator
from repro.sim.process import SimProcess
from repro.sim.sync import SimAtomic, SimCondition, SimMutex, SimSemaphore


def _proc(name="p"):
    return SimProcess(iter(()), name)


@pytest.fixture
def resume_log():
    log = []

    def resume(proc, value, delay):
        log.append((proc.name, value, delay))

    return log, resume


class TestSimMutex:
    def test_acquire_free(self, resume_log):
        log, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        owner = _proc("a")
        assert mutex.acquire(owner) is True
        assert mutex.owner is owner
        assert log == []

    def test_contended_acquire_queues(self, resume_log):
        log, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        first, second = _proc("a"), _proc("b")
        mutex.acquire(first)
        assert mutex.acquire(second) is False
        assert list(mutex.waiters) == [second]

    def test_release_hands_off_fifo(self, resume_log):
        log, resume = resume_log
        mutex = SimMutex(resume, handoff=2.0)
        a, b, c = _proc("a"), _proc("b"), _proc("c")
        mutex.acquire(a)
        mutex.acquire(b)
        mutex.acquire(c)
        assert mutex.release(a) is True
        assert mutex.owner is b
        assert log == [("b", None, 2.0)]
        assert mutex.release(b) is True
        assert mutex.owner is c

    def test_release_without_waiters(self, resume_log):
        _, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        proc = _proc()
        mutex.acquire(proc)
        assert mutex.release(proc) is False
        assert mutex.owner is None

    def test_release_by_non_owner_raises(self, resume_log):
        _, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        mutex.acquire(_proc("a"))
        with pytest.raises(SimulationError):
            mutex.release(_proc("b"))

    def test_last_holder_tracked(self, resume_log):
        _, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        a = _proc("a")
        mutex.acquire(a)
        mutex.release(a)
        assert mutex.last_holder is a


class TestSimSemaphore:
    def test_initial_value(self, resume_log):
        _, resume = resume_log
        sem = SimSemaphore(2, resume, handoff=1.0)
        assert sem.down(_proc()) is True
        assert sem.down(_proc()) is True
        assert sem.down(_proc()) is False

    def test_up_wakes_fifo(self, resume_log):
        log, resume = resume_log
        sem = SimSemaphore(0, resume, handoff=0.5)
        a, b = _proc("a"), _proc("b")
        sem.down(a)
        sem.down(b)
        assert sem.up() == 1
        assert log == [("a", None, 0.5)]
        assert sem.up() == 1
        assert log[-1][0] == "b"

    def test_up_without_waiters_banks_value(self, resume_log):
        _, resume = resume_log
        sem = SimSemaphore(0, resume, handoff=1.0)
        assert sem.up(3) == 0
        assert sem.value == 3

    def test_negative_initial_rejected(self, resume_log):
        _, resume = resume_log
        with pytest.raises(SimulationError):
            SimSemaphore(-1, resume, handoff=1.0)


class TestSimCondition:
    def test_wait_releases_mutex(self, resume_log):
        _, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        cond = SimCondition(mutex)
        waiter = _proc("w")
        mutex.acquire(waiter)
        cond.wait(waiter)
        assert mutex.owner is None
        assert list(cond.waiters) == [waiter]

    def test_signal_moves_waiter_to_mutex_queue(self, resume_log):
        _, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        cond = SimCondition(mutex)
        waiter, signaller = _proc("w"), _proc("s")
        mutex.acquire(waiter)
        cond.wait(waiter)
        mutex.acquire(signaller)
        cond.signal(signaller)
        assert not cond.waiters
        assert waiter in mutex.waiters

    def test_signal_all(self, resume_log):
        _, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        cond = SimCondition(mutex)
        waiters = [_proc(f"w{i}") for i in range(3)]
        for waiter in waiters:
            mutex.acquire(waiter) if mutex.owner is None else None
            if mutex.owner is not waiter:
                mutex.owner = waiter  # test scaffolding: force ownership
            cond.wait(waiter)
        signaller = _proc("s")
        mutex.acquire(signaller)
        cond.signal_all(signaller)
        assert not cond.waiters
        assert len(mutex.waiters) == 3

    def test_signal_requires_mutex(self, resume_log):
        _, resume = resume_log
        mutex = SimMutex(resume, handoff=1.0)
        cond = SimCondition(mutex)
        with pytest.raises(SimulationError):
            cond.signal(_proc())


class TestSimAtomic:
    def test_cas_semantics(self):
        cell = SimAtomic(1)
        assert cell.compare_and_set(1, 2) is True
        assert cell.compare_and_set(1, 3) is False
        assert cell.value == 2


class TestRuntimeFactories:
    def test_condition_requires_sim_mutex(self):
        runtime = SimRuntime(Simulator())
        with pytest.raises(SimulationError):
            runtime.condition(object())

    def test_factories_produce_sim_types(self):
        runtime = SimRuntime(Simulator())
        assert isinstance(runtime.mutex(), SimMutex)
        assert isinstance(runtime.semaphore(1), SimSemaphore)
        assert isinstance(runtime.atomic(0), SimAtomic)
        assert isinstance(runtime.condition(runtime.mutex()), SimCondition)
