"""Explorer unit tests on small synthetic programs plus the real COS.

The synthetic programs have schedule spaces small enough to count by hand,
so these tests pin the explorer's core claims: exhaustive coverage, sound
sleep-set pruning (fewer schedules, no missed interleaving or deadlock),
CHESS-style preemption bounding, and seeded-random reproducibility.
"""

from math import comb

import pytest

from repro.check.explorer import explore, explore_random
from repro.check.harness import CheckConfig, CheckExecution
from repro.check.oracle import Violation
from repro.core.effects import Acquire, Load, Release, Store
from repro.errors import CheckViolation
from repro.sim import SimRuntime, Simulator


class SyntheticExecution:
    """Minimal CheckExecution-alike over an arbitrary controlled program.

    ``build(runtime)`` spawns the processes; the explorer only needs the
    driving surface below (runnable/step/pending_effect/terminal verdict).
    """

    def __init__(self, build):
        self.runtime = SimRuntime(Simulator(), preemption="controlled")
        self.trace = []
        self.violation = None
        self.state = build(self.runtime)

    def runnable(self):
        if self.violation is not None:
            return []
        return self.runtime.runnable_processes()

    def pending_effect(self, proc):
        return self.runtime.pending_effect(proc)

    def step(self, proc):
        step_index = len(self.trace)
        self.trace.append(proc.name)
        try:
            self.runtime.controlled_step(proc)
        except CheckViolation as violation:
            self.violation = Violation(violation.kind, str(violation),
                                       step=step_index)

    def step_by_name(self, name):
        for proc in self.runnable():
            if proc.name == name:
                self.step(proc)
                return True
        return False

    def terminal_violation(self):
        if self.violation is not None:
            return self.violation
        blocked = self.runtime.blocked_processes()
        if blocked:
            names = ", ".join(proc.name for proc in blocked)
            return Violation("deadlock", f"blocked: {names}",
                             step=len(self.trace))
        return None


def independent_writers(runtime):
    """Two processes, each two Stores to its own cell: all steps commute."""

    def writer(cell):
        yield Store(cell, 1)
        yield Store(cell, 2)

    for name in ("p", "q"):
        runtime.spawn(writer(runtime.atomic(0)), name)


def racing_writers(runtime):
    """Two read-modify-write processes on one shared cell."""
    cell = runtime.atomic(0)

    def writer(increment):
        current = yield Load(cell)
        yield Store(cell, current + increment)

    runtime.spawn(writer(1), "p")
    runtime.spawn(writer(2), "q")
    return cell


def ab_ba_deadlock(runtime):
    """The classic lock-order inversion: p takes A then B, q takes B then A."""
    lock_a, lock_b = runtime.mutex(), runtime.mutex()

    def locker(first, second, name_unused):
        yield Acquire(first)
        yield Acquire(second)
        yield Release(second)
        yield Release(first)

    runtime.spawn(locker(lock_a, lock_b, "p"), "p")
    runtime.spawn(locker(lock_b, lock_a, "q"), "q")


def test_naive_dfs_is_exhaustive_on_independent_writers():
    result = explore(lambda: SyntheticExecution(independent_writers),
                     max_schedules=100, use_sleep_sets=False)
    assert result.exhausted
    assert result.violation is None
    # Two processes of two steps each: C(4, 2) = 6 interleavings.
    assert result.schedules_explored == comb(4, 2)


def test_sleep_sets_collapse_commuting_interleavings():
    naive = explore(lambda: SyntheticExecution(independent_writers),
                    max_schedules=100, use_sleep_sets=False)
    pruned = explore(lambda: SyntheticExecution(independent_writers),
                     max_schedules=100, use_sleep_sets=True)
    assert pruned.exhausted and pruned.violation is None
    # Every interleaving commutes, so only one representative runs to the
    # end; sleep sets (without persistent sets) still *enter* a couple of
    # redundant branches but put them fully to sleep within a step or two.
    assert pruned.schedules_explored < naive.schedules_explored
    assert pruned.transitions < naive.transitions
    assert pruned.schedules_pruned > 0


def test_sleep_sets_keep_conflicting_interleavings():
    finals = set()

    def run_and_record(use_sleep_sets):
        outcomes = set()

        def make():
            return SyntheticExecution(racing_writers)

        # Walk the space manually via explore's own frames by sampling all
        # schedules: exhaustively explore and record each terminal state
        # through a tiny wrapper that captures the cell value.
        class Recording(SyntheticExecution):
            def terminal_violation(self):
                if not self.runnable() and self.violation is None:
                    outcomes.add(self.state.value)
                return super().terminal_violation()

        result = explore(lambda: Recording(racing_writers),
                         max_schedules=200,
                         use_sleep_sets=use_sleep_sets)
        assert result.exhausted
        return outcomes

    naive_outcomes = run_and_record(False)
    dpor_outcomes = run_and_record(True)
    # The lost-update final values (1, 2) and the sequential one (3) are all
    # reachable, and pruning must not lose any of them.
    assert naive_outcomes == {1, 2, 3}
    assert dpor_outcomes == naive_outcomes


@pytest.mark.parametrize("use_sleep_sets", [False, True])
def test_ab_ba_deadlock_is_found_and_replays(use_sleep_sets):
    result = explore(lambda: SyntheticExecution(ab_ba_deadlock),
                     max_schedules=200, use_sleep_sets=use_sleep_sets)
    assert result.violation is not None
    assert result.violation.kind == "deadlock"
    # The counterexample replays to the same verdict on a fresh execution.
    replayed = SyntheticExecution(ab_ba_deadlock)
    for name in result.counterexample:
        assert replayed.step_by_name(name)
    verdict = replayed.terminal_violation()
    assert verdict is not None and verdict.kind == "deadlock"


def test_preemption_bound_zero_runs_processes_to_completion():
    result = explore(lambda: SyntheticExecution(independent_writers),
                     max_schedules=100, use_sleep_sets=False,
                     preemption_bound=0)
    assert result.exhausted
    # No voluntary preemptions: only "p to completion, then q" and the
    # reverse — the two orders of picking the first process.
    assert result.schedules_explored == 2


def test_dpor_reduces_schedules_on_the_real_cos():
    """Acceptance criterion: on the same bounded schedule space of the real
    lock-free COS program, sleep-set pruning explores strictly fewer
    schedules than naive DFS while still covering the space."""
    config = CheckConfig(algorithm="lock-free", workers=1, commands=1,
                         max_size=2, write_every=1)
    naive = explore(lambda: CheckExecution(config), max_schedules=20_000,
                    max_steps=5_000, use_sleep_sets=False, preemption_bound=1)
    pruned = explore(lambda: CheckExecution(config), max_schedules=20_000,
                     max_steps=5_000, use_sleep_sets=True, preemption_bound=1)
    assert naive.exhausted and pruned.exhausted
    assert naive.violation is None and pruned.violation is None
    assert pruned.schedules_explored < naive.schedules_explored
    assert pruned.schedules_pruned > 0


def test_explore_random_is_reproducible():
    first = explore_random(lambda: SyntheticExecution(ab_ba_deadlock),
                           max_schedules=500, seed=3)
    second = explore_random(lambda: SyntheticExecution(ab_ba_deadlock),
                            max_schedules=500, seed=3)
    assert first.schedules_explored == second.schedules_explored
    assert first.transitions == second.transitions
    assert (first.violation is None) == (second.violation is None)
    if first.violation is not None:
        assert first.counterexample == second.counterexample
        assert first.violation.kind == second.violation.kind
