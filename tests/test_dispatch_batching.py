"""Batched dispatch: COS draining, dispatcher batches, engine batches.

The batching pipeline has three layers, tested bottom-up:

- :meth:`ThreadedCOS.try_get` / :meth:`ThreadedCOS.get_batch` — draining
  the ready set without blocking (simultaneously-ready commands are
  pairwise non-conflicting, so a drained batch is safe to hand to any
  engine in one call);
- :meth:`MpDispatcher.submit_many` / :meth:`request_many` — a whole
  same-shard batch crosses the process boundary in one pickle and one
  queue wakeup;
- :meth:`MpService.execute_many` — shard grouping, input-order responses,
  per-command error isolation — and the end-to-end
  :class:`ParallelReplica` path that drives it.
"""

from __future__ import annotations

import time

import pytest

from repro.apps.kvstore import KVStoreService
from repro.core import COS_ALGORITHMS, ReadWriteConflicts, make_cos
from repro.core.command import Command
from repro.core.threaded import ThreadedCOS, ThreadedRuntime
from repro.errors import ShardError
from repro.obs.registry import MetricsRegistry
from repro.par import MpEngineConfig, MpService
from repro.par.dispatcher import MpDispatcher
from repro.smr.replica import ParallelReplica, SequentialReplica

PROBEABLE = ("sequential", "class-based", "fine-grained", "lock-free",
             "indexed", "early", "early-batched")
MUTEX_FIRST = ("coarse-grained",)
#: Probeable algorithms whose ready set can hold several commands at once.
#: "sequential" is probeable but admits exactly one command at a time, and
#: "class-based" serializes same-class commands (all reads share the single
#: default class), so both drain in batches of one on this workload.
CONCURRENT = tuple(name for name in PROBEABLE
                   if name not in ("sequential", "class-based"))


def read(key):
    return Command("contains", (key,), writes=False)


def write(key):
    return Command("add", (key,), writes=True)


def make_threaded_cos(algorithm: str) -> ThreadedCOS:
    runtime = ThreadedRuntime()
    return ThreadedCOS(
        make_cos(algorithm, runtime, ReadWriteConflicts()), runtime)


class TestTryGet:

    def test_algorithm_lists_cover_the_registry(self):
        assert sorted(PROBEABLE + MUTEX_FIRST) == sorted(COS_ALGORITHMS)

    @pytest.mark.parametrize("algorithm", PROBEABLE)
    def test_empty_graph_probe_returns_none(self, algorithm):
        cos = make_threaded_cos(algorithm)
        assert cos.try_get() is None

    @pytest.mark.parametrize("algorithm", PROBEABLE)
    def test_ready_command_is_probeable(self, algorithm):
        cos = make_threaded_cos(algorithm)
        cos.insert(read(1))
        handle = cos.try_get()
        assert handle is not None
        assert cos.command_of(handle).args == (1,)
        cos.remove(handle)
        assert cos.try_get() is None

    @pytest.mark.parametrize("algorithm", PROBEABLE)
    def test_blocked_command_is_not_returned(self, algorithm):
        # Two conflicting writes: only the head of the dependency chain is
        # ready; the probe must not surface (or skip to) the second one.
        cos = make_threaded_cos(algorithm)
        cos.insert(write(1))
        cos.insert(write(1))
        first = cos.try_get()
        assert first is not None
        assert cos.try_get() is None
        cos.remove(first)
        second = cos.try_get()
        assert second is not None
        cos.remove(second)

    @pytest.mark.parametrize("algorithm", MUTEX_FIRST)
    def test_mutex_first_algorithms_degrade_to_none(self, algorithm):
        # coarse/fine open get() by taking the graph mutex, which try_get
        # must not gamble on (it could block while *holding* it).  The
        # probe declines — callers fall back to batches of one — and the
        # untouched generator leaves the graph fully functional.
        cos = make_threaded_cos(algorithm)
        cos.insert(read(1))
        assert cos.try_get() is None
        handle = cos.get()          # blocking path still works
        assert cos.command_of(handle).args == (1,)
        cos.remove(handle)


class TestGetBatch:

    @pytest.mark.parametrize("algorithm", CONCURRENT)
    def test_drains_ready_set_up_to_max(self, algorithm):
        # Non-conflicting reads: a DAG scheduler has all 5 simultaneously
        # ready; the early (static-lane) schedulers may serialize two keys
        # that hash to one lane, but must still drain several per call.
        cos = make_threaded_cos(algorithm)
        for key in range(5):
            cos.insert(read(key))
        sizes = []
        keys = []
        while sum(sizes) < 5:
            batch = cos.get_batch(8)
            sizes.append(len(batch))
            keys.extend(cos.command_of(h).args[0] for h in batch)
            for handle in batch:
                cos.remove(handle)
        assert sizes[0] >= 2, f"first drain got only {sizes[0]} of 5 ready"
        assert sorted(keys) == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("algorithm", CONCURRENT)
    def test_max_size_caps_the_drain(self, algorithm):
        cos = make_threaded_cos(algorithm)
        for key in range(5):
            cos.insert(read(key))
        batch = cos.get_batch(3)
        assert len(batch) == 3      # at least 4 of 5 are ready in any lane map
        retrieved = len(batch)
        while retrieved < 5:
            for handle in batch:
                cos.remove(handle)
            batch = cos.get_batch(8)
            assert 1 <= len(batch) <= 5 - retrieved
            retrieved += len(batch)
        for handle in batch:
            cos.remove(handle)

    @pytest.mark.parametrize(
        "algorithm", MUTEX_FIRST + ("sequential", "class-based"))
    def test_one_at_a_time_schedulers_yield_batches_of_one(self, algorithm):
        cos = make_threaded_cos(algorithm)
        for key in range(4):
            cos.insert(read(key))
        sizes = []
        for _ in range(4):
            batch = cos.get_batch(8)
            sizes.append(len(batch))
            for handle in batch:
                cos.remove(handle)
        assert sizes == [1, 1, 1, 1]


class TestDispatcherBatches:

    def test_submit_many_rejects_empty_batch(self):
        dispatcher = MpDispatcher("kv", {}, 1, MpEngineConfig())
        dispatcher._started = True
        with pytest.raises(ShardError):
            dispatcher.submit_many(0, [])

    def test_request_many_roundtrip_and_order(self):
        registry = MetricsRegistry()
        dispatcher = MpDispatcher("kv", {}, 1, MpEngineConfig(), registry)
        dispatcher.start()
        try:
            commands = [KVStoreService.put(f"k{i}", i) for i in range(6)]
            outcomes, busy = dispatcher.request_many(0, commands)
            assert [status for status, _ in outcomes] == ["ok"] * 6
            assert busy >= 0.0
            outcomes, _ = dispatcher.request_many(
                0, [KVStoreService.get(f"k{i}") for i in range(6)])
            assert [payload for _, payload in outcomes] == list(range(6))
        finally:
            dispatcher.stop()
        histogram = registry.histogram("mp_batch_size")
        assert histogram.count == 2
        assert histogram.sum == 12

    def test_request_many_isolates_per_command_errors(self):
        dispatcher = MpDispatcher("kv", {}, 1, MpEngineConfig())
        dispatcher.start()
        try:
            outcomes, _ = dispatcher.request_many(0, [
                KVStoreService.put("a", 1),
                Command("explode", (), writes=True),
                KVStoreService.get("a"),
            ])
            statuses = [status for status, _ in outcomes]
            assert statuses == ["ok", "err", "ok"]
            error_type, message, trace = outcomes[1][1]
            assert error_type == "ValueError"
            assert "explode" in message
            # The command after the failure still executed.
            assert outcomes[2][1] == 1
        finally:
            dispatcher.stop()


class TestEngineExecuteMany:

    def test_groups_by_shard_and_preserves_input_order(self):
        registry = MetricsRegistry()
        with MpService("kv", workers=3, registry=registry) as engine:
            puts = [KVStoreService.put(f"key-{i}", i * 11) for i in range(20)]
            assert engine.execute_many(puts) == [None] * 20
            gets = [KVStoreService.get(f"key-{i}") for i in range(20)]
            assert engine.execute_many(gets) == [i * 11 for i in range(20)]
            assert engine.execute_many([]) == []
        # 20 commands over 3 shards cross in at most 3 hops per call.
        histogram = registry.histogram("mp_batch_size")
        assert histogram.count <= 6
        assert histogram.sum == 40

    def test_single_command_error_raises_shard_error(self):
        with MpService("kv", workers=2) as engine:
            engine.execute_many([KVStoreService.put("a", 1)])
            with pytest.raises(ShardError):
                engine.execute_many([
                    KVStoreService.put("b", 2),
                    Command("explode", ("b",), writes=True),
                ])
            # Workers survive a per-command failure: the engine keeps
            # executing and the non-failing batch member landed.
            assert engine.execute_many([KVStoreService.get("a"),
                                        KVStoreService.get("b")]) == [1, 2]

    def test_matches_unbatched_execution(self):
        reference = KVStoreService()
        commands = [KVStoreService.put(f"key-{i}", i) for i in range(24)]
        for command in commands:
            reference.execute(command)
        with MpService("kv", workers=4) as engine:
            engine.execute_many(commands)
            assert engine.snapshot() == reference.snapshot()


class TestBatchedReplica:

    def _run_replica(self, dispatch_batch):
        registry = MetricsRegistry()
        engine = MpService("kv", workers=2, registry=registry)
        engine.start()
        replica = ParallelReplica(
            0, engine, workers=2, registry=registry,
            dispatch_batch=dispatch_batch)
        replica.start()
        try:
            commands = [KVStoreService.put(f"key-{i}", i) for i in range(48)]
            for offset in range(0, len(commands), 8):
                replica.on_deliver(offset, commands[offset:offset + 8])
            deadline = time.monotonic() + 30
            while replica.executed < len(commands):
                assert time.monotonic() < deadline, (
                    f"only {replica.executed}/{len(commands)} executed")
                time.sleep(0.01)
            snapshot = engine.snapshot()
        finally:
            replica.stop()
            engine.stop()
        return snapshot, registry

    def test_batched_replica_executes_everything(self):
        snapshot, registry = self._run_replica(dispatch_batch=8)
        assert snapshot == {f"key-{i}": i for i in range(48)}
        histogram = registry.histogram("mp_batch_size")
        assert histogram.count >= 1
        assert histogram.sum >= 48

    def test_dispatch_batch_one_disables_batching(self):
        snapshot, registry = self._run_replica(dispatch_batch=1)
        assert snapshot == {f"key-{i}": i for i in range(48)}

    def test_default_dispatch_batch_resolution(self):
        engine_like = MpService("kv", workers=2)     # has execute_many
        replica = ParallelReplica(0, engine_like, workers=2)
        assert replica.dispatch_batch == 16
        replica_plain = ParallelReplica(0, KVStoreService(), workers=2)
        assert replica_plain.dispatch_batch == 1
        replica_capped = ParallelReplica(0, engine_like, workers=2,
                                         dispatch_batch=4)
        assert replica_capped.dispatch_batch == 4
        with pytest.raises(ValueError):
            ParallelReplica(0, engine_like, workers=2, dispatch_batch=0)

    def test_sequential_replica_never_batches(self):
        # FIFO-queued commands may conflict, so the sequential facade must
        # pin the drain to one command per dispatch even though its
        # service might support execute_many.
        replica = SequentialReplica(0, KVStoreService())
        assert replica.dispatch_batch == 1
