"""Determinism regression: fuzzed simulation runs are pure functions of
their seed.

The model checker's replay guarantee, the fuzz tests' seed sweeps and the
benchmark harness all assume that re-running a simulation with the same
``fuzz_seed`` reproduces it exactly.  These tests pin that property for
every graph algorithm: two independent ``SimRuntime`` runs with the same
seed must agree on the execution order, every start/finish timestamp, and
the simulator's final metrics (virtual clock and event count) — and
different seeds must be able to disagree, or the comparison is vacuous.
"""

import pytest

from conftest import GRAPH_ALGORITHMS, make_mixed_commands
from test_schedule_fuzzing import run_fuzzed


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_same_seed_identical_run(algorithm):
    commands = make_mixed_commands(30, write_every=3)
    first = run_fuzzed(algorithm, commands, 4, seed=11)
    second = run_fuzzed(algorithm, commands, 4, seed=11)
    start_a, finish_a, order_a, metrics_a = first
    start_b, finish_b, order_b, metrics_b = second
    assert order_a == order_b, "execution order diverged"
    assert start_a == start_b and finish_a == finish_b, (
        "per-command timestamps diverged")
    assert metrics_a == metrics_b, "final virtual clock/event count diverged"


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_different_seeds_can_differ(algorithm):
    commands = make_mixed_commands(30, write_every=3)
    runs = {run_fuzzed(algorithm, commands, 4, seed=seed)[3]
            for seed in range(8)}
    assert len(runs) > 1, "seed had no effect on the schedule"
