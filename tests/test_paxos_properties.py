"""Property-based safety tests for Multi-Paxos under adversarial schedules.

A schedule driver holds the three pure state machines and a bag of
in-flight messages; hypothesis picks, step by step, whether to deliver some
message (possibly reordered), duplicate one, drop one, fire a timer (which
over-approximates any timing, including wrong suspicions), or submit a new
payload.  Whatever the schedule, the learned logs must satisfy:

- **Agreement**: no two nodes deliver different payloads for one instance.
- **Total order**: delivered sequences are prefix-compatible.
- **Integrity**: only submitted payloads are delivered, at most once each
  per node.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broadcast import Deliver, MultiPaxos, Send
from repro.broadcast.paxos import HEARTBEAT_TIMER, LEADER_TIMER


class ScheduleDriver:
    """Deterministic executor of one adversarial schedule."""

    def __init__(self, n=3):
        self.n = n
        self.nodes = [MultiPaxos(i, n, batch_size=2, pipeline=4)
                      for i in range(n)]
        self.in_flight = []            # (dst, src, msg)
        self.delivered = [[] for _ in range(n)]
        self.submitted = []
        self.next_payload = 0
        for node in self.nodes:
            self._perform(node.node_id, node.start())

    def _perform(self, node_id, actions):
        for action in actions:
            if isinstance(action, Send):
                self.in_flight.append((action.dst, node_id, action.msg))
            elif isinstance(action, Deliver):
                self.delivered[node_id].append(
                    (action.instance, action.payload))
            # SetTimer: timers may fire at any time; the driver fires them
            # explicitly, so pending timer bookkeeping is unnecessary.

    def submit(self, node_index):
        payload = f"p{self.next_payload}"
        self.next_payload += 1
        self.submitted.append(payload)
        node = self.nodes[node_index % self.n]
        self._perform(node.node_id, node.submit(payload))

    def deliver(self, message_index):
        if not self.in_flight:
            return
        dst, src, msg = self.in_flight.pop(message_index % len(self.in_flight))
        node = self.nodes[dst]
        self._perform(dst, node.on_message(src, msg))

    def duplicate(self, message_index):
        if not self.in_flight:
            return
        self.in_flight.append(
            self.in_flight[message_index % len(self.in_flight)])

    def drop(self, message_index):
        if not self.in_flight:
            return
        self.in_flight.pop(message_index % len(self.in_flight))

    def fire_timer(self, node_index, which):
        node = self.nodes[node_index % self.n]
        name = LEADER_TIMER if which else HEARTBEAT_TIMER
        self._perform(node.node_id, node.on_timer(name))

    def drain(self, budget=3000):
        """Deliver everything still in flight (FIFO) to let logs converge."""
        while self.in_flight and budget:
            self.deliver(0)
            budget -= 1

    # ----------------------------------------------------------- invariants

    def check_safety(self):
        per_instance = {}
        for node_id, log in enumerate(self.delivered):
            instances = [instance for instance, _ in log]
            assert instances == sorted(instances), "out-of-order delivery"
            assert len(instances) == len(set(instances)), "duplicate instance"
            for instance, payload in log:
                if instance in per_instance:
                    assert per_instance[instance] == payload, (
                        f"agreement violated at instance {instance}")
                else:
                    per_instance[instance] = payload
        # Integrity: payloads inside delivered batches were all submitted.
        submitted = set(self.submitted)
        for log in self.delivered:
            for _, batch in log:
                for payload in batch:
                    assert payload in submitted


STEPS = st.lists(
    st.tuples(
        st.sampled_from(["submit", "deliver", "duplicate", "drop",
                         "timer_leader", "timer_heartbeat"]),
        st.integers(min_value=0, max_value=11),
    ),
    min_size=5,
    max_size=120,
)


@given(steps=STEPS)
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_safety_under_adversarial_schedules(steps):
    driver = ScheduleDriver()
    for op, index in steps:
        if op == "submit":
            driver.submit(index)
        elif op == "deliver":
            driver.deliver(index)
        elif op == "duplicate":
            driver.duplicate(index)
        elif op == "drop":
            driver.drop(index)
        elif op == "timer_leader":
            driver.fire_timer(index, True)
        else:
            driver.fire_timer(index, False)
        driver.check_safety()
    driver.check_safety()


@given(steps=STEPS)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_convergence_after_drain(steps):
    """After the adversary stops and messages flow, logs stay safe and the
    nodes that delivered anything agree on a common prefix."""
    driver = ScheduleDriver()
    for op, index in steps:
        if op == "submit":
            driver.submit(index)
        elif op == "deliver":
            driver.deliver(index)
        elif op == "duplicate":
            driver.duplicate(index)
        elif op == "drop":
            driver.drop(index)
        elif op == "timer_leader":
            driver.fire_timer(index, True)
        else:
            driver.fire_timer(index, False)
    driver.drain()
    driver.check_safety()


def test_lost_leadership_payloads_can_be_reforwarded():
    driver = ScheduleDriver()
    driver.submit(0)
    # Node 1 takes over before the accept round finishes.
    driver.fire_timer(1, True)
    driver.fire_timer(1, True)
    driver.drain()
    driver.check_safety()
    actions = driver.nodes[0].drain_pending_forwards()
    driver._perform(0, actions)
    driver.drain()
    driver.check_safety()
