"""End-to-end tests of the threaded SMR cluster."""

import threading
import time

import pytest

from repro.apps import BankService, KVStoreService, LinkedListService
from repro.core.command import Command
from repro.errors import ConfigurationError
from repro.smr import ClientTimeout, ClusterConfig, ThreadedCluster
from repro.workload import WorkloadGenerator


def linked_list_config(**overrides):
    defaults = dict(
        service_factory=lambda: LinkedListService(initial_size=50),
        cos_algorithm="lock-free",
        workers=3,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def wait_consistent(cluster, expected_executed, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if min(cluster.total_executed()) >= expected_executed:
            return True
        time.sleep(0.01)
    return False


class TestBasicOperation:
    @pytest.mark.parametrize("algorithm", ("lock-free", "coarse-grained",
                                           "fine-grained", "sequential"))
    def test_round_trips_all_algorithms(self, algorithm):
        with ThreadedCluster(linked_list_config(
                cos_algorithm=algorithm,
                workers=1 if algorithm == "sequential" else 3)) as cluster:
            client = cluster.client()
            assert client.execute(
                Command("contains", (5,), writes=False)) is True
            assert client.execute(Command("add", (500,), writes=True)) is True
            assert client.execute(Command("add", (500,), writes=True)) is False

    def test_batch_round_trip(self):
        with ThreadedCluster(linked_list_config()) as cluster:
            client = cluster.client()
            responses = client.execute_batch(
                [Command("add", (1000 + i,), writes=True) for i in range(25)])
            assert responses == [True] * 25

    def test_replicas_converge(self):
        with ThreadedCluster(linked_list_config()) as cluster:
            client = cluster.client()
            workload = WorkloadGenerator(30.0, key_space=200, seed=5)
            for _ in range(8):
                client.execute_batch(workload.commands(10))
            assert wait_consistent(cluster, 80)
            snapshots = [sorted(s.snapshot()) for s in cluster.services()]
            assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_sequencer_protocol(self):
        with ThreadedCluster(linked_list_config(
                protocol="sequencer")) as cluster:
            client = cluster.client()
            assert client.execute(
                Command("contains", (1,), writes=False)) is True

    def test_multiple_clients_different_contacts(self):
        with ThreadedCluster(linked_list_config()) as cluster:
            clients = [cluster.client(contact=i) for i in range(3)]
            for index, client in enumerate(clients):
                assert client.execute(
                    Command("add", (900 + index,), writes=True)) is True
            assert wait_consistent(cluster, 3)

    def test_client_ids_unique(self):
        with ThreadedCluster(linked_list_config()) as cluster:
            cluster.client("dup")
            with pytest.raises(ConfigurationError):
                cluster.client("dup")


class TestConfiguration:
    def test_even_paxos_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(service_factory=LinkedListService,
                          n_replicas=4).validate()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(service_factory=LinkedListService,
                          protocol="carrier-pigeon").validate()

    def test_sequencer_allows_even_count(self):
        config = ClusterConfig(service_factory=LinkedListService,
                               protocol="sequencer", n_replicas=2)
        config.validate()


class TestFaultTolerance:
    def test_follower_crash_preserves_service(self):
        with ThreadedCluster(linked_list_config()) as cluster:
            client = cluster.client()
            client.execute(Command("add", (700,), writes=True))
            cluster.crash(2)
            assert client.execute(
                Command("contains", (700,), writes=False)) is True
            snapshots = [sorted(cluster.replicas[i].service.snapshot())
                         for i in (0, 1)]
            # Survivors eventually agree.
            deadline = time.time() + 5
            while time.time() < deadline and snapshots[0] != snapshots[1]:
                time.sleep(0.05)
                snapshots = [sorted(cluster.replicas[i].service.snapshot())
                             for i in (0, 1)]
            assert snapshots[0] == snapshots[1]

    def test_leader_crash_preserves_service(self):
        config = linked_list_config(
            leader_timeout=0.1, heartbeat_interval=0.03, client_timeout=1.5)
        with ThreadedCluster(config) as cluster:
            client = cluster.client(contact=1)
            client.execute(Command("add", (800,), writes=True))
            cluster.crash(0)  # the initial paxos leader
            # The client retries through surviving replicas; a new leader
            # must emerge and serve the request.
            assert client.execute(
                Command("contains", (800,), writes=False)) is True

    def test_majority_crash_times_out(self):
        config = linked_list_config(client_timeout=0.2)
        with ThreadedCluster(config) as cluster:
            client = cluster.client(timeout=0.2)
            client.execute(Command("contains", (1,), writes=False))
            cluster.crash(1)
            cluster.crash(2)
            cluster.crash(0)
            with pytest.raises(ClientTimeout):
                client.execute(Command("contains", (2,), writes=False))


class TestBankEndToEnd:
    def test_concurrent_transfers_conserve_money(self):
        config = ClusterConfig(service_factory=BankService,
                               cos_algorithm="lock-free", workers=4)
        with ThreadedCluster(config) as cluster:
            funding = cluster.client()
            funding.execute_batch(
                [BankService.deposit(f"a{i}", 100) for i in range(8)])

            def hammer(index):
                import random
                rng = random.Random(index)
                client = cluster.client(contact=index % 3)
                for _ in range(20):
                    src, dst = rng.sample(range(8), 2)
                    client.execute(
                        BankService.transfer(f"a{src}", f"a{dst}",
                                             rng.randint(1, 10)))

            threads = [threading.Thread(target=hammer, args=(i,), daemon=True)
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
            assert wait_consistent(cluster, 88)
            for service in cluster.services():
                assert service.total_money() == 800


class TestKVEndToEnd:
    def test_keyed_conflicts_converge(self):
        config = ClusterConfig(service_factory=KVStoreService,
                               cos_algorithm="lock-free", workers=4)
        with ThreadedCluster(config) as cluster:
            client = cluster.client()
            for index in range(60):
                client.execute(KVStoreService.put(f"k{index % 6}", index))
            assert wait_consistent(cluster, 60)
            snapshots = [s.snapshot() for s in cluster.services()]
            assert snapshots[0] == snapshots[1] == snapshots[2]
            assert snapshots[0] == {f"k{i}": 54 + i for i in range(6)}


class TestSpeculativeCluster:
    def test_speculative_round_trip_and_convergence(self):
        from repro.spec.replica import SpeculativeReplica

        with ThreadedCluster(ClusterConfig(
                service_factory=KVStoreService, protocol="sequencer",
                speculative=True, workers=2)) as cluster:
            client = cluster.client()
            for i in range(20):
                assert client.execute(
                    KVStoreService.put(f"k{i}", i)) is None
            assert client.execute(KVStoreService.get("k7")) == 7
            assert wait_consistent(cluster, 21)
            assert all(isinstance(r, SpeculativeReplica)
                       for r in cluster.replicas)
            # The commands really went through the optimistic pipeline.
            assert all(r.speculation_stats["hits"] > 0
                       for r in cluster.replicas)
            snapshots = [s.snapshot() for s in cluster.services()]
            assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_speculative_requires_the_sequencer(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(service_factory=KVStoreService,
                          speculative=True).validate()
