"""Tests for the simulated SMR cluster (Figs. 4-6 environment)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import LIGHT, MODERATE
from repro.smr.sim_cluster import SimClusterConfig, SimClusterResult, run_sim_cluster


def quick(algorithm="lock-free", **overrides):
    defaults = dict(
        algorithm=algorithm,
        workers=4,
        profile=LIGHT,
        n_clients=40,
        warm_ops=200,
        measure_ops=1_200,
    )
    defaults.update(overrides)
    return SimClusterConfig(**defaults)


class TestBasics:
    def test_produces_throughput_and_latency(self):
        result = run_sim_cluster(quick())
        assert isinstance(result, SimClusterResult)
        assert result.throughput > 0
        assert 0 < result.latency_mean < 1.0
        assert result.executed >= 1_200

    def test_all_algorithms_run(self):
        for algorithm in ("lock-free", "coarse-grained", "fine-grained",
                          "sequential"):
            result = run_sim_cluster(quick(algorithm=algorithm, workers=2))
            assert result.throughput > 0, algorithm

    def test_deterministic(self):
        first = run_sim_cluster(quick(seed=9))
        second = run_sim_cluster(quick(seed=9))
        assert first.throughput == second.throughput
        assert first.latency_mean == second.latency_mean
        assert first.events == second.events

    def test_seed_changes_results(self):
        first = run_sim_cluster(quick(seed=1))
        second = run_sim_cluster(quick(seed=2))
        assert first.throughput != second.throughput

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            run_sim_cluster(quick(workers=0))
        with pytest.raises(ConfigurationError):
            run_sim_cluster(quick(execute_replicas=5))


class TestPaperShapes:
    def test_parallel_beats_sequential_read_only(self):
        parallel = run_sim_cluster(quick(algorithm="lock-free", workers=8))
        sequential = run_sim_cluster(quick(algorithm="sequential", workers=1))
        assert parallel.throughput > sequential.throughput

    def test_sequential_wins_write_heavy(self):
        parallel = run_sim_cluster(
            quick(algorithm="lock-free", workers=8, write_pct=100.0,
                  profile=LIGHT))
        sequential = run_sim_cluster(
            quick(algorithm="sequential", workers=1, write_pct=100.0,
                  profile=LIGHT))
        assert sequential.throughput > parallel.throughput * 0.8

    def test_more_clients_more_latency_at_saturation(self):
        light_load = run_sim_cluster(quick(n_clients=5, profile=MODERATE,
                                           workers=8))
        heavy_load = run_sim_cluster(quick(n_clients=150, profile=MODERATE,
                                           workers=8))
        assert heavy_load.latency_mean > light_load.latency_mean

    def test_workers_scale_lock_free(self):
        one = run_sim_cluster(quick(workers=1, profile=MODERATE))
        eight = run_sim_cluster(quick(workers=8, profile=MODERATE))
        assert eight.throughput > one.throughput * 3

    def test_smr_overhead_lowers_throughput_vs_standalone(self):
        from repro.bench.harness import StandaloneConfig, run_standalone
        standalone = run_standalone(StandaloneConfig(
            algorithm="lock-free", workers=8, profile=LIGHT,
            measure_ops=1500, warm_ops=150))
        smr = run_sim_cluster(quick(workers=8, n_clients=200))
        assert smr.throughput < standalone.throughput

    def test_execute_replicas_all(self):
        result = run_sim_cluster(quick(execute_replicas=3))
        assert result.throughput > 0
