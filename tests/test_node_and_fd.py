"""Tests for the threaded event-loop node and the timeout tracker."""

import time

import pytest

from repro.broadcast import (
    FaultPlan,
    SequencerBroadcast,
    ThreadedNode,
    ThreadedTransport,
    TimeoutTracker,
)
from repro.errors import ShutdownError


class TestTimeoutTracker:
    def test_first_check_never_suspects(self):
        tracker = TimeoutTracker()
        assert tracker.expired() is False

    def test_quiet_period_suspects(self):
        tracker = TimeoutTracker()
        tracker.expired()
        assert tracker.expired() is True

    def test_activity_clears_suspicion(self):
        tracker = TimeoutTracker()
        tracker.expired()
        tracker.record_activity()
        assert tracker.expired() is False

    def test_activity_consumed_per_period(self):
        tracker = TimeoutTracker()
        tracker.expired()
        tracker.record_activity()
        tracker.expired()
        assert tracker.expired() is True  # no new activity since

    def test_reset_restores_grace(self):
        tracker = TimeoutTracker()
        tracker.expired()
        tracker.reset()
        assert tracker.expired() is False


class TestThreadedNode:
    def _cluster(self, n=2):
        transport = ThreadedTransport(n, FaultPlan(min_delay=0, max_delay=0))
        delivered = [[] for _ in range(n)]
        nodes = [
            ThreadedNode(
                i, SequencerBroadcast(i, n), transport,
                lambda inst, payload, log=delivered[i]: log.append(payload),
            )
            for i in range(n)
        ]
        for node in nodes:
            node.start()
        return transport, nodes, delivered

    def test_submit_round_trip(self):
        transport, nodes, delivered = self._cluster()
        try:
            nodes[1].submit("hello")
            deadline = time.time() + 5
            while time.time() < deadline and len(delivered[1]) < 1:
                time.sleep(0.01)
            assert delivered[0] == ["hello"]
            assert delivered[1] == ["hello"]
        finally:
            for node in nodes:
                node.stop()
            transport.close()

    def test_stop_is_idempotent(self):
        transport, nodes, _ = self._cluster()
        nodes[0].stop()
        nodes[0].stop()
        nodes[0].join(timeout=5)
        assert not nodes[0].running
        nodes[1].stop()
        transport.close()

    def test_submit_after_stop_raises(self):
        transport, nodes, _ = self._cluster()
        nodes[0].stop()
        with pytest.raises(ShutdownError):
            nodes[0].submit("x")
        nodes[1].stop()
        transport.close()
