"""Smoke tests: the runnable examples actually run.

Each example is executed as a subprocess (the way a user runs it); the
slower demos are trimmed via their CLI arguments where available.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=120):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "replicas consistent: True" in result.stdout


def test_bank_transfers():
    result = run_example("bank_transfers.py")
    assert result.returncode == 0, result.stderr
    assert "money conserved: True" in result.stdout


def test_crash_and_recover():
    result = run_example("crash_and_recover.py")
    assert result.returncode == 0, result.stderr
    assert "replicas converged: True" in result.stdout


@pytest.mark.slow
def test_replicated_linked_list_small():
    result = run_example("replicated_linked_list.py", "10", "2", timeout=240)
    assert result.returncode == 0, result.stderr
    assert "replicas consistent: True" in result.stdout
    assert "lock-free" in result.stdout


@pytest.mark.slow
def test_paper_figures_single():
    result = run_example("paper_figures.py", "fig2", timeout=300)
    assert result.returncode == 0, result.stderr
    assert "fig2" in result.stdout
    assert "lock-free" in result.stdout
