"""Unit tests for the early/static scheduler (repro.core.early).

The shared contract lives in ``test_scheduler_conformance.py``; the
three-way lockstep fuzz in ``test_indexed_differential.py``; what is
covered here is the configuration-time compile step and the semantics
specific to early scheduling: worker-set tiling, reader spread, the
write barrier, free commands, the batched-index rebalancer, and the
observability surface.
"""

import threading

import pytest

from repro.core import (
    EarlyConfig,
    EarlyCOS,
    KeyedConflicts,
    NeverConflicts,
    ReadWriteConflicts,
    ThreadedCOS,
    ThreadedRuntime,
    make_cos,
)
from repro.core.command import Command
from repro.core.early import EarlySchedule
from repro.obs import MetricsRegistry


def read(key=0):
    return Command("contains", (key,), writes=False)


def write(key=0):
    return Command("add", (key,), writes=True)


def make_early(conflicts, workers=4, max_size=64, batched=False, obs=None):
    runtime = ThreadedRuntime()
    cos = EarlyCOS(runtime, conflicts, max_size,
                   config=EarlyConfig(workers=workers, batched=batched),
                   obs=obs)
    return ThreadedCOS(cos, runtime), cos


class TestCompile:
    def test_single_class_spreads_over_all_workers(self):
        plan = EarlySchedule(ReadWriteConflicts(), EarlyConfig(workers=6))
        assert plan.spread == 6
        assert plan.worker_set("rw") == (0, 1, 2, 3, 4, 5)
        assert plan.mode_of("rw") == "barrier"

    def test_unbounded_classes_get_exclusive_lanes(self):
        plan = EarlySchedule(KeyedConflicts(), EarlyConfig(workers=4))
        assert plan.spread == 1
        for key in range(16):
            (lane,) = plan.worker_set(key)
            assert 0 <= lane < 4
        assert plan.mode_of(3) == "exclusive"

    def test_known_universe_tiles_disjoint_blocks(self):
        # 2 classes over 6 workers -> 3 lanes each, non-overlapping.
        relation = KeyedConflicts()
        relation.class_universe = lambda: 2
        plan = EarlySchedule(relation, EarlyConfig(workers=6))
        assert plan.spread == 3
        sets = {plan.worker_set(c) for c in (0, 1)}
        lanes = [lane for ws in sets for lane in ws]
        assert len(lanes) == len(set(lanes)), "worker sets overlap"

    def test_spread_override_and_validation(self):
        plan = EarlySchedule(ReadWriteConflicts(),
                             EarlyConfig(workers=4, spread=2))
        assert plan.spread == 2
        with pytest.raises(ValueError):
            EarlySchedule(ReadWriteConflicts(),
                          EarlyConfig(workers=4, spread=0))
        with pytest.raises(ValueError):
            EarlySchedule(ReadWriteConflicts(), EarlyConfig(workers=0))

    def test_describe_names_the_policy(self):
        static = EarlySchedule(ReadWriteConflicts(), EarlyConfig(workers=2))
        batched = EarlySchedule(ReadWriteConflicts(),
                                EarlyConfig(workers=2, batched=True))
        assert static.describe()["policy"] == "static"
        assert batched.describe()["policy"] == "batched-index"


class TestSemantics:
    def test_reads_of_one_class_run_concurrently(self):
        # The property plain class-based scheduling gives up: with the
        # read/write relation, reads spread round-robin over the worker
        # set and are simultaneously gettable.
        cos, _ = make_early(ReadWriteConflicts(), workers=4)
        reads = [read(i) for i in range(4)]
        for cmd in reads:
            cos.insert(cmd)
        handles = [cos.get() for _ in reads]
        assert {cos.command_of(h).uid for h in handles} == {
            c.uid for c in reads}
        for handle in handles:
            cos.remove(handle)

    def test_write_barriers_across_the_worker_set(self):
        cos, _ = make_early(ReadWriteConflicts(), workers=2)
        r1, r2, w = read(1), read(2), write(3)
        cos.insert(r1)   # lane 0
        cos.insert(r2)   # lane 1
        cos.insert(w)    # barrier: lanes {0, 1}
        h1, h2 = cos.get(), cos.get()
        cos.remove(h1)
        got = []

        def getter():
            got.append(cos.command_of(cos.get()))

        thread = threading.Thread(target=getter, daemon=True)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "write ran before its whole worker set"
        cos.remove(h2)
        thread.join(timeout=5)
        assert got == [w]

    def test_free_commands_bypass_the_lanes(self):
        cos, inner = make_early(NeverConflicts(), workers=2)
        writes = [write(i) for i in range(5)]
        for cmd in writes:
            cos.insert(cmd)
        assert inner.lane_stats_unsafe() == ((0, 0), 5)
        handles = [cos.get() for _ in writes]
        assert len(handles) == 5
        for handle in handles:
            cos.remove(handle)

    def test_remove_twice_rejected(self):
        cos, _ = make_early(ReadWriteConflicts(), workers=2)
        cos.insert(read(1))
        handle = cos.get()
        cos.remove(handle)
        with pytest.raises(LookupError):
            cos.remove(handle)

    def test_non_decomposable_relation_rejected(self):
        from repro.core import PredicateConflicts
        runtime = ThreadedRuntime()
        with pytest.raises(ValueError, match="supports_footprint"):
            EarlyCOS(runtime, PredicateConflicts(lambda a, b: True))


class TestBatchedIndex:
    def test_homes_go_to_least_loaded_lane(self):
        plan = EarlySchedule(KeyedConflicts(),
                             EarlyConfig(workers=3, batched=True))
        lanes = [plan.assign(((key, True),))[0][0] for key in "abc"]
        assert sorted(lanes) == [0, 1, 2], "classes not spread by load"

    def test_idle_classes_rehome_after_a_batch(self):
        plan = EarlySchedule(
            KeyedConflicts(),
            EarlyConfig(workers=2, batched=True, batch_size=2))
        plan.assign((("hot", True),))
        plan.retire((("hot", True),))
        plan.assign((("other", True),))
        plan.retire((("other", True),))   # second removal -> purge sweep
        assert plan.rebalances >= 1
        # "hot" is idle, so it may re-home; a *live* class keeps its home.
        live_home = plan.assign((("pinned", True),))[0]
        again = plan.assign((("pinned", True),))[0]
        assert live_home == again, "live class re-homed mid-flight"

    def test_batched_cos_end_to_end(self):
        cos, inner = make_early(KeyedConflicts(), workers=2, batched=True)
        for i in range(12):
            cos.insert(write(i % 4))
        for _ in range(12):
            cos.remove(cos.get())
        depths, ready = inner.lane_stats_unsafe()
        assert depths == (0, 0) and ready == 0


class TestObservability:
    def test_lane_depth_and_barrier_metrics(self):
        registry = MetricsRegistry()
        cos, _ = make_early(ReadWriteConflicts(), workers=2, obs=registry)
        cos.insert(read(1))
        cos.insert(read(2))
        cos.insert(write(3))
        snapshot = registry.snapshot()
        assert snapshot['early_lane_depth{lane="0"}']["value"] == 2
        assert snapshot['early_lane_depth{lane="1"}']["value"] == 2
        assert snapshot["early_barrier_commands_total"]["value"] == 1
        assert snapshot["cos_inserts_total"]["value"] == 3
        for _ in range(3):
            cos.remove(cos.get())
        snapshot = registry.snapshot()
        assert snapshot['early_lane_depth{lane="0"}']["value"] == 0
        assert snapshot["cos_removes_total"]["value"] == 3

    def test_make_cos_obs_and_workers_plumbing(self):
        registry = MetricsRegistry()
        runtime = ThreadedRuntime()
        cos = make_cos("early-batched", runtime, ReadWriteConflicts(),
                       workers=3, obs=registry)
        assert cos.schedule().describe()["workers"] == 3
        assert cos.schedule().describe()["policy"] == "batched-index"
