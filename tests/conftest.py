"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.core import ThreadedCOS, ThreadedRuntime, make_cos
from repro.core.command import Command, ConflictRelation

ALL_ALGORITHMS = ("coarse-grained", "fine-grained", "lock-free", "indexed",
                  "sequential", "early")
#: Schedulers exposing the paper's full DAG scheduling freedom (reads of a
#: class commute; independent commands are simultaneously gettable).  The
#: conservative backends — sequential, class-based, early — are excluded:
#: they satisfy the shared contract (test_scheduler_conformance.py) but
#: deliberately serialize more than the pairwise relation requires.
GRAPH_ALGORITHMS = ("coarse-grained", "fine-grained", "lock-free", "indexed")


@pytest.fixture
def threaded_runtime() -> ThreadedRuntime:
    return ThreadedRuntime()


def make_threaded_cos(algorithm: str, conflicts: ConflictRelation,
                      max_size: int = 150) -> ThreadedCOS:
    runtime = ThreadedRuntime()
    return ThreadedCOS(
        make_cos(algorithm, runtime, conflicts, max_size=max_size), runtime)


class ExecutionLog:
    """Thread-safe record of command execution intervals.

    ``start`` is stamped after ``get`` returns (before execution), ``finish``
    just before ``remove`` is invoked — so for any conflicting pair delivered
    as i before j, COS correctness requires finish(i) < start(j).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.start: Dict[int, int] = {}
        self.finish: Dict[int, int] = {}
        self.order: List[int] = []

    def record_start(self, uid: int) -> None:
        with self._lock:
            self.start[uid] = time.monotonic_ns()
            self.order.append(uid)

    def record_finish(self, uid: int) -> None:
        with self._lock:
            self.finish[uid] = time.monotonic_ns()

    def assert_conflicts_ordered(
        self, commands: Sequence[Command], conflicts: ConflictRelation
    ) -> None:
        """Check every conflicting pair executed in delivery order."""
        for i, first in enumerate(commands):
            for second in commands[i + 1:]:
                if not conflicts.conflicts(first, second):
                    continue
                assert self.finish[first.uid] <= self.start[second.uid], (
                    f"conflicting {first} and {second} overlapped"
                )


def run_threaded_workload(
    cos: ThreadedCOS,
    commands: Sequence[Command],
    n_workers: int,
    execute_ns: int = 0,
    stop_op: str = "__stop__",
) -> ExecutionLog:
    """Drive Algorithm 1 on real threads; returns the execution log.

    The scheduler inserts ``commands`` in order, then one poison pill per
    worker.  Pills are writes, so they conflict with everything under the
    read/write relation and drain last.
    """
    log = ExecutionLog()

    def worker() -> None:
        while True:
            handle = cos.get()
            command = cos.command_of(handle)
            if command.op == stop_op:
                cos.remove(handle)
                return
            log.record_start(command.uid)
            if execute_ns:
                deadline = time.monotonic_ns() + execute_ns
                while time.monotonic_ns() < deadline:
                    pass
            log.record_finish(command.uid)
            cos.remove(handle)

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(n_workers)]
    for thread in threads:
        thread.start()
    for command in commands:
        cos.insert(command)
    for _ in range(n_workers):
        cos.insert(Command(op=stop_op, writes=True))
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "worker stuck — scheduler lost a command"
    return log


def make_mixed_commands(count: int, write_every: int,
                        key_space: int = 50) -> List[Command]:
    """Deterministic read/write mix: every ``write_every``-th is a write."""
    commands = []
    for index in range(count):
        is_write = write_every > 0 and index % write_every == 0
        commands.append(Command(
            op="add" if is_write else "contains",
            args=(index % key_space,),
            writes=is_write,
        ))
    return commands
