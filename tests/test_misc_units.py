"""Small unit tests: effects, nodes, sequential COS edge paths, reprs."""

import pytest

from repro.core import ReadWriteConflicts, ThreadedRuntime
from repro.core.command import Command
from repro.core.effects import (
    Acquire,
    Cas,
    Down,
    Load,
    Release,
    Signal,
    SignalAll,
    Store,
    Up,
    Wait,
    Work,
)
from repro.core.node import (
    EXECUTING,
    READY,
    REMOVED,
    WAITING,
    CoarseNode,
    FineNode,
    LockFreeNode,
)
from repro.core.sequential import SequentialCOS, SequentialHandle


def read(key=0):
    return Command("contains", (key,), writes=False)


class TestEffects:
    def test_reprs_name_their_kind(self):
        mutex, sem, cond, cell = object(), object(), object(), object()
        cases = [
            (Acquire(mutex), "Acquire"),
            (Release(mutex), "Release"),
            (Wait(cond), "Wait"),
            (Signal(cond), "Signal"),
            (SignalAll(cond), "SignalAll"),
            (Down(sem), "Down"),
            (Up(sem, 3), "Up"),
            (Load(cell), "Load"),
            (Store(cell, 5), "Store"),
            (Cas(cell, 1, 2), "Cas"),
            (Work(1e-6), "Work"),
        ]
        for effect, name in cases:
            assert name in repr(effect)

    def test_up_default_amount(self):
        assert Up(object()).amount == 1

    def test_effects_are_slotted(self):
        with pytest.raises(AttributeError):
            Work(1.0).extra = True


class TestNodes:
    def test_status_constants(self):
        assert (WAITING, READY, EXECUTING, REMOVED) == (
            "wtg", "rdy", "exe", "rmd")

    def test_coarse_node_defaults(self):
        node = CoarseNode(read(1), 7)
        assert node.status == WAITING
        assert not node.deps_in and not node.deps_out
        assert "seq=7" in repr(node)

    def test_fine_node_sentinel_repr(self):
        runtime = ThreadedRuntime()
        sentinel = FineNode(None, -1, runtime, sentinel=True)
        assert "sentinel" in repr(sentinel)
        regular = FineNode(read(1), 0, runtime)
        assert "wtg" in repr(regular)

    def test_lock_free_node_starts_unpublished(self):
        runtime = ThreadedRuntime()
        node = LockFreeNode(read(1), 0, runtime)
        assert node.st.value == WAITING
        assert node.dep_on.value is None
        assert node.dep_me.value == ()
        assert node.nxt.value is None


class TestSequentialCOS:
    def _make(self, max_size=4):
        runtime = ThreadedRuntime()
        return runtime, SequentialCOS(runtime, max_size=max_size)

    def test_remove_wrong_handle_raises(self):
        runtime, cos = self._make()
        runtime.run(cos.insert(read(1)))
        runtime.run(cos.insert(read(2)))
        first = runtime.run(cos.get())
        runtime.run(cos.remove(first))
        with pytest.raises(LookupError):
            runtime.run(cos.remove(first))  # already removed

    def test_handle_repr(self):
        handle = SequentialHandle(read(3), 9)
        assert "seq=9" in repr(handle)

    def test_second_get_blocked_until_remove(self):
        import threading

        runtime, cos = self._make()
        runtime.run(cos.insert(read(1)))
        runtime.run(cos.insert(read(2)))
        first = runtime.run(cos.get())
        got = []

        def getter():
            got.append(runtime.run(cos.get()))

        thread = threading.Thread(target=getter, daemon=True)
        thread.start()
        thread.join(timeout=0.1)
        assert thread.is_alive()  # strict serialization
        runtime.run(cos.remove(first))
        thread.join(timeout=5)
        assert got and got[0].cmd.args == (2,)

    def test_invalid_max_size(self):
        runtime = ThreadedRuntime()
        with pytest.raises(ValueError):
            SequentialCOS(runtime, max_size=0)


class TestSimProcessRepr:
    def test_states(self):
        from repro.sim.process import SimProcess
        proc = SimProcess(iter(()), "walker")
        assert "running" in repr(proc)
        proc.finish(42)
        assert "done" in repr(proc)
        assert proc.result == 42

    def test_on_done_after_completion_fires_immediately(self):
        from repro.sim.process import SimProcess
        proc = SimProcess(iter(()), "p")
        proc.finish("x")
        seen = []
        proc.on_done(lambda p: seen.append(p.result))
        assert seen == ["x"]
