"""Property-based and chaos tests for the full SMR stack.

The fundamental SMR property: whatever the interleaving of clients,
networks, and worker pools, every replica's state must equal the state of a
single sequential reference executing the same commands in delivery order —
and all replicas must agree with each other.
"""

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import KVStoreService, LinkedListService
from repro.broadcast import FaultPlan
from repro.core.command import Command
from repro.smr import ClusterConfig, ThreadedCluster


def wait_until(predicate, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@st.composite
def kv_programs(draw):
    """A few clients' worth of KV operations."""
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["put", "get", "delete", "cas"]))
        key = f"k{draw(st.integers(0, 4))}"
        if kind == "put":
            ops.append(("put", key, draw(st.integers(0, 9))))
        elif kind == "get":
            ops.append(("get", key))
        elif kind == "delete":
            ops.append(("delete", key))
        else:
            ops.append(("cas", key, draw(st.integers(0, 9)),
                        draw(st.integers(0, 9))))
    return ops


def to_command(op):
    kind = op[0]
    if kind == "put":
        return KVStoreService.put(op[1], op[2])
    if kind == "get":
        return KVStoreService.get(op[1])
    if kind == "delete":
        return KVStoreService.delete(op[1])
    return KVStoreService.cas(op[1], op[2], op[3])


class TestReplicasMatchSequentialReference:
    @given(program=kv_programs(),
           algorithm=st.sampled_from(["lock-free", "coarse-grained",
                                      "class-based"]))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_single_client_program(self, program, algorithm):
        # With one client the delivery order equals the submission order,
        # so a sequential reference predicts both responses and state.
        reference = KVStoreService()
        expected_responses = [reference.execute(to_command(op))
                              for op in program]
        config = ClusterConfig(
            service_factory=KVStoreService,
            cos_algorithm=algorithm,
            workers=3,
        )
        with ThreadedCluster(config) as cluster:
            client = cluster.client()
            responses = [client.execute(to_command(op)) for op in program]
            assert responses == expected_responses
            assert wait_until(
                lambda: min(cluster.total_executed()) >= len(program))
            snapshots = [s.snapshot() for s in cluster.services()]
            assert snapshots[0] == snapshots[1] == snapshots[2]
            assert snapshots[0] == reference.snapshot()


class TestChaos:
    def test_lossy_duplicating_network_under_concurrent_clients(self):
        """Loss + duplication + delay + a crash + a recovery, live traffic."""
        config = ClusterConfig(
            service_factory=lambda: LinkedListService(initial_size=50),
            cos_algorithm="lock-free",
            workers=4,
            stable_storage=True,
            heartbeat_interval=0.03,
            leader_timeout=0.15,
            client_timeout=1.0,
            fault_plan=FaultPlan(seed=11, min_delay=0.0, max_delay=0.002,
                                 loss=0.03, duplication=0.05),
        )
        with ThreadedCluster(config) as cluster:
            errors = []

            def client_loop(index):
                try:
                    client = cluster.client(contact=index % 3)
                    for op in range(30):
                        key = 1000 + index * 100 + op
                        assert client.execute(
                            Command("add", (key,), writes=True)) is True
                except Exception as error:  # noqa: BLE001 - collected
                    errors.append(error)

            threads = [threading.Thread(target=client_loop, args=(i,),
                                        daemon=True) for i in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.2)
            cluster.crash(2)
            time.sleep(0.3)
            cluster.restart_replica(2)
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()
            assert not errors, errors
            # All 120 adds executed exactly once everywhere (dedup holds
            # despite duplication and retransmission).
            assert wait_until(
                lambda: all(len(s.snapshot()) == 170
                            for s in cluster.services()), timeout=20)
            snapshots = [sorted(s.snapshot()) for s in cluster.services()]
            assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_partition_heals(self):
        plan = FaultPlan(min_delay=0.0, max_delay=0.0)
        config = ClusterConfig(
            service_factory=KVStoreService,
            cos_algorithm="lock-free",
            workers=2,
            heartbeat_interval=0.03,
            leader_timeout=0.12,
            fault_plan=plan,
        )
        with ThreadedCluster(config) as cluster:
            client = cluster.client()
            client.execute(KVStoreService.put("a", 1))
            # Isolate replica 2 from both peers; majority keeps working.
            plan.partition(2, 0)
            plan.partition(2, 1)
            client.execute(KVStoreService.put("b", 2))
            plan.heal_all()
            client.execute(KVStoreService.put("c", 3))
            assert wait_until(
                lambda: cluster.replicas[2].service.snapshot()
                == {"a": 1, "b": 2, "c": 3}, timeout=10)
