"""Property-based tests of COS semantics (hypothesis).

Strategy: generate a random command stream (ops, keys, read/write mix) and
a worker count, run it through each scheduler on real threads, and check
the machine-checkable consequences of the COS specification:

- exactly-once execution;
- conflicting pairs execute in delivery order, without overlap;
- replaying the stream against the linked-list service in parallel yields
  the same final state as strict sequential execution (independent
  commands commute).
"""

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import GRAPH_ALGORITHMS, make_threaded_cos
from repro.apps import LinkedListService
from repro.core import KeyedConflicts, ReadWriteConflicts
from repro.core.command import Command

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def command_streams(draw):
    length = draw(st.integers(min_value=1, max_value=60))
    commands = []
    for _ in range(length):
        key = draw(st.integers(min_value=0, max_value=9))
        is_write = draw(st.booleans())
        commands.append(Command(
            op="add" if is_write else "contains",
            args=(key,),
            writes=is_write,
        ))
    return commands


def _execute_parallel(algorithm, commands, conflicts, service, n_workers):
    """Algorithm-1 loop applying commands to a service; thread-safe by COS."""
    cos = make_threaded_cos(algorithm, conflicts, max_size=16)
    responses = {}
    response_lock = threading.Lock()

    def worker():
        while True:
            handle = cos.get()
            command = cos.command_of(handle)
            if command.op == "__stop__":
                cos.remove(handle)
                return
            result = service.execute(command)
            with response_lock:
                responses[command.uid] = result
            cos.remove(handle)

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(n_workers)]
    for thread in threads:
        thread.start()
    for command in commands:
        cos.insert(command)
    for _ in range(n_workers):
        cos.insert(Command(op="__stop__", writes=True))
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    return responses


class TestParallelEqualsSequential:
    @given(commands=command_streams(),
           n_workers=st.integers(min_value=1, max_value=6),
           algorithm=st.sampled_from(GRAPH_ALGORITHMS))
    @settings(**_SETTINGS)
    def test_linked_list_state_converges(self, commands, n_workers, algorithm):
        reference = LinkedListService(initial_size=5)
        expected = [reference.execute(command) for command in commands]
        expected_state = reference.snapshot()

        service = LinkedListService(initial_size=5)
        responses = _execute_parallel(
            algorithm, commands, ReadWriteConflicts(), service, n_workers)
        assert service.snapshot() == expected_state
        # Responses must match too: with read/write conflicts the execution
        # is equivalent to the delivery order for every command.
        assert [responses[c.uid] for c in commands] == expected

    @given(commands=command_streams(),
           n_workers=st.integers(min_value=1, max_value=6),
           algorithm=st.sampled_from(GRAPH_ALGORITHMS))
    @settings(**_SETTINGS)
    def test_exactly_once(self, commands, n_workers, algorithm):
        service = LinkedListService(initial_size=0)
        responses = _execute_parallel(
            algorithm, commands, ReadWriteConflicts(), service, n_workers)
        assert set(responses) == {command.uid for command in commands}


class TestKeyedConflictProperty:
    @given(commands=command_streams(),
           algorithm=st.sampled_from(GRAPH_ALGORITHMS))
    @settings(**_SETTINGS)
    def test_per_key_write_order_preserved(self, commands, algorithm):
        """With keyed conflicts, per-key command subsequences serialize in
        delivery order, so a per-key log must equal the delivery order."""
        logs = {}
        log_lock = threading.Lock()

        class LoggingService(LinkedListService):
            def execute(self, command):
                with log_lock:
                    logs.setdefault(command.args[0], []).append(command.uid)
                return True

        service = LoggingService()
        _execute_parallel(algorithm, commands, KeyedConflicts(), service, 4)
        for key, uids in logs.items():
            # All commands conflict per key once any is a write; reads-only
            # keys may reorder, so check only keys that contain a write.
            key_commands = [c for c in commands if c.args[0] == key]
            if any(c.writes for c in key_commands):
                writes_expected = [c.uid for c in key_commands if c.writes]
                writes_logged = [uid for uid in uids if uid in set(writes_expected)]
                assert writes_logged == writes_expected
