"""Tests for effect tracing and worker-pool reconfiguration."""

import time

import pytest

from repro.apps import KVStoreService
from repro.core import LockFreeCOS, ReadWriteConflicts, ThreadedRuntime
from repro.core.command import Command
from repro.errors import ShutdownError
from repro.sim import SimRuntime, Simulator
from repro.sim.trace import Tracer, traced
from repro.smr.replica import ParallelReplica


def read(key):
    return Command("contains", (key,), writes=False)


class TestTracer:
    def test_records_effects_and_return(self):
        runtime = ThreadedRuntime()
        cos = LockFreeCOS(runtime, ReadWriteConflicts())
        tracer = Tracer()
        runtime.run(traced(cos.insert(read(1)), tracer, "insert"))
        assert tracer.count("Down") == 1   # space semaphore
        assert tracer.count("Store") >= 2  # dep_on publish + head link
        assert tracer.count("return") == 1

    def test_passthrough_preserves_results(self):
        runtime = ThreadedRuntime()
        cos = LockFreeCOS(runtime, ReadWriteConflicts())
        tracer = Tracer()
        runtime.run(traced(cos.insert(read(1)), tracer))
        handle = runtime.run(traced(cos.get(), tracer, "get"))
        assert handle.cmd.args == (1,)

    def test_clock_timestamps(self):
        sim = Simulator()
        runtime = SimRuntime(sim)
        tracer = Tracer(clock=lambda: sim.now)
        from repro.core.effects import Work

        def proc():
            yield Work(1.0)
            yield Work(2.0)

        runtime.spawn(traced(proc(), tracer, "p"))
        sim.run()
        times = [entry[0] for entry in tracer.entries]
        assert times[0] <= times[-1]
        assert tracer.count("Work") == 2

    def test_bounded_capacity(self):
        tracer = Tracer(capacity=5)
        for index in range(20):
            tracer.record("x", "Work")
        assert len(tracer.entries) == 5
        assert tracer.count("Work") == 20  # counters are not bounded

    def test_summary_and_clear(self):
        tracer = Tracer()
        tracer.record("a", "Load")
        tracer.record("a", "Load")
        tracer.record("a", "Cas")
        assert "Load" in tracer.summary()
        tracer.clear()
        assert tracer.count("Load") == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestResizeWorkers:
    def _drain(self, replica, count, timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline and replica.executed < count:
            time.sleep(0.005)
        return replica.executed >= count

    def test_grow_pool(self):
        replica = ParallelReplica(0, KVStoreService(), workers=1)
        replica.start()
        try:
            replica.resize_workers(4)
            assert replica.workers == 4
            commands = tuple(Command("get", (i,), writes=False)
                             for i in range(50))
            replica.on_deliver(0, commands)
            assert self._drain(replica, 50)
        finally:
            replica.stop()

    def test_shrink_pool_still_executes(self):
        replica = ParallelReplica(0, KVStoreService(), workers=4)
        replica.start()
        try:
            replica.resize_workers(1)
            assert replica.workers == 1
            commands = tuple(Command("put", (f"k{i}", i), writes=True)
                             for i in range(30))
            replica.on_deliver(0, commands)
            assert self._drain(replica, 30)
        finally:
            replica.stop()

    def test_resize_before_start_rejected(self):
        replica = ParallelReplica(0, KVStoreService(), workers=2)
        with pytest.raises(ShutdownError):
            replica.resize_workers(4)

    def test_invalid_size_rejected(self):
        replica = ParallelReplica(0, KVStoreService(), workers=2)
        replica.start()
        try:
            with pytest.raises(ValueError):
                replica.resize_workers(0)
        finally:
            replica.stop()
