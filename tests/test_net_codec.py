"""Unit tests for the TCP wire codec (tagged JSON + length-prefix frames)."""

import dataclasses

import pytest

from repro.broadcast.messages import (
    Accept,
    CatchupReply,
    CatchupRequest,
    Decide,
    Forward,
    Heartbeat,
    Nack,
    Prepare,
    Promise,
    SequencerStamp,
)
from repro.core.command import Command
from repro.net.codec import (
    MAX_FRAME,
    CodecError,
    decode,
    decode_frame,
    dumps,
    encode,
    encode_frame,
    loads,
)
from repro.net.messages import ClientRequest, ClientResponse


def roundtrip(obj):
    return loads(dumps(obj))


class TestValueRoundtrips:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, 2 ** 40, 0.25, "hello", "ünïcode",
    ])
    def test_scalars(self, value):
        assert roundtrip(value) == value

    def test_lists_stay_lists(self):
        assert roundtrip([1, "two", [3.0, None]]) == [1, "two", [3.0, None]]

    def test_tuples_come_back_as_tuples(self):
        value = (1, ("nested", 2), [3, (4,)])
        result = roundtrip(value)
        assert result == value
        assert isinstance(result, tuple)
        assert isinstance(result[1], tuple)
        assert isinstance(result[2][1], tuple)

    def test_dict_preserves_non_string_keys(self):
        value = {0: "zero", (1, 2): "ballot", "s": {3: 4}}
        result = roundtrip(value)
        assert result == value
        assert (1, 2) in result  # key identity survives, not str((1, 2))

    def test_command_roundtrip(self):
        command = Command("add", (17,), writes=True,
                          client_id="c9", request_id=3)
        result = roundtrip(command)
        assert result == command
        assert isinstance(result.args, tuple)


class TestProtocolMessages:
    BALLOT = (2, 1)

    @pytest.mark.parametrize("message", [
        Prepare(ballot=BALLOT),
        Promise(ballot=BALLOT,
                accepted={4: ((1, 0), (Command("add", (1,), writes=True),))}),
        Accept(ballot=BALLOT, instance=4,
               value=(Command("contains", (2,), writes=False),)),
        Nack(ballot=BALLOT, promised=(3, 2)),
        Decide(instance=4, value=(Command("add", (5,), writes=True),)),
        CatchupRequest(7),
        Heartbeat(ballot=BALLOT, decided_up_to=12),
        SequencerStamp(3, (Command("add", (9,), writes=True),)),
    ])
    def test_roundtrip(self, message):
        assert roundtrip(message) == message

    def test_catchup_reply_keys_are_ints(self):
        reply = CatchupReply({3: (Command("add", (1,), writes=True),)})
        result = roundtrip(reply)
        assert result == reply
        assert set(result.decided) == {3}

    def test_forward_roundtrip(self):
        # Construct by keyword: `payload` is the one required field, any
        # later additions (e.g. `hops`) carry defaults.
        payload = (Command("add", (2,), writes=True),)
        forward = Forward(payload=payload)
        assert roundtrip(forward) == forward
        assert roundtrip(Forward(payload=payload, hops=3)).hops == 3

    def test_client_envelope_roundtrip(self):
        request = ClientRequest(
            payload=(Command("add", (1,), client_id="c1", request_id=1,
                             writes=True),),
            reply_to=1000, reply_host="127.0.0.1", reply_port=4242,
            client_id="c1")
        assert roundtrip(request) == request
        response = ClientResponse(
            command=request.payload[0], response=True, replica_id=2)
        assert roundtrip(response) == response


class TestRejections:
    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode({"!": "EvilType", "v": {}})

    def test_unregistered_class_not_encodable(self):
        @dataclasses.dataclass
        class Unregistered:
            x: int

        with pytest.raises(CodecError):
            encode(Unregistered(1))

    def test_registered_name_with_wrong_fields(self):
        with pytest.raises(CodecError):
            decode({"!": "Decide", "v": {"bogus": 1}})

    def test_arbitrary_object_not_encodable(self):
        with pytest.raises(CodecError):
            encode(object())

    def test_malformed_bytes(self):
        with pytest.raises(CodecError):
            loads(b"{not json")

    def test_non_utf8_bytes(self):
        with pytest.raises(CodecError):
            loads(b"\xff\xfe")


class TestFrames:
    def test_frame_roundtrip(self):
        msg = Decide(instance=1,
                     value=(Command("add", (3,), writes=True),))
        frame = encode_frame(7, msg)
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4
        src, decoded = decode_frame(frame[4:])
        assert src == 7
        assert decoded == msg

    def test_oversized_frame_rejected(self):
        with pytest.raises(CodecError):
            encode_frame(0, "x" * (MAX_FRAME + 1))

    def test_frame_body_must_be_pair(self):
        with pytest.raises(CodecError):
            decode_frame(dumps([1, 2, 3]))
        with pytest.raises(CodecError):
            decode_frame(dumps(5))

    def test_frame_src_must_be_int(self):
        with pytest.raises(CodecError):
            decode_frame(dumps(("zero", Heartbeat(ballot=(1, 0)))))
