"""Tests for workload generation and simulation metrics."""

import pytest

from repro.core.command import stable_hash
from repro.sim import Metrics, Simulator
from repro.workload import (
    MULTI_READ_OP,
    MULTI_WRITE_OP,
    READ_OP,
    WRITE_OP,
    WorkloadGenerator,
)


class TestWorkloadGenerator:
    def test_write_percentage_respected(self):
        generator = WorkloadGenerator(25.0, seed=3)
        commands = generator.commands(4000)
        writes = sum(command.writes for command in commands)
        assert 0.20 < writes / len(commands) < 0.30

    def test_zero_writes(self):
        generator = WorkloadGenerator(0.0, seed=1)
        assert not any(c.writes for c in generator.commands(500))

    def test_all_writes(self):
        generator = WorkloadGenerator(100.0, seed=1)
        assert all(c.writes for c in generator.commands(500))

    def test_ops_match_write_flag(self):
        for command in WorkloadGenerator(50.0, seed=2).commands(200):
            assert command.op == (WRITE_OP if command.writes else READ_OP)

    def test_keys_in_range(self):
        generator = WorkloadGenerator(50.0, key_space=10, seed=2)
        assert all(0 <= c.args[0] < 10 for c in generator.commands(300))

    def test_seed_reproducibility(self):
        a = WorkloadGenerator(30.0, seed=9).commands(100)
        b = WorkloadGenerator(30.0, seed=9).commands(100)
        assert [(c.op, c.args) for c in a] == [(c.op, c.args) for c in b]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(30.0, seed=1).commands(100)
        b = WorkloadGenerator(30.0, seed=2).commands(100)
        assert [(c.op, c.args) for c in a] != [(c.op, c.args) for c in b]

    def test_client_id_stamped(self):
        generator = WorkloadGenerator(10.0, seed=1, client_id="c9")
        command = generator.next_command()
        assert command.client_id == "c9"
        assert command.request_id == 1

    def test_request_ids_increment(self):
        generator = WorkloadGenerator(10.0, seed=1)
        ids = [generator.next_command().request_id for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert generator.issued == 5

    def test_iterator_protocol(self):
        generator = WorkloadGenerator(10.0, seed=1)
        stream = iter(generator)
        assert next(stream).uid != next(stream).uid

    @pytest.mark.parametrize("bad", [-1.0, 101.0])
    def test_invalid_write_pct(self, bad):
        with pytest.raises(ValueError):
            WorkloadGenerator(bad)

    def test_invalid_key_space(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(10.0, key_space=0)


class TestZipfianKeys:
    def test_zipf_is_seeded_and_reproducible(self):
        a = WorkloadGenerator(20.0, seed=5, key_dist="zipf").commands(200)
        b = WorkloadGenerator(20.0, seed=5, key_dist="zipf").commands(200)
        assert [(c.op, c.args) for c in a] == [(c.op, c.args) for c in b]

    def test_zipf_keys_in_range(self):
        generator = WorkloadGenerator(50.0, key_space=64, seed=2,
                                      key_dist="zipf")
        assert all(0 <= c.args[0] < 64 for c in generator.commands(500))

    def test_zipf_skews_toward_low_ranks(self):
        generator = WorkloadGenerator(0.0, key_space=1000, seed=7,
                                      key_dist="zipf", zipf_s=0.99)
        keys = [c.args[0] for c in generator.commands(5000)]
        counts = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        hottest = max(counts, key=counts.get)
        # Rank == key: key 0 is the head of the distribution.
        assert hottest == 0
        top10 = sum(counts.get(k, 0) for k in range(10))
        assert top10 / len(keys) > 0.25  # heavy head, vs 1% under uniform

    def test_higher_s_means_more_skew(self):
        def head_mass(s):
            generator = WorkloadGenerator(0.0, key_space=500, seed=11,
                                          key_dist="zipf", zipf_s=s)
            keys = [c.args[0] for c in generator.commands(3000)]
            return sum(1 for k in keys if k < 5) / len(keys)

        assert head_mass(1.5) > head_mass(0.5)

    def test_uniform_is_unchanged_default(self):
        # Regression guard: adding key_dist must not perturb the streams
        # existing benchmarks were recorded with.
        a = WorkloadGenerator(30.0, seed=9).commands(100)
        b = WorkloadGenerator(30.0, seed=9, key_dist="uniform").commands(100)
        assert [(c.op, c.args) for c in a] == [(c.op, c.args) for c in b]

    def test_invalid_key_dist(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(10.0, key_dist="pareto")

    def test_invalid_zipf_s(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(10.0, key_dist="zipf", zipf_s=-1.0)

    def test_zipf_s_zero_degenerates_to_uniform_weights(self):
        generator = WorkloadGenerator(0.0, key_space=100, seed=3,
                                      key_dist="zipf", zipf_s=0.0)
        keys = [c.args[0] for c in generator.commands(2000)]
        head = sum(1 for k in keys if k < 10) / len(keys)
        assert 0.05 < head < 0.20  # ~10% under uniform


class TestCrossPartitionMode:
    """Multi-key commands for partitioned deployments (repro.groups)."""

    def _generator(self, **overrides):
        base = dict(write_pct=50.0, key_space=256, seed=5,
                    cross_partition_fraction=0.3, n_partitions=4)
        base.update(overrides)
        return WorkloadGenerator(**base)

    def test_fraction_of_commands_is_multi_key(self):
        commands = self._generator().commands(3000)
        cross = [c for c in commands if len(c.args) > 1]
        assert 0.25 < len(cross) / len(commands) < 0.35

    def test_cross_commands_span_distinct_partitions(self):
        for command in self._generator().commands(1000):
            if len(command.args) == 1:
                continue
            partitions = {stable_hash(key) % 4 for key in command.args}
            assert len(partitions) == len(command.args)

    def test_multi_key_ops_follow_write_flag(self):
        for command in self._generator().commands(500):
            if len(command.args) == 1:
                assert command.op in (READ_OP, WRITE_OP)
            elif command.writes:
                assert command.op == MULTI_WRITE_OP
            else:
                assert command.op == MULTI_READ_OP

    def test_cross_mode_is_seeded_and_reproducible(self):
        a = self._generator().commands(400)
        b = self._generator().commands(400)
        assert [(c.op, c.args, c.writes) for c in a] == \
            [(c.op, c.args, c.writes) for c in b]

    def test_cross_mode_composes_with_zipf(self):
        commands = self._generator(key_dist="zipf",
                                   zipf_s=1.2).commands(2000)
        cross = [c for c in commands if len(c.args) > 1]
        assert cross
        primary = [c.args[0] for c in cross]
        head = sum(1 for key in primary if key < 26) / len(primary)
        assert head > 0.4  # first key keeps the skew

    def test_keys_per_cross_is_respected(self):
        commands = self._generator(keys_per_cross=3).commands(800)
        widths = {len(c.args) for c in commands if len(c.args) > 1}
        assert widths == {3}

    def test_zero_fraction_leaves_streams_untouched(self):
        # Regression guard: the cross-partition knobs must not perturb
        # streams existing benchmarks were recorded with.
        a = WorkloadGenerator(30.0, seed=9).commands(200)
        b = WorkloadGenerator(30.0, seed=9,
                              cross_partition_fraction=0.0).commands(200)
        assert [(c.op, c.args) for c in a] == [(c.op, c.args) for c in b]

    @pytest.mark.parametrize("kwargs", [
        dict(cross_partition_fraction=-0.1, n_partitions=2),
        dict(cross_partition_fraction=1.5, n_partitions=2),
        dict(cross_partition_fraction=0.2),                    # no partitions
        dict(cross_partition_fraction=0.2, n_partitions=1),
        dict(cross_partition_fraction=0.2, n_partitions=2, keys_per_cross=1),
        dict(cross_partition_fraction=0.2, n_partitions=2, keys_per_cross=3),
    ])
    def test_invalid_cross_configs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadGenerator(10.0, **kwargs)


class TestMetrics:
    def test_counts(self):
        metrics = Metrics(Simulator())
        metrics.incr("x")
        metrics.incr("x", 2)
        assert metrics.count("x") == 3
        assert metrics.count("missing") == 0

    def test_warm_counts_exclude_warmup(self):
        sim = Simulator()
        metrics = Metrics(sim)
        metrics.incr("x", 10)
        sim.schedule(1.0, metrics.mark_warm)
        sim.run()
        metrics.incr("x", 5)
        assert metrics.warm_count("x") == 5
        assert metrics.count("x") == 15

    def test_throughput(self):
        sim = Simulator()
        metrics = Metrics(sim)
        sim.schedule(1.0, metrics.mark_warm)
        sim.schedule(3.0, lambda: metrics.incr("x", 100))
        sim.run()
        assert metrics.throughput("x") == pytest.approx(50.0)

    def test_throughput_before_warm_is_zero(self):
        metrics = Metrics(Simulator())
        metrics.incr("x")
        assert metrics.throughput("x") == 0.0
        assert metrics.warm_count("x") == 0

    def test_latencies_recorded_only_after_warm(self):
        metrics = Metrics(Simulator())
        metrics.record_latency(9.0)  # dropped: warm-up
        metrics.mark_warm()
        metrics.record_latency(1.0)
        metrics.record_latency(3.0)
        mean, median, p99 = metrics.latency_stats()
        assert mean == pytest.approx(2.0)
        # Interpolated quantiles: the even-n median is the mean of the two
        # middle elements, and p99 of [1, 3] sits just under the max.
        assert median == pytest.approx(2.0)
        assert p99 == pytest.approx(1.0 + 0.99 * 2.0)

    def test_empty_latency_stats(self):
        assert Metrics(Simulator()).latency_stats() == (0.0, 0.0, 0.0)
