"""Partitioned deployments over real sockets and real processes.

Two layers above the threaded grouped cluster (test_groups_cluster.py):

* ``TcpCluster`` with ``n_groups > 1`` — every replica is a
  :class:`~repro.groups.net.GroupedReplicaServer` hosting one protocol
  node per group behind a single TCP endpoint, with protocol messages
  travelling in :class:`~repro.net.messages.GroupEnvelope` wrappers and
  client batches routed by partition (docs/partitioning.md).

* ``Supervisor`` with named process groups — the
  :class:`~repro.net.supervisor.ProcessGroup` regression: bouncing one
  group must not touch any other group's OS processes, and the cluster
  must serve traffic again afterwards.
"""

from __future__ import annotations

import time

import pytest

from repro.core.command import Command
from repro.errors import ConfigurationError
from repro.net.client import NetClient
from repro.net.cluster import TcpCluster
from repro.net.config import loopback_config
from repro.net.supervisor import ProcessGroup, Supervisor
from repro.workload import WorkloadGenerator

N_COMMANDS = 40


def _grouped_config(**overrides):
    base = dict(
        n_replicas=3,
        n_groups=2,
        service="linked-list-keyed",
        lease_reads=False,
        record_merge_history=True,
        client_timeout=5.0,
    )
    base.update(overrides)
    return loopback_config(**base)


def _commands(cross: float, count: int = N_COMMANDS, seed: int = 3):
    return WorkloadGenerator(
        write_pct=100.0,
        key_space=64,
        seed=seed,
        cross_partition_fraction=cross,
        n_partitions=2 if cross > 0 else None,
    ).commands(count)


class TestGroupedTcpCluster:
    def test_cross_partition_workload_converges_identically(self):
        with TcpCluster(_grouped_config()) as cluster:
            client = cluster.client()
            commands = _commands(cross=0.25)
            for start in range(0, len(commands), 8):
                client.execute_batch(commands[start:start + 8])
            assert cluster.wait_converged(N_COMMANDS, timeout=20.0), (
                cluster.total_executed())
            positions = [server.grouped.merged_positions()
                         for server in cluster.servers]
            snapshots = [server.service.snapshot()
                         for server in cluster.servers]
            assert len(positions[0]) == N_COMMANDS
            assert positions[1] == positions[0]
            assert positions[2] == positions[0]
            assert snapshots[1] == snapshots[0]
            assert snapshots[2] == snapshots[0]
            crossed = sum(server.grouped.merger.emitted_cross
                          for server in cluster.servers[:1])
            assert crossed > 0, "workload never exercised rendezvous"

    def test_grouped_restart_replica_is_rejected(self):
        with TcpCluster(_grouped_config()) as cluster:
            cluster.crash(2)
            with pytest.raises(ConfigurationError,
                               match="single-group only"):
                cluster.restart_replica(2)

    def test_grouped_server_requires_two_groups(self):
        from repro.groups.net import GroupedReplicaServer

        config = loopback_config(n_replicas=3, service="linked-list-keyed")
        with pytest.raises(ConfigurationError, match="n_groups >= 2"):
            GroupedReplicaServer(0, config)

    def test_config_rejects_sequential_cos_with_groups(self):
        with pytest.raises(ConfigurationError, match="parallel COS"):
            loopback_config(n_replicas=3, n_groups=2,
                            service="linked-list-keyed",
                            cos_algorithm="sequential").validate()


class TestProcessGroups:
    def test_supervisor_rejects_bad_group_specs(self):
        config = loopback_config(n_replicas=3)
        with pytest.raises(ConfigurationError, match="in groups"):
            Supervisor(config, groups={"a": [0, 1], "b": [1, 2]})
        with pytest.raises(ConfigurationError, match="no process group"):
            Supervisor(config, groups={"a": [0, 1]})
        with pytest.raises(ConfigurationError, match="empty"):
            ProcessGroup("a", config, "unused.json", [])
        with pytest.raises(ConfigurationError, match="out of range"):
            ProcessGroup("a", config, "unused.json", [0, 7])
        with pytest.raises(ConfigurationError, match="twice"):
            ProcessGroup("a", config, "unused.json", [0, 0])

    def test_restart_group_leaves_other_groups_untouched(self):
        config = _grouped_config(client_timeout=3.0)
        groups = {"left": [0], "right": [1, 2]}
        with Supervisor(config, groups=groups) as supervisor:
            supervisor.wait_ready()
            assert supervisor.group_names() == ["left", "right"]
            with NetClient("groups-net", config, timeout=3.0) as client:
                # The keyed list seeds keys 0..49: write fresh keys so
                # ``add`` answers True.
                first = client.execute_batch(
                    [Command("add", (900 + key,), writes=True)
                     for key in range(8)])
                assert first == [True] * 8

                left_before = supervisor.group("left").pids()
                right_before = supervisor.group("right").pids()
                supervisor.restart_group("left")
                assert supervisor.group("right").pids() == right_before, (
                    "restarting one group touched another group's "
                    "processes")
                assert (supervisor.group("left").pids()[0]
                        != left_before[0])
                assert sorted(supervisor.alive()) == [0, 1, 2]

                # Replica 0 rejoins with empty learner state; give its
                # catch-up a beat before timing client traffic against it.
                time.sleep(1.0)
                second = client.execute_batch(
                    [Command("add", (800 + key,), writes=True)
                     for key in range(8)])
                assert second == [True] * 8

            with pytest.raises(ConfigurationError, match="unknown"):
                supervisor.group("middle")
        assert supervisor.alive() == []
