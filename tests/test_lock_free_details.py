"""White-box tests of the lock-free DAG's lazy-removal machinery (Alg. 6-7).

These drive the effect generators directly through the threaded runtime so
internal node states can be asserted between operations.
"""

import pytest

from repro.core import ReadWriteConflicts, ThreadedRuntime
from repro.core.command import Command
from repro.core.lock_free import LockFreeCOS
from repro.core.node import EXECUTING, READY, REMOVED, WAITING


def read(key=0):
    return Command("contains", (key,), writes=False)


def write(key=0):
    return Command("add", (key,), writes=True)


@pytest.fixture
def runtime():
    return ThreadedRuntime()


@pytest.fixture
def cos(runtime):
    return LockFreeCOS(runtime, ReadWriteConflicts(), max_size=50)


def _chain(runtime, cos):
    """Walk the node list via atomic cells; returns nodes in order."""
    nodes = []
    node = cos._head.value
    while node is not None:
        nodes.append(node)
        node = node.nxt.value
    return nodes


class TestStates:
    def test_new_independent_node_is_ready(self, runtime, cos):
        runtime.run(cos.insert(read(1)))
        (node,) = _chain(runtime, cos)
        assert node.st.value == READY

    def test_dependent_node_waits(self, runtime, cos):
        runtime.run(cos.insert(write(1)))
        runtime.run(cos.insert(read(1)))
        first, second = _chain(runtime, cos)
        assert first.st.value == READY
        assert second.st.value == WAITING
        assert first in second.dep_on.value
        assert second in first.dep_me.value

    def test_get_marks_executing(self, runtime, cos):
        runtime.run(cos.insert(read(1)))
        handle = runtime.run(cos.get())
        assert handle.st.value == EXECUTING

    def test_remove_is_logical(self, runtime, cos):
        runtime.run(cos.insert(read(1)))
        handle = runtime.run(cos.get())
        runtime.run(cos.remove(handle))
        # Still physically present, only marked removed.
        assert _chain(runtime, cos) == [handle]
        assert handle.st.value == REMOVED


class TestHelpedRemoval:
    def test_insert_unlinks_removed_nodes(self, runtime, cos):
        runtime.run(cos.insert(read(1)))
        handle = runtime.run(cos.get())
        runtime.run(cos.remove(handle))
        runtime.run(cos.insert(read(2)))
        chain = _chain(runtime, cos)
        assert handle not in chain
        assert len(chain) == 1

    def test_removed_head_is_replaced(self, runtime, cos):
        runtime.run(cos.insert(read(1)))
        runtime.run(cos.insert(read(2)))
        first = runtime.run(cos.get())
        runtime.run(cos.remove(first))
        runtime.run(cos.insert(read(3)))
        chain = _chain(runtime, cos)
        assert first not in chain
        assert cos._head.value is chain[0]

    def test_helped_remove_prunes_dep_on(self, runtime, cos):
        runtime.run(cos.insert(write(1)))
        runtime.run(cos.insert(write(2)))
        first = runtime.run(cos.get())
        runtime.run(cos.remove(first))
        runtime.run(cos.insert(read(3)))  # triggers helpedRemove of first
        chain = _chain(runtime, cos)
        second = chain[0]
        assert first not in second.dep_on.value

    def test_interior_removal_bypasses(self, runtime, cos):
        for key in (1, 2, 3):
            runtime.run(cos.insert(read(key)))
        chain = _chain(runtime, cos)
        middle = chain[1]
        # Take the middle node specifically.
        taken = []
        while True:
            handle = runtime.run(cos.get())
            if handle is middle:
                break
            taken.append(handle)
        runtime.run(cos.remove(middle))
        runtime.run(cos.insert(read(4)))
        new_chain = _chain(runtime, cos)
        assert middle not in new_chain
        assert len(new_chain) == 3  # two old reads + the new one


class TestReadiness:
    def test_dependent_becomes_ready_on_remove(self, runtime, cos):
        runtime.run(cos.insert(write(1)))
        runtime.run(cos.insert(write(2)))
        first = runtime.run(cos.get())
        _, second = _chain(runtime, cos)
        assert second.st.value == WAITING
        runtime.run(cos.remove(first))
        assert second.st.value == READY

    def test_multi_dependency_waits_for_all(self, runtime, cos):
        runtime.run(cos.insert(read(1)))
        runtime.run(cos.insert(read(2)))
        runtime.run(cos.insert(write(3)))  # depends on both reads
        chain = _chain(runtime, cos)
        writer = chain[2]
        first = runtime.run(cos.get())
        runtime.run(cos.remove(first))
        assert writer.st.value == WAITING  # one read still pending
        second = runtime.run(cos.get())
        runtime.run(cos.remove(second))
        assert writer.st.value == READY

    def test_ready_counting_exactly_once(self, runtime, cos):
        """A node freed by a removal is counted ready exactly once."""
        runtime.run(cos.insert(write(1)))
        runtime.run(cos.insert(write(2)))
        first = runtime.run(cos.get())
        runtime.run(cos.remove(first))
        # ready semaphore must allow exactly one more get.
        second = runtime.run(cos.get())
        assert second.cmd.args == (2,)
        assert cos._ready.sem.acquire(blocking=False) is False
