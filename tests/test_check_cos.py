"""End-to-end checks of ``repro.check`` against the real COS algorithms.

Correct implementations must come out clean under the full exploration
ladder, the CLI must drive the same pipeline (including replay files), and
decision-sequence replay must be strict about divergence.
"""

import json

import pytest

from conftest import GRAPH_ALGORITHMS
from repro.check import CheckConfig, run_check, run_with_decisions
from repro.check.replay import load_replay, replay, save_replay
from repro.cli import main
from repro.errors import SimulationError

ALL_CHECKED = GRAPH_ALGORITHMS + ("sequential", "class-based", "early",
                                  "early-batched")


@pytest.mark.parametrize("algorithm", ALL_CHECKED)
def test_correct_implementations_pass(algorithm):
    config = CheckConfig(algorithm=algorithm, workers=2, commands=3,
                         max_size=2, write_every=2)
    report = run_check(config, max_schedules=80, max_steps=5_000)
    assert report.ok, report.result.violation
    assert report.result.schedules_explored > 0
    assert report.result.transitions > 0


def test_cli_check_accepts_underscores_and_exits_zero(capsys):
    code = main(["check", "--algorithm", "lock_free", "--workers", "2",
                 "--commands", "2", "--max-schedules", "40",
                 "--max-steps", "5000"])
    out = capsys.readouterr().out
    assert code == 0
    assert "algorithm=lock-free" in out
    assert "schedules explored" in out


def test_cli_check_mutant_writes_replay_file(tmp_path, capsys):
    out_file = tmp_path / "cex.json"
    code = main(["check", "--mutant", "drop-helped-remove", "--workers", "2",
                 "--commands", "3", "--max-size", "2", "--write-every", "1",
                 "--max-schedules", "500", "--max-steps", "2000",
                 "--replay-out", str(out_file)])
    out = capsys.readouterr().out
    assert code == 1
    assert "VIOLATION [graph-leak]" in out
    assert out_file.exists()

    replay_code = main(["check", "--replay", str(out_file),
                        "--max-steps", "2000"])
    replay_out = capsys.readouterr().out
    assert replay_code == 1
    assert "reproduced [graph-leak]" in replay_out


def test_replay_file_roundtrip(tmp_path):
    config = CheckConfig(algorithm="lock-free", workers=2, commands=2,
                         mutant="drop-helped-remove", write_every=1,
                         max_size=2)
    report = run_check(config, max_schedules=500, max_steps=2_000)
    assert not report.ok and report.shrunk is not None
    path = tmp_path / "cex.json"
    save_replay(path, config, report.shrunk.decisions,
                report.shrunk.violation)
    loaded_config, decisions, violation = load_replay(path)
    assert loaded_config == config
    assert list(decisions) == list(report.shrunk.decisions)
    assert violation.kind == report.shrunk.violation.kind
    reproduced = replay(path, max_steps=2_000)
    assert reproduced is not None
    assert reproduced.kind == report.shrunk.violation.kind
    # The file is plain versioned JSON — future sessions can parse it.
    data = json.loads(path.read_text())
    assert data["version"] == 1


def test_strict_replay_rejects_divergent_decisions():
    config = CheckConfig(workers=2, commands=2)
    with pytest.raises(SimulationError):
        run_with_decisions(config, ["no-such-process"], strict=True)


def test_nonstrict_replay_completes_with_fallback():
    config = CheckConfig(workers=2, commands=2)
    exe = run_with_decisions(config, ["no-such-process"], strict=False,
                             max_steps=5_000)
    assert exe.violation is None
    assert exe.terminal_violation() is None
    assert not exe.runnable()
