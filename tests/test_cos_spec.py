"""Sequential-specification tests for the COS implementations (§3.3).

Driven single-threaded through the threaded runtime, each implementation
must satisfy the COS contract: ``get`` returns only commands with no
conflicting predecessor still present, never returns a command twice, and
``remove`` releases dependents.

The scheduler-agnostic parts of the contract (lifecycle, FIFO, capacity,
blocking get, threaded ordering) live in ``test_scheduler_conformance.py``,
which runs them over *every* scheduler.  What stays here are the
scheduling-*freedom* tests only the DAG-grade schedulers satisfy —
conservative backends (sequential, class-based, early) deliberately order
more than the pairwise relation requires and would fail them.
"""

import threading

import pytest

from conftest import ALL_ALGORITHMS, GRAPH_ALGORITHMS, make_threaded_cos
from repro.core import NeverConflicts, ReadWriteConflicts
from repro.core.command import Command


def read(key=0):
    return Command("contains", (key,), writes=False)


def write(key=0):
    return Command("add", (key,), writes=True)


@pytest.fixture(params=ALL_ALGORITHMS)
def cos(request):
    return make_threaded_cos(request.param, ReadWriteConflicts())


@pytest.fixture(params=GRAPH_ALGORITHMS)
def graph_cos(request):
    return make_threaded_cos(request.param, ReadWriteConflicts())


class TestBasicCycle:
    def test_insert_get_remove(self, cos):
        cmd = read(1)
        cos.insert(cmd)
        handle = cos.get()
        assert cos.command_of(handle) is cmd
        cos.remove(handle)

    def test_get_never_returns_same_command_twice(self, graph_cos):
        commands = [read(i) for i in range(10)]
        for cmd in commands:
            graph_cos.insert(cmd)
        seen = set()
        handles = []
        for _ in commands:
            handle = graph_cos.get()
            uid = graph_cos.command_of(handle).uid
            assert uid not in seen
            seen.add(uid)
            handles.append(handle)
        for handle in handles:
            graph_cos.remove(handle)


class TestConflictOrdering:
    def test_write_blocks_following_read(self, graph_cos):
        w, r = write(1), read(1)
        graph_cos.insert(w)
        graph_cos.insert(r)
        handle = graph_cos.get()
        assert graph_cos.command_of(handle) is w
        # r must not be gettable before w is removed: try concurrently.
        got = []

        def getter():
            got.append(graph_cos.command_of(graph_cos.get()))

        thread = threading.Thread(target=getter, daemon=True)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "read executed before conflicting write finished"
        graph_cos.remove(handle)
        thread.join(timeout=5)
        assert got == [r]

    def test_independent_reads_all_gettable(self, graph_cos):
        reads = [read(i) for i in range(4)]
        for cmd in reads:
            graph_cos.insert(cmd)
        handles = [graph_cos.get() for _ in reads]
        assert {graph_cos.command_of(h).uid for h in handles} == {
            c.uid for c in reads}

    def test_read_write_read_serialization(self, graph_cos):
        r1, w, r2 = read(1), write(1), read(2)
        for cmd in (r1, w, r2):
            graph_cos.insert(cmd)
        # Only r1 is initially free (w depends on r1, r2 depends on w).
        h1 = graph_cos.get()
        assert graph_cos.command_of(h1) is r1
        graph_cos.remove(h1)
        h2 = graph_cos.get()
        assert graph_cos.command_of(h2) is w
        graph_cos.remove(h2)
        h3 = graph_cos.get()
        assert graph_cos.command_of(h3) is r2
        graph_cos.remove(h3)

    def test_remove_releases_all_dependents(self, graph_cos):
        w = write(1)
        reads = [read(i) for i in range(3)]
        graph_cos.insert(w)
        for cmd in reads:
            graph_cos.insert(cmd)
        handle = graph_cos.get()
        assert graph_cos.command_of(handle) is w
        graph_cos.remove(handle)
        got = {graph_cos.command_of(graph_cos.get()).uid for _ in reads}
        assert got == {c.uid for c in reads}


class TestNoConflictRelation:
    @pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
    def test_never_conflicts_gives_full_freedom(self, algorithm):
        cos = make_threaded_cos(algorithm, NeverConflicts())
        writes = [write(i) for i in range(5)]
        for cmd in writes:
            cos.insert(cmd)
        handles = [cos.get() for _ in writes]
        assert len(handles) == 5
        for handle in handles:
            cos.remove(handle)
