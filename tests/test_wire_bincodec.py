"""Differential tests for the binary wire codec (``repro.net.bincodec``).

The binary codec must be *observationally identical* to the tagged-JSON
codec on everything the wire carries: a seeded fuzzer generates values from
the wire vocabulary (scalars, tuples, dicts with non-string keys, registered
dataclasses, arbitrary nesting) and asserts both codecs round-trip them to
equal values, and that both reject the same invalid inputs.  The one
*deliberate* divergence is ``bytes``: native in the binary codec, rejected
by JSON — pinned here so it can never drift silently.

The end-to-end half runs a live :class:`TcpCluster` on the binary wire and
pushes a bytes payload through a full client round trip, which JSON frames
cannot carry at all.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.broadcast.messages import (
    Accept,
    Accepted,
    CatchupReply,
    Decide,
    Forward,
    Heartbeat,
    Promise,
)
from repro.core.command import Command
from repro.net import bincodec
from repro.net import codec as jsoncodec
from repro.net.cluster import TcpCluster
from repro.net.codec import WIRE_NAMES, WIRE_TYPES, CodecError, wire_codec
from repro.net.messages import ClientRequest, ClientResponse

# ---------------------------------------------------------------- generators


def _scalar(rng: random.Random):
    choice = rng.randrange(7)
    if choice == 0:
        return None
    if choice == 1:
        return rng.random() < 0.5
    if choice == 2:
        # Ints spanning the varint fast path, multi-byte encodings, and
        # beyond-64-bit bignums (both codecs are arbitrary precision).
        return rng.choice([0, 1, -1, 63, 64, 127, 128, -128, 2**31,
                           -(2**31), 2**63, 2**80, rng.getrandbits(48),
                           -rng.getrandbits(48)])
    if choice == 3:
        return rng.uniform(-1e12, 1e12)
    if choice == 4:
        length = rng.choice([0, 1, 7, 127, 128, 300])
        return "".join(rng.choice("abcxyz012 é✓☃")
                       for _ in range(length))
    if choice == 5:
        return rng.randrange(10**6)
    return rng.choice(["op", "key-%d" % rng.randrange(100), ""])


def _hashable(rng: random.Random):
    if rng.random() < 0.3:
        return tuple(_scalar(rng) for _ in range(rng.randrange(3)))
    value = _scalar(rng)
    # floats make fine dict keys but NaN-free equality is what we assert on
    return value


def _value(rng: random.Random, depth: int = 0):
    if depth >= 3 or rng.random() < 0.4:
        return _scalar(rng)
    choice = rng.randrange(4)
    if choice == 0:
        return [_value(rng, depth + 1) for _ in range(rng.randrange(5))]
    if choice == 1:
        return tuple(_value(rng, depth + 1) for _ in range(rng.randrange(5)))
    if choice == 2:
        return {_hashable(rng): _value(rng, depth + 1)
                for _ in range(rng.randrange(4))}
    return _message(rng, depth + 1)


def _command(rng: random.Random) -> Command:
    return Command(
        op=rng.choice(["put", "get", "contains"]),
        args=tuple(_scalar(rng) for _ in range(rng.randrange(1, 4))),
        client_id=rng.choice([None, "c-%d" % rng.randrange(8)]),
        request_id=rng.choice([None, rng.randrange(1000)]),
        uid=rng.choice([None, rng.randrange(1000)]),
        writes=rng.random() < 0.5,
    )


def _message(rng: random.Random, depth: int = 0):
    ballot = (rng.randrange(100), rng.randrange(5))
    choice = rng.randrange(8)
    if choice == 0:
        return Accept(ballot, rng.randrange(1000), _value(rng, depth + 1))
    if choice == 1:
        return Accepted(ballot, rng.randrange(1000))
    if choice == 2:
        return Decide(rng.randrange(1000), _value(rng, depth + 1))
    if choice == 3:
        return Heartbeat(ballot, rng.randrange(1000))
    if choice == 4:
        return Forward(_value(rng, depth + 1), rng.randrange(8))
    if choice == 5:
        return Promise(ballot, {
            rng.randrange(100): (ballot, _value(rng, depth + 1))
            for _ in range(rng.randrange(3))
        })
    if choice == 6:
        return CatchupReply({rng.randrange(100): _value(rng, depth + 1)
                             for _ in range(rng.randrange(3))})
    return _command(rng)


# --------------------------------------------------------------- differential


class TestDifferentialFuzz:

    @pytest.mark.parametrize("seed", range(20))
    def test_codecs_roundtrip_identically(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            value = _value(rng)
            via_json = jsoncodec.loads(jsoncodec.dumps(value))
            via_binary = bincodec.loads(bincodec.dumps(value))
            assert via_json == value
            assert via_binary == value
            assert type(via_binary) is type(via_json)

    @pytest.mark.parametrize("seed", range(10))
    def test_frames_roundtrip_identically(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(10):
            src = rng.randrange(16)
            msg = _message(rng)
            for codec in (wire_codec("json"), wire_codec("binary")):
                frame = codec.encode_frame(src, msg)
                header = frame[:codec.header_size]
                body = frame[codec.header_size:]
                assert codec.body_length(header) == len(body)
                assert codec.decode_frame(body) == (src, msg)

    def test_every_wire_type_has_a_binary_tag(self):
        # The registry is the single source of truth: a dataclass that can
        # cross the JSON wire must also have a stable binary tag, assigned
        # deterministically from the sorted registry names.
        tags = bincodec._TYPE_TAGS
        for name, cls in WIRE_TYPES.items():
            assert cls in tags, (
                f"{name} is registered for JSON but has no binary tag")
        assert sorted(tags.values()) == list(
            range(0x20, 0x20 + len(WIRE_TYPES)))

    @pytest.mark.parametrize("bad", [
        float("nan"),
        float("inf"),
        float("-inf"),
        object(),
        {1, 2, 3},
    ])
    def test_rejections_agree(self, bad):
        for mod in (jsoncodec, bincodec):
            with pytest.raises(CodecError):
                mod.dumps(bad)

    def test_unregistered_dataclass_rejected_by_both(self):
        @dataclasses.dataclass
        class NotOnTheWire:
            x: int = 1

        for mod in (jsoncodec, bincodec):
            with pytest.raises(CodecError):
                mod.dumps(NotOnTheWire())

    def test_bytes_divergence_is_deliberate(self):
        # The one asymmetry: binary carries bytes natively (snapshots,
        # opaque app payloads); JSON has no bytes type and must refuse
        # rather than guess an encoding.
        blob = bytes(range(256))
        assert bincodec.loads(bincodec.dumps(blob)) == blob
        assert bincodec.loads(bincodec.dumps((1, {"b": blob}))) == \
            (1, {"b": blob})
        # bytearray rides along as bytes on the binary wire; JSON rejects
        # both spellings.
        assert bincodec.loads(bincodec.dumps(bytearray(blob))) == blob
        for payload in (blob, bytearray(blob)):
            with pytest.raises(CodecError):
                jsoncodec.dumps(payload)


# ------------------------------------------------------------- binary frames


class TestBinaryFrames:

    def test_header_magic_rejected(self):
        json_frame = jsoncodec.encode_frame(3, Decide(1, "x"))
        with pytest.raises(CodecError):
            # A JSON peer's length prefix is not a binary header: the magic
            # check fails instead of treating 4 random bytes as a length.
            bincodec.body_length(json_frame[:bincodec.header_size])

    def test_version_mismatch_rejected(self):
        frame = bincodec.encode_frame(0, "hello")
        header = bytearray(frame[:bincodec.header_size])
        header[2] = bincodec.WIRE_VERSION + 1
        with pytest.raises(CodecError):
            bincodec.body_length(bytes(header))

    def test_oversized_length_rejected(self):
        header = bincodec.HEADER.pack(
            bincodec.MAGIC, bincodec.WIRE_VERSION, bincodec.MAX_FRAME + 1)
        with pytest.raises(CodecError):
            bincodec.body_length(header)

    def test_truncated_body_rejected(self):
        frame = bincodec.encode_frame(2, ("abc", 123, b"\x01\x02"))
        body = frame[bincodec.header_size:]
        for cut in range(len(body)):
            with pytest.raises(CodecError):
                bincodec.decode_frame(body[:cut])

    def test_trailing_garbage_rejected(self):
        frame = bincodec.encode_frame(2, "ok")
        body = frame[bincodec.header_size:]
        with pytest.raises(CodecError):
            bincodec.decode_frame(body + b"\x00")

    def test_negative_src_roundtrips(self):
        frame = bincodec.encode_frame(-7, "payload")
        body = frame[bincodec.header_size:]
        assert bincodec.decode_frame(body) == (-7, "payload")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            bincodec.loads(b"\xff")


# ------------------------------------------------------------- wire registry


class TestWireRegistry:

    def test_names(self):
        assert WIRE_NAMES == ("json", "binary")

    def test_lookup(self):
        assert wire_codec("json").name == "json"
        binary = wire_codec("binary")
        assert binary.name == "binary"
        assert binary.header_size == bincodec.header_size

    def test_unknown_wire_rejected(self):
        with pytest.raises(CodecError):
            wire_codec("protobuf")


# -------------------------------------------------------- live binary cluster


class TestBinaryCluster:

    def test_bytes_payload_roundtrips_through_cluster(self):
        # End to end on real sockets: a bytes value rides a Command through
        # client -> leader -> consensus -> execution -> response, all on
        # binary frames.  This payload cannot cross the JSON wire at all.
        blob = bytes(range(256)) * 4
        with TcpCluster(n_replicas=3, wire="binary", service="kv") as cluster:
            client = cluster.client()
            assert client.execute(
                Command("put", ("blob", blob), writes=True)) is None
            assert client.execute(
                Command("get", ("blob",), writes=False)) == blob
