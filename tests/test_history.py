"""Tests for the history recorder and COS specification checker."""

import threading

import pytest

from conftest import GRAPH_ALGORITHMS, make_mixed_commands, make_threaded_cos
from repro.core import ReadWriteConflicts
from repro.core.command import Command
from repro.core.history import (
    GET,
    INSERT,
    REMOVE,
    HistoryEvent,
    HistoryRecorder,
    HistoryViolation,
    RecordingCOS,
    check_history,
)


def read(key):
    return Command("contains", (key,), writes=False)


def write(key):
    return Command("add", (key,), writes=True)


def events(*triples):
    return [HistoryEvent(kind, uid, seq)
            for seq, (kind, uid) in enumerate(triples)]


class TestChecker:
    def test_valid_sequential_history(self):
        a, b = write(1), read(1)
        history = events((INSERT, a.uid), (GET, a.uid), (REMOVE, a.uid),
                         (INSERT, b.uid), (GET, b.uid), (REMOVE, b.uid))
        check_history(history, [a, b], ReadWriteConflicts())

    def test_overlapping_independent_commands_ok(self):
        a, b = read(1), read(2)
        history = events((INSERT, a.uid), (INSERT, b.uid), (GET, a.uid),
                         (GET, b.uid), (REMOVE, b.uid), (REMOVE, a.uid))
        check_history(history, [a, b], ReadWriteConflicts())

    def test_conflict_overlap_detected(self):
        a, b = write(1), write(2)
        history = events((INSERT, a.uid), (INSERT, b.uid), (GET, a.uid),
                         (GET, b.uid), (REMOVE, a.uid), (REMOVE, b.uid))
        with pytest.raises(HistoryViolation, match="overlapped"):
            check_history(history, [a, b], ReadWriteConflicts())

    def test_get_before_insert_detected(self):
        a = read(1)
        history = events((GET, a.uid), (INSERT, a.uid))
        with pytest.raises(HistoryViolation, match="before its insert"):
            check_history(history, [a], ReadWriteConflicts())

    def test_double_get_detected(self):
        a = read(1)
        history = events((INSERT, a.uid), (GET, a.uid), (GET, a.uid))
        with pytest.raises(HistoryViolation, match="duplicate"):
            check_history(history, [a], ReadWriteConflicts())

    def test_remove_without_get_detected(self):
        a = read(1)
        history = events((INSERT, a.uid), (REMOVE, a.uid))
        with pytest.raises(HistoryViolation, match="without a get"):
            check_history(history, [a], ReadWriteConflicts())

    def test_missing_insert_detected(self):
        a = read(1)
        with pytest.raises(HistoryViolation, match="never appears"):
            check_history([], [a], ReadWriteConflicts())

    def test_unknown_uid_detected(self):
        a = read(1)
        history = events((INSERT, a.uid), (INSERT, 999_999_999))
        with pytest.raises(HistoryViolation, match="unknown command"):
            check_history(history, [a], ReadWriteConflicts())

    def test_executed_while_predecessor_unremoved(self):
        a, b = write(1), write(2)
        history = events((INSERT, a.uid), (INSERT, b.uid),
                         (GET, a.uid), (GET, b.uid))
        with pytest.raises(HistoryViolation, match="never removed"):
            check_history(history, [a, b], ReadWriteConflicts())


class TestRecorderIntegration:
    @pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
    def test_recorded_stress_run_checks_clean(self, algorithm):
        conflicts = ReadWriteConflicts()
        cos = RecordingCOS(
            make_threaded_cos(algorithm, conflicts, max_size=32))
        commands = make_mixed_commands(400, write_every=5)

        def worker():
            while True:
                handle = cos.get()
                command = cos.command_of(handle)
                if command.op == "__stop__":
                    cos.remove(handle)
                    return
                cos.remove(handle)

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(6)]
        for thread in threads:
            thread.start()
        for command in commands:
            cos.insert(command)
        stops = [Command(op="__stop__", writes=True) for _ in threads]
        for stop in stops:
            cos.insert(stop)
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        check_history(cos.recorder.events, list(commands) + stops, conflicts)

    def test_recorder_thread_safety(self):
        recorder = HistoryRecorder()
        commands = [read(i) for i in range(100)]

        def hammer(chunk):
            for command in chunk:
                recorder.record(INSERT, command)

        threads = [threading.Thread(target=hammer, args=(commands[i::4],))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        recorded = recorder.events
        assert len(recorded) == 100
        assert [e.seq for e in recorded] == sorted(e.seq for e in recorded)
