"""Model-based (stateful) testing of the COS implementations.

Hypothesis drives random insert/get/remove sequences against each real
implementation (single-threaded) while a reference model predicts the legal
outcomes of every operation:

- ``get`` must return some command the model deems *ready* (inserted, not
  yet got, no conflicting predecessor still present);
- a full drain must be possible from any state (progress, paper §6.2.2);
- capacity accounting never drifts.
"""

from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from conftest import GRAPH_ALGORITHMS, make_threaded_cos
from repro.core import ReadWriteConflicts
from repro.core.command import Command

MAX_SIZE = 8


class _ModelState:
    """Reference model of one COS instance."""

    def __init__(self):
        self.present = []      # commands in the structure, delivery order
        self.executing = set() # uids handed out by get, not yet removed

    def ready_uids(self):
        ready = []
        relation = ReadWriteConflicts()
        for index, command in enumerate(self.present):
            if command.uid in self.executing:
                continue
            blocked = any(
                relation.conflicts(earlier, command)
                for earlier in self.present[:index]
            )
            if not blocked:
                ready.append(command.uid)
        return ready

    @property
    def population(self):
        return len(self.present)


class COSMachine(RuleBasedStateMachine):
    algorithm = None  # set by subclasses

    @initialize()
    def setup(self):
        self.cos = make_threaded_cos(
            self.algorithm, ReadWriteConflicts(), max_size=MAX_SIZE)
        self.model = _ModelState()
        self.handles = {}
        self.counter = 0

    # --------------------------------------------------------------- rules

    @precondition(lambda self: self.model.population < MAX_SIZE)
    @rule(is_write=st.booleans(), key=st.integers(0, 3))
    def insert(self, is_write, key):
        self.counter += 1
        command = Command(
            op="add" if is_write else "contains",
            args=(key,),
            writes=is_write,
        )
        self.cos.insert(command)
        self.model.present.append(command)

    @precondition(lambda self: bool(self.model.ready_uids()))
    @rule()
    def get(self):
        handle = self.cos.get()  # must not block: the model says ready work
        command = self.cos.command_of(handle)
        assert command.uid in self.model.ready_uids(), (
            f"get returned non-ready command {command}")
        self.model.executing.add(command.uid)
        self.handles[command.uid] = handle

    @precondition(lambda self: bool(self.handles))
    @rule(pick=st.randoms(use_true_random=False))
    def remove(self, pick):
        uid = pick.choice(sorted(self.handles))
        handle = self.handles.pop(uid)
        self.cos.remove(handle)
        self.model.executing.discard(uid)
        self.model.present = [
            command for command in self.model.present if command.uid != uid
        ]

    # ---------------------------------------------------------- invariants

    @invariant()
    def no_deadlock(self):
        # Progress (paper §6.2.2): pending commands may only wait on
        # commands still present (executing or ready); if nothing is ready
        # and nothing is executing, yet commands are present, the graph
        # has deadlocked.
        if self.model.present and not self.model.ready_uids():
            assert self.model.executing, (
                "deadlock: commands present, none ready, none executing")

    def teardown(self):
        # Full drain must always succeed from any state.
        import random as random_module

        rng = random_module.Random(0)
        steps = 0
        while self.model.present:
            steps += 1
            assert steps < 10_000, "drain did not terminate"
            while self.model.ready_uids():
                self.get()
            assert self.handles, "nothing executing and nothing ready"
            self.remove(rng)


def _machine_for(algorithm_name):
    machine = type(
        f"COSMachine_{algorithm_name}",
        (COSMachine,),
        {"algorithm": algorithm_name},
    )
    machine.TestCase.settings = settings(
        max_examples=25, stateful_step_count=40, deadline=None,
        # Preconditions legitimately filter many rules (full graph, no
        # ready work), so disable the filtering health check.
        suppress_health_check=[HealthCheck.filter_too_much,
                               HealthCheck.too_slow])
    return machine.TestCase


TestCoarseGrainedMachine = _machine_for("coarse-grained")
TestFineGrainedMachine = _machine_for("fine-grained")
TestLockFreeMachine = _machine_for("lock-free")
TestIndexedMachine = _machine_for("indexed")
