"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: None))
        assert sim.run() == 5.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == list(range(6))
        assert sim.now == 5.0


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 10]

    def test_stop_when_checked_periodically(self):
        sim = Simulator()
        count = {"fired": 0}

        def tick():
            count["fired"] += 1
            sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run(stop_when=lambda: count["fired"] >= 1000)
        # Checked every _STOP_CHECK_INTERVAL events, so slightly over.
        assert 1000 <= count["fired"] <= 1000 + Simulator._STOP_CHECK_INTERVAL

    def test_step_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_run_not_reentrant(self):
        sim = Simulator()

        def evil():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.0, evil)
        sim.run()

    def test_empty_run_advances_to_until(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5
