"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestStandalone:
    def test_runs_and_prints_throughput(self, capsys):
        code = main(["standalone", "--algorithm", "lock-free",
                     "--workers", "4", "--measure-ops", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "kops/s" in out

    @pytest.mark.parametrize("algorithm", ("coarse-grained", "sequential",
                                           "class-based", "early",
                                           "early-batched"))
    def test_all_algorithms_accepted(self, capsys, algorithm):
        assert main(["standalone", "--algorithm", algorithm,
                     "--workers", "2", "--measure-ops", "400"]) == 0

    def test_scheduler_alias_selects_algorithm(self, capsys):
        assert main(["standalone", "--scheduler", "early",
                     "--workers", "2", "--measure-ops", "400"]) == 0
        assert "algorithm=early" in capsys.readouterr().out

    def test_write_pct_flag(self, capsys):
        assert main(["standalone", "--write-pct", "50",
                     "--measure-ops", "400"]) == 0
        assert "writes=50.0%" in capsys.readouterr().out

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["standalone", "--algorithm", "bogus"])


class TestSmr:
    def test_prints_latency(self, capsys):
        code = main(["smr", "--workers", "2", "--clients", "20",
                     "--measure-ops", "600"])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency:" in out


class TestMpEngine:
    def test_standalone_mp(self, capsys):
        code = main(["standalone", "--engine", "mp", "--mp-workers", "2",
                     "--measure-ops", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=mp" in out
        assert "cmds/s wall clock" in out

    def test_standalone_threaded_wallclock(self, capsys):
        assert main(["standalone", "--engine", "threaded", "--workers", "2",
                     "--measure-ops", "150"]) == 0
        assert "engine=threaded" in capsys.readouterr().out

    def test_standalone_zipf(self, capsys):
        assert main(["standalone", "--key-dist", "zipf", "--zipf-s", "1.2",
                     "--measure-ops", "400"]) == 0

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["standalone", "--engine", "gpu"])

    def test_smr_mp(self, capsys):
        code = main(["smr", "--engine", "mp", "--mp-workers", "2",
                     "--clients", "4", "--measure-ops", "120"])
        assert code == 0
        assert "engine=mp" in capsys.readouterr().out

    def test_net_parser_accepts_engine_flags(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["net", "bench", "--engine", "mp", "--mp-workers", "3"])
        assert args.engine == "mp"
        assert args.mp_workers == 3


class TestFigures:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_single_figure(self, capsys, monkeypatch):
        # Patch figure2 to avoid a multi-second sweep in unit tests.
        import repro.cli as cli
        from repro.bench import FigureData

        def fake_figure2(quick=None):
            figure = FigureData(name="fig2", title="t", x_label="w",
                                y_label="kops")
            figure.add_point("light", "lock-free", 1, 100.0)
            return figure

        monkeypatch.setattr(cli, "figure2", fake_figure2)
        assert cli.main(["figures", "fig2"]) == 0
        assert "fig2" in capsys.readouterr().out
