"""Tests for the in-memory transport and fault plan."""

import pytest

from repro.broadcast import FaultPlan, ThreadedTransport
from repro.errors import ConfigurationError, ShutdownError


class TestFaultPlan:
    def test_default_delivers_once(self):
        plan = FaultPlan(seed=1, min_delay=0, max_delay=0)
        fate = plan.fate(0, 1)
        assert fate.copies == 1
        assert fate.delays == (0.0,)

    def test_loss_drops_messages(self):
        plan = FaultPlan(seed=1, min_delay=0, max_delay=0, loss=0.5)
        outcomes = [plan.fate(0, 1).copies for _ in range(500)]
        assert 100 < outcomes.count(0) < 400

    def test_duplication(self):
        plan = FaultPlan(seed=1, min_delay=0, max_delay=0, duplication=0.5)
        outcomes = [plan.fate(0, 1).copies for _ in range(500)]
        assert outcomes.count(2) > 100

    def test_delays_within_bounds(self):
        plan = FaultPlan(seed=1, min_delay=0.01, max_delay=0.02)
        for _ in range(100):
            for delay in plan.fate(0, 1).delays:
                assert 0.01 <= delay <= 0.02

    def test_partition_blocks_both_directions(self):
        plan = FaultPlan(seed=1)
        plan.partition(0, 2)
        assert plan.fate(0, 2).copies == 0
        assert plan.fate(2, 0).copies == 0
        assert plan.fate(0, 1).copies == 1

    def test_heal(self):
        plan = FaultPlan(seed=1, min_delay=0, max_delay=0)
        plan.partition(0, 1)
        plan.heal(0, 1)
        assert plan.fate(0, 1).copies == 1

    def test_heal_all(self):
        plan = FaultPlan(seed=1, min_delay=0, max_delay=0)
        plan.partition(0, 1)
        plan.partition(1, 2)
        plan.heal_all()
        assert plan.fate(0, 1).copies == 1
        assert plan.fate(1, 2).copies == 1

    def test_seeded_reproducibility(self):
        a = FaultPlan(seed=42, loss=0.3, duplication=0.2)
        b = FaultPlan(seed=42, loss=0.3, duplication=0.2)
        fates_a = [a.fate(0, 1) for _ in range(100)]
        fates_b = [b.fate(0, 1) for _ in range(100)]
        assert fates_a == fates_b

    @pytest.mark.parametrize("kwargs", [
        {"loss": 1.0},
        {"loss": -0.1},
        {"duplication": 1.5},
        {"min_delay": -1.0},
        {"min_delay": 2.0, "max_delay": 1.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)


class TestThreadedTransport:
    def _zero_plan(self):
        return FaultPlan(min_delay=0, max_delay=0)

    def test_immediate_delivery(self):
        transport = ThreadedTransport(2, self._zero_plan())
        transport.send(0, 1, "hello")
        assert transport.inbox(1).get(timeout=1) == (0, "hello")

    def test_crashed_node_sends_nothing(self):
        transport = ThreadedTransport(2, self._zero_plan())
        transport.crash(0)
        transport.send(0, 1, "x")
        assert transport.inbox(1).empty()

    def test_crashed_node_receives_nothing(self):
        transport = ThreadedTransport(2, self._zero_plan())
        transport.crash(1)
        transport.send(0, 1, "x")
        assert transport.inbox(1).empty()

    def test_recover(self):
        transport = ThreadedTransport(2, self._zero_plan())
        transport.crash(1)
        transport.recover(1)
        transport.send(0, 1, "x")
        assert transport.inbox(1).get(timeout=1) == (0, "x")

    def test_delayed_delivery(self):
        plan = FaultPlan(min_delay=0.01, max_delay=0.02)
        transport = ThreadedTransport(2, plan)
        transport.send(0, 1, "later")
        assert transport.inbox(1).get(timeout=2) == (0, "later")

    def test_closed_transport_rejects_send(self):
        transport = ThreadedTransport(2, self._zero_plan())
        transport.close()
        with pytest.raises(ShutdownError):
            transport.send(0, 1, "x")

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            ThreadedTransport(0)
