"""White-box tests for the coarse-grained monitor and fine-grained list."""

import pytest

from repro.core import ReadWriteConflicts, ThreadedRuntime
from repro.core.coarse_grained import CoarseGrainedCOS
from repro.core.command import Command
from repro.core.fine_grained import FineGrainedCOS
from repro.core.node import EXECUTING, WAITING


def read(key=0):
    return Command("contains", (key,), writes=False)


def write(key=0):
    return Command("add", (key,), writes=True)


@pytest.fixture
def runtime():
    return ThreadedRuntime()


class TestCoarseGrained:
    def test_size_tracks_population(self, runtime):
        cos = CoarseGrainedCOS(runtime, ReadWriteConflicts())
        assert cos.size_unsafe() == 0
        runtime.run(cos.insert(read(1)))
        runtime.run(cos.insert(read(2)))
        assert cos.size_unsafe() == 2
        handle = runtime.run(cos.get())
        assert cos.size_unsafe() == 2  # executing nodes stay resident
        runtime.run(cos.remove(handle))
        assert cos.size_unsafe() == 1

    def test_edges_recorded_both_ways(self, runtime):
        cos = CoarseGrainedCOS(runtime, ReadWriteConflicts())
        runtime.run(cos.insert(write(1)))
        runtime.run(cos.insert(read(1)))
        nodes = list(cos._nodes.values())
        writer, reader = nodes
        assert reader in writer.deps_out
        assert writer in reader.deps_in

    def test_get_picks_oldest_ready(self, runtime):
        cos = CoarseGrainedCOS(runtime, ReadWriteConflicts())
        commands = [read(i) for i in range(4)]
        for command in commands:
            runtime.run(cos.insert(command))
        for expected in commands:
            handle = runtime.run(cos.get())
            assert handle.cmd is expected
            runtime.run(cos.remove(handle))

    def test_status_transitions(self, runtime):
        cos = CoarseGrainedCOS(runtime, ReadWriteConflicts())
        runtime.run(cos.insert(read(1)))
        (node,) = cos._nodes.values()
        assert node.status == WAITING
        handle = runtime.run(cos.get())
        assert handle.status == EXECUTING

    def test_remove_clears_edges(self, runtime):
        cos = CoarseGrainedCOS(runtime, ReadWriteConflicts())
        runtime.run(cos.insert(write(1)))
        runtime.run(cos.insert(write(2)))
        handle = runtime.run(cos.get())
        dependent = [n for n in cos._nodes.values() if n is not handle][0]
        runtime.run(cos.remove(handle))
        assert not dependent.deps_in
        assert handle.seq not in cos._nodes


class TestFineGrained:
    def _chain(self, cos):
        nodes = []
        node = cos._head.nxt
        while node is not cos._tail:
            nodes.append(node)
            node = node.nxt
        return nodes

    def test_list_order_is_delivery_order(self, runtime):
        cos = FineGrainedCOS(runtime, ReadWriteConflicts())
        commands = [read(i) for i in range(4)]
        for command in commands:
            runtime.run(cos.insert(command))
        assert [n.cmd for n in self._chain(cos)] == commands

    def test_sentinels_bracket_list(self, runtime):
        cos = FineGrainedCOS(runtime, ReadWriteConflicts())
        assert cos._head.sentinel and cos._tail.sentinel
        assert cos._head.nxt is cos._tail
        runtime.run(cos.insert(read(1)))
        assert cos._head.nxt.nxt is cos._tail

    def test_remove_unlinks_physically(self, runtime):
        cos = FineGrainedCOS(runtime, ReadWriteConflicts())
        runtime.run(cos.insert(read(1)))
        runtime.run(cos.insert(read(2)))
        handle = runtime.run(cos.get())
        runtime.run(cos.remove(handle))
        chain = self._chain(cos)
        assert handle not in chain
        assert len(chain) == 1

    def test_dependency_edges(self, runtime):
        cos = FineGrainedCOS(runtime, ReadWriteConflicts())
        runtime.run(cos.insert(write(1)))
        runtime.run(cos.insert(read(1)))
        writer, reader = self._chain(cos)
        assert writer in reader.deps_in
        handle = runtime.run(cos.get())
        assert handle is writer
        runtime.run(cos.remove(handle))
        assert not reader.deps_in

    def test_remove_interior_node(self, runtime):
        cos = FineGrainedCOS(runtime, ReadWriteConflicts())
        for key in range(3):
            runtime.run(cos.insert(read(key)))
        chain = self._chain(cos)
        middle = chain[1]
        taken = []
        while True:
            handle = runtime.run(cos.get())
            if handle is middle:
                break
            taken.append(handle)
        runtime.run(cos.remove(middle))
        assert middle not in self._chain(cos)
        assert len(self._chain(cos)) == 2

    def test_remove_missing_node_raises(self, runtime):
        cos = FineGrainedCOS(runtime, ReadWriteConflicts())
        runtime.run(cos.insert(read(1)))
        handle = runtime.run(cos.get())
        runtime.run(cos.remove(handle))
        with pytest.raises(LookupError):
            runtime.run(cos.remove(handle))
