"""Schedule-space exploration of the COS algorithms (fuzz preemption).

Each seed yields one reproducible interleaving; sweeping seeds explores the
schedule space far beyond what a single deterministic run covers.  Every
explored schedule must satisfy the COS invariants.
"""

import pytest

from conftest import GRAPH_ALGORITHMS, make_mixed_commands
from repro.core import ReadWriteConflicts, make_cos
from repro.core.effects import Work
from repro.errors import SimulationError
from repro.sim import SimRuntime, Simulator, structure_costs


def run_fuzzed(algorithm, commands, n_workers, seed):
    sim = Simulator()
    # Jitter above the inter-command spacing so schedules genuinely permute.
    runtime = SimRuntime(sim, preemption="fuzz", fuzz_seed=seed,
                         fuzz_jitter=3e-6)
    cos = make_cos(algorithm, runtime, ReadWriteConflicts(), max_size=8,
                   costs=structure_costs())
    start, finish, order = {}, {}, []
    remaining = {"count": len(commands)}

    def scheduler():
        for command in commands:
            yield Work(1e-7)
            yield from cos.insert(command)

    def worker(index):
        while remaining["count"] > 0:
            handle = yield from cos.get()
            command = cos.command_of(handle)
            start[command.uid] = sim.now
            order.append(command.uid)
            # Heavy, worker-dependent execution so in-flight commands
            # genuinely overlap and finish out of dispatch order.
            yield Work(20e-6 * (1 + index))
            finish[command.uid] = sim.now
            yield from cos.remove(handle)
            remaining["count"] -= 1

    runtime.spawn(scheduler(), "scheduler")
    for index in range(n_workers):
        runtime.spawn(worker(index), f"worker-{index}")
    sim.run(until=60.0)
    return start, finish, order


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_invariants_across_schedules(algorithm):
    commands = make_mixed_commands(40, write_every=4)
    conflicts = ReadWriteConflicts()
    schedules = set()
    for seed in range(12):
        start, finish, order = run_fuzzed(algorithm, commands, 4, seed)
        assert len(order) == len(commands), f"seed {seed}: lost commands"
        assert len(set(order)) == len(order), f"seed {seed}: double execution"
        for i, first in enumerate(commands):
            for second in commands[i + 1:]:
                if conflicts.conflicts(first, second):
                    assert finish[first.uid] <= start[second.uid], (
                        f"seed {seed}: conflict overlap")
        completion = tuple(sorted(finish, key=finish.get))
        schedules.add(completion)
    # The fuzzer must actually explore: several distinct interleavings.
    assert len(schedules) > 1, "fuzzing produced a single schedule"


def test_same_seed_same_schedule():
    commands = make_mixed_commands(30, write_every=3)
    a = run_fuzzed("lock-free", commands, 4, seed=7)
    b = run_fuzzed("lock-free", commands, 4, seed=7)
    assert a == b


def test_unknown_mode_still_rejected():
    with pytest.raises(SimulationError):
        SimRuntime(Simulator(), preemption="chaos")
