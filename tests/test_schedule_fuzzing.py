"""Schedule-space exploration of the COS algorithms (fuzz preemption).

Each seed yields one reproducible interleaving; sweeping seeds explores the
schedule space far beyond what a single deterministic run covers.  Every
explored schedule must satisfy the COS invariants.
"""

import pytest

from conftest import GRAPH_ALGORITHMS, make_mixed_commands
from repro.core import ReadWriteConflicts, make_cos
from repro.core.class_based import ClassBasedCOS, read_write_classes
from repro.core.effects import Work
from repro.errors import SimulationError
from repro.sim import SimRuntime, Simulator, structure_costs


def run_fuzzed(algorithm, commands, n_workers, seed, max_size=8,
               make_structure=None):
    sim = Simulator()
    # Jitter above the inter-command spacing so schedules genuinely permute.
    runtime = SimRuntime(sim, preemption="fuzz", fuzz_seed=seed,
                         fuzz_jitter=3e-6)
    if make_structure is not None:
        cos = make_structure(runtime)
    else:
        cos = make_cos(algorithm, runtime, ReadWriteConflicts(),
                       max_size=max_size, costs=structure_costs())
    start, finish, order = {}, {}, []
    remaining = {"count": len(commands)}

    def scheduler():
        for command in commands:
            yield Work(1e-7)
            yield from cos.insert(command)

    def worker(index):
        while remaining["count"] > 0:
            handle = yield from cos.get()
            command = cos.command_of(handle)
            start[command.uid] = sim.now
            order.append(command.uid)
            # Heavy, worker-dependent execution so in-flight commands
            # genuinely overlap and finish out of dispatch order.
            yield Work(20e-6 * (1 + index))
            finish[command.uid] = sim.now
            yield from cos.remove(handle)
            remaining["count"] -= 1

    runtime.spawn(scheduler(), "scheduler")
    for index in range(n_workers):
        runtime.spawn(worker(index), f"worker-{index}")
    sim.run(until=60.0)
    metrics = (sim.now, sim.events_processed)
    return start, finish, order, metrics


@pytest.mark.parametrize("n_workers,max_size", [(2, 2), (3, 8), (5, 2),
                                                (5, 8)])
@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_invariants_across_schedules(algorithm, n_workers, max_size):
    commands = make_mixed_commands(40, write_every=4)
    conflicts = ReadWriteConflicts()
    schedules = set()
    for seed in range(6):
        start, finish, order, _ = run_fuzzed(
            algorithm, commands, n_workers, seed, max_size=max_size)
        assert len(order) == len(commands), f"seed {seed}: lost commands"
        assert len(set(order)) == len(order), f"seed {seed}: double execution"
        for i, first in enumerate(commands):
            for second in commands[i + 1:]:
                if conflicts.conflicts(first, second):
                    assert finish[first.uid] <= start[second.uid], (
                        f"seed {seed}: conflict overlap")
        completion = tuple(sorted(finish, key=finish.get))
        schedules.add(completion)
    # The fuzzer must actually explore: several distinct interleavings.
    # A capacity-2 structure leaves no room to permute — at most two
    # commands are in flight and conflicts serialize them — so only the
    # roomy configurations are required to diversify.
    if max_size >= 8:
        assert len(schedules) > 1, "fuzzing produced a single schedule"


@pytest.mark.parametrize("n_workers", [2, 3, 5])
@pytest.mark.parametrize("max_size", [2, 8])
def test_class_based_per_class_fifo(n_workers, max_size):
    """Class scheduling's defining invariant survives fuzzed schedules:
    commands of one conflict class start execution in delivery order, even
    when different classes interleave freely."""
    classes_of = read_write_classes(shards=2)
    commands = make_mixed_commands(40, write_every=5)

    def make_structure(runtime):
        return ClassBasedCOS(runtime, classes_of, max_size=max_size,
                             costs=structure_costs())

    for seed in range(6):
        start, finish, order, _ = run_fuzzed(
            "class-based", commands, n_workers, seed, max_size=max_size,
            make_structure=make_structure)
        assert len(order) == len(commands), f"seed {seed}: lost commands"
        assert len(set(order)) == len(order), f"seed {seed}: double execution"
        by_uid = {cmd.uid: cmd for cmd in commands}
        delivered = {cmd.uid: pos for pos, cmd in enumerate(commands)}
        classes = {cls for cmd in commands for cls in classes_of(cmd)}
        for cls in classes:
            members = [uid for uid in order
                       if cls in classes_of(by_uid[uid])]
            started = sorted(members, key=start.get)
            in_delivery_order = sorted(members, key=delivered.get)
            assert started == in_delivery_order, (
                f"seed {seed}: class {cls!r} broke FIFO")


def test_same_seed_same_schedule():
    commands = make_mixed_commands(30, write_every=3)
    a = run_fuzzed("lock-free", commands, 4, seed=7)
    b = run_fuzzed("lock-free", commands, 4, seed=7)
    assert a == b


def test_unknown_mode_still_rejected():
    with pytest.raises(SimulationError):
        SimRuntime(Simulator(), preemption="chaos")
