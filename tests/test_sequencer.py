"""Tests for sequencer-based total-order broadcast.

Covers the base stamping path, the optimistic fast path
(``optimistic=True``: announce-on-submit, arrival order as the guessed
total order) and sequencer failover (``promote``/``NewEpoch``), whose
epoch guard keeps the stamped sequence gap- and collision-free across
the transition.
"""

import pytest

from repro.broadcast import Deliver, Send, SequencerBroadcast, SequencerStamp
from repro.broadcast.messages import (
    DeliverOptimistic,
    NewEpoch,
    OptimisticAnnounce,
)
from repro.errors import ConfigurationError


def delivered(actions):
    return [(a.instance, a.payload) for a in actions if isinstance(a, Deliver)]


def sent(actions):
    return [(a.dst, a.msg) for a in actions if isinstance(a, Send)]


def optimistic(actions):
    return [a.payload for a in actions if isinstance(a, DeliverOptimistic)]


def announced(actions):
    return [(dst, msg.payload) for dst, msg in sent(actions)
            if isinstance(msg, OptimisticAnnounce)]


class TestSequencer:
    def test_sequencer_stamps_and_delivers(self):
        node = SequencerBroadcast(0, 3)
        actions = node.submit("a")
        assert delivered(actions) == [(0, "a")]
        stamps = [msg for _, msg in sent(actions)]
        assert all(isinstance(m, SequencerStamp) and m.seq == 0 for m in stamps)
        assert len(stamps) == 2  # to the two other nodes

    def test_non_sequencer_forwards(self):
        node = SequencerBroadcast(1, 3)
        actions = node.submit("a")
        assert sent(actions) == [(0, "a")]
        assert delivered(actions) == []

    def test_followers_deliver_in_stamp_order(self):
        node = SequencerBroadcast(1, 3)
        out_of_order = [SequencerStamp(1, "b"), SequencerStamp(0, "a"),
                        SequencerStamp(2, "c")]
        collected = []
        for msg in out_of_order:
            collected.extend(delivered(node.on_message(0, msg)))
        assert collected == [(0, "a"), (1, "b"), (2, "c")]

    def test_duplicate_stamps_ignored(self):
        node = SequencerBroadcast(1, 3)
        first = node.on_message(0, SequencerStamp(0, "a"))
        second = node.on_message(0, SequencerStamp(0, "a"))
        assert delivered(first) == [(0, "a")]
        assert delivered(second) == []

    def test_forwarded_payload_gets_stamped(self):
        sequencer = SequencerBroadcast(0, 3)
        actions = sequencer.on_message(1, "payload")
        assert delivered(actions) == [(0, "payload")]

    def test_sequence_numbers_increase(self):
        node = SequencerBroadcast(0, 1)
        outcomes = [delivered(node.submit(i)) for i in range(5)]
        assert outcomes == [[(i, i)] for i in range(5)]

    def test_unstamped_at_follower_raises(self):
        node = SequencerBroadcast(1, 3)
        with pytest.raises(ConfigurationError):
            node.on_message(2, "raw payload")

    def test_no_timers(self):
        node = SequencerBroadcast(0, 3)
        assert node.start() == []
        with pytest.raises(ConfigurationError):
            node.on_timer("anything")

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SequencerBroadcast(3, 3)
        with pytest.raises(ConfigurationError):
            SequencerBroadcast(0, 0)


class TestOptimisticDelivery:
    def test_submit_announces_and_self_delivers(self):
        node = SequencerBroadcast(1, 3, optimistic=True)
        actions = node.submit("a")
        # Announced to both peers, self-delivered optimistically, and
        # still forwarded to the sequencer for the conservative order.
        assert announced(actions) == [(0, "a"), (2, "a")]
        assert optimistic(actions) == ["a"]
        assert (0, "a") in sent(actions)

    def test_sequencer_submit_also_announces(self):
        node = SequencerBroadcast(0, 3, optimistic=True)
        actions = node.submit("a")
        assert announced(actions) == [(1, "a"), (2, "a")]
        assert optimistic(actions) == ["a"]
        assert delivered(actions) == [(0, "a")]  # stamped instantly

    def test_announce_delivers_optimistically_at_receivers(self):
        node = SequencerBroadcast(2, 3, optimistic=True)
        actions = node.on_message(1, OptimisticAnnounce("a"))
        assert optimistic(actions) == ["a"]
        assert delivered(actions) == []  # conservative comes via stamps

    def test_conservative_mode_ignores_announcements(self):
        node = SequencerBroadcast(2, 3)  # optimistic=False
        assert node.submit("a") == [Send(0, "a")]
        assert node.on_message(1, OptimisticAnnounce("a")) == []

    def test_optimistic_stream_is_arrival_ordered(self):
        node = SequencerBroadcast(2, 3, optimistic=True)
        collected = []
        for payload in ("b", "a"):
            collected.extend(optimistic(
                node.on_message(1, OptimisticAnnounce(payload))))
        # The guess is the arrival order; the stamped path corrects it.
        assert collected == ["b", "a"]
        stamped = []
        for seq, payload in ((0, "a"), (1, "b")):
            stamped.extend(delivered(
                node.on_message(0, SequencerStamp(seq, payload))))
        assert stamped == [(0, "a"), (1, "b")]


class TestSequencerFailover:
    def test_promote_starts_a_new_epoch_at_the_frontier(self):
        node = SequencerBroadcast(1, 3)
        node.on_message(0, SequencerStamp(0, "a"))
        actions = node.promote()
        assert node.is_sequencer and node.epoch == 1
        news = [msg for _, msg in sent(actions)
                if isinstance(msg, NewEpoch)]
        assert news == [NewEpoch(1, 1, 1), NewEpoch(1, 1, 1)]

    def test_promote_is_idempotent_on_the_sequencer(self):
        node = SequencerBroadcast(0, 3)
        assert node.promote() == []
        assert node.epoch == 0

    def test_promote_restamps_own_inflight_submissions(self):
        node = SequencerBroadcast(1, 3)
        node.on_message(0, SequencerStamp(0, "a"))
        node.submit("mine")  # forwarded to sequencer 0, which then dies
        actions = node.promote()
        assert delivered(actions) == [(1, "mine")]
        stamps = [msg for _, msg in sent(actions)
                  if isinstance(msg, SequencerStamp)]
        assert {(m.seq, m.epoch, m.payload) for m in stamps} == {
            (1, 1, "mine")}

    def test_followers_adopt_and_reforward_inflight(self):
        node = SequencerBroadcast(2, 3)
        node.submit("mine")
        actions = node.on_message(1, NewEpoch(1, 1, 0))
        assert node.epoch == 1 and not node.is_sequencer
        assert sent(actions) == [(1, "mine")]

    def test_delivered_submissions_are_not_reforwarded(self):
        node = SequencerBroadcast(2, 3)
        node.submit("mine")
        node.on_message(0, SequencerStamp(0, "mine"))  # confirmed
        assert sent(node.on_message(1, NewEpoch(1, 1, 1))) == []

    def test_stale_new_epoch_is_ignored(self):
        node = SequencerBroadcast(2, 3)
        node.on_message(1, NewEpoch(2, 1, 0))
        assert node.on_message(0, NewEpoch(1, 0, 0)) == []
        assert node.epoch == 2

    def test_old_epoch_stamp_below_base_is_accepted(self):
        # Positions below the base are final under earlier epochs: a
        # reordered pre-failover stamp must still fill its gap.
        node = SequencerBroadcast(2, 3)
        node.on_message(1, NewEpoch(1, 1, 1))
        actions = node.on_message(0, SequencerStamp(0, "a", epoch=0))
        assert delivered(actions) == [(0, "a")]

    def test_deposed_sequencer_stamp_at_or_above_base_is_void(self):
        node = SequencerBroadcast(2, 3)
        node.on_message(0, SequencerStamp(0, "a", epoch=0))
        node.on_message(1, NewEpoch(1, 1, 1))
        # The deposed sequencer's stamp for position 1 must be discarded;
        # the new epoch re-stamps that position.
        assert node.on_message(0, SequencerStamp(1, "stale", epoch=0)) == []
        actions = node.on_message(1, SequencerStamp(1, "fresh", epoch=1))
        assert delivered(actions) == [(1, "fresh")]

    def test_future_epoch_stamps_buffer_until_the_epoch_arrives(self):
        # Network reordering: the new sequencer's stamp outruns its
        # NewEpoch announcement.  Delivering it early could assign the
        # wrong position, so it waits.
        node = SequencerBroadcast(2, 3)
        node.on_message(0, SequencerStamp(0, "a", epoch=0))
        assert node.on_message(1, SequencerStamp(1, "b", epoch=1)) == []
        actions = node.on_message(1, NewEpoch(1, 1, 1))
        assert delivered(actions) == [(1, "b")]

    def test_new_sequencer_drops_recently_delivered_resubmits(self):
        # At-least-once re-forwarding: a payload whose old-epoch stamp
        # already delivered here must not be stamped twice.
        node = SequencerBroadcast(1, 3)
        node.on_message(0, SequencerStamp(0, "dup"))
        node.promote()
        assert node.on_message(2, "dup") == []
        actions = node.on_message(2, "new")
        assert delivered(actions) == [(1, "new")]

    def test_promote_does_not_reannounce_optimistically(self):
        # Re-stamped submissions were announced at original submission;
        # announcing again would double-deliver on the optimistic stream.
        node = SequencerBroadcast(1, 3, optimistic=True)
        node.submit("mine")
        actions = node.promote()
        assert announced(actions) == []
        assert optimistic(actions) == []

    def test_failover_sequence_stays_gap_free(self):
        # End to end at a follower: epoch 0 delivers 0; the new epoch
        # re-stamps 1 and continues; every position delivers exactly once.
        node = SequencerBroadcast(2, 3)
        log = []
        log += delivered(node.on_message(0, SequencerStamp(0, "a")))
        log += delivered(node.on_message(0, SequencerStamp(2, "c")))  # gap at 1
        log += delivered(node.on_message(1, NewEpoch(1, 1, 1)))
        log += delivered(node.on_message(0, SequencerStamp(1, "b", epoch=0)))
        log += delivered(node.on_message(1, SequencerStamp(1, "b2", epoch=1)))
        log += delivered(node.on_message(1, SequencerStamp(2, "c2", epoch=1)))
        assert log == [(0, "a"), (1, "b2"), (2, "c2")]
