"""Tests for sequencer-based total-order broadcast."""

import pytest

from repro.broadcast import Deliver, Send, SequencerBroadcast, SequencerStamp
from repro.errors import ConfigurationError


def delivered(actions):
    return [(a.instance, a.payload) for a in actions if isinstance(a, Deliver)]


def sent(actions):
    return [(a.dst, a.msg) for a in actions if isinstance(a, Send)]


class TestSequencer:
    def test_sequencer_stamps_and_delivers(self):
        node = SequencerBroadcast(0, 3)
        actions = node.submit("a")
        assert delivered(actions) == [(0, "a")]
        stamps = [msg for _, msg in sent(actions)]
        assert all(isinstance(m, SequencerStamp) and m.seq == 0 for m in stamps)
        assert len(stamps) == 2  # to the two other nodes

    def test_non_sequencer_forwards(self):
        node = SequencerBroadcast(1, 3)
        actions = node.submit("a")
        assert sent(actions) == [(0, "a")]
        assert delivered(actions) == []

    def test_followers_deliver_in_stamp_order(self):
        node = SequencerBroadcast(1, 3)
        out_of_order = [SequencerStamp(1, "b"), SequencerStamp(0, "a"),
                        SequencerStamp(2, "c")]
        collected = []
        for msg in out_of_order:
            collected.extend(delivered(node.on_message(0, msg)))
        assert collected == [(0, "a"), (1, "b"), (2, "c")]

    def test_duplicate_stamps_ignored(self):
        node = SequencerBroadcast(1, 3)
        first = node.on_message(0, SequencerStamp(0, "a"))
        second = node.on_message(0, SequencerStamp(0, "a"))
        assert delivered(first) == [(0, "a")]
        assert delivered(second) == []

    def test_forwarded_payload_gets_stamped(self):
        sequencer = SequencerBroadcast(0, 3)
        actions = sequencer.on_message(1, "payload")
        assert delivered(actions) == [(0, "payload")]

    def test_sequence_numbers_increase(self):
        node = SequencerBroadcast(0, 1)
        outcomes = [delivered(node.submit(i)) for i in range(5)]
        assert outcomes == [[(i, i)] for i in range(5)]

    def test_unstamped_at_follower_raises(self):
        node = SequencerBroadcast(1, 3)
        with pytest.raises(ConfigurationError):
            node.on_message(2, "raw payload")

    def test_no_timers(self):
        node = SequencerBroadcast(0, 3)
        assert node.start() == []
        with pytest.raises(ConfigurationError):
            node.on_timer("anything")

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SequencerBroadcast(3, 3)
        with pytest.raises(ConfigurationError):
            SequencerBroadcast(0, 0)
