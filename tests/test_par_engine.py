"""Multiprocess execution engine (repro.par) end-to-end tests.

Covers the engine facade (dispatch, barriers, snapshots, crash handling),
its integration with :class:`~repro.smr.replica.ParallelReplica`, the full
mp-engine :class:`~repro.smr.cluster.ThreadedCluster`, and the ``"mp"``
benchmark backend.  Everything here runs on one CPU — parallel *speedup*
is benchmarked, not unit-tested (benchmarks/bench_mp_scaling.py).
"""

import os
import signal
import time

import pytest

from repro.apps.bank import BankService
from repro.apps.kvstore import KVStoreService
from repro.core.command import Command
from repro.errors import ConfigurationError, ShardCrashed, ShardError
from repro.obs.registry import MetricsRegistry
from repro.par import MpEngineConfig, MpService
from repro.par.bench import MpBenchConfig, run_mp_bench
from repro.smr.cluster import ClusterConfig, ThreadedCluster
from repro.smr.replica import ParallelReplica
from repro.workload import READ_OP, WRITE_OP


class TestEngineBasics:
    def test_single_shard_dispatch_and_snapshot(self):
        registry = MetricsRegistry()
        with MpService("kv", workers=3, registry=registry) as engine:
            for i in range(24):
                assert engine.execute(KVStoreService.put(f"k{i}", i)) is None
            for i in range(24):
                assert engine.execute(KVStoreService.get(f"k{i}")) == i
            snapshot = engine.snapshot()
        assert snapshot == {f"k{i}": i for i in range(24)}
        assert registry.histogram("mp_dispatch_seconds").count == 48
        per_shard = sum(
            registry.counter("mp_shard_commands_total", shard=str(s)).value
            for s in range(3))
        assert per_shard == 48

    def test_snapshot_equals_unsharded_execution(self):
        reference = KVStoreService()
        commands = [KVStoreService.put(f"key-{i}", i * i) for i in range(30)]
        for command in commands:
            reference.execute(command)
        with MpService("kv", workers=4) as engine:
            for command in commands:
                engine.execute(command)
            assert engine.snapshot() == reference.snapshot()

    def test_restore_before_start_is_installed_on_start(self):
        engine = MpService("kv", workers=2)
        engine.restore({"x": 1, "y": 2})
        assert engine.snapshot() == {"x": 1, "y": 2}  # cold read
        with engine:
            assert engine.execute(KVStoreService.get("y")) == 2
            assert engine.snapshot() == {"x": 1, "y": 2}

    def test_restore_while_running(self):
        with MpService("kv", workers=2) as engine:
            engine.execute(KVStoreService.put("stale", 0))
            engine.restore({"fresh": 7})
            assert engine.execute(KVStoreService.get("stale")) is None
            assert engine.execute(KVStoreService.get("fresh")) == 7

    def test_linked_list_workload(self):
        with MpService("linked-list", {"initial_size": 20},
                       workers=2) as engine:
            assert engine.execute(Command(READ_OP, (5,), writes=False))
            assert engine.execute(Command(WRITE_OP, (999,))) is True
            assert engine.execute(Command(WRITE_OP, (999,))) is False
            snapshot = engine.snapshot()
        assert snapshot == sorted(set(range(20)) | {999})

    def test_dispatch_parallelism_hint(self):
        engine = MpService("kv", workers=3)
        assert engine.dispatch_parallelism == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MpService("kv", workers=0)
        with pytest.raises(ConfigurationError):
            MpService("no-such-service")
        with pytest.raises(ConfigurationError):
            MpEngineConfig(start_method="bogus").validate()


class TestBarriers:
    def test_cross_shard_transfer_conserves_money(self):
        registry = MetricsRegistry()
        with MpService("bank", workers=4, registry=registry) as engine:
            for account in ("alice", "bob", "carol", "dave"):
                engine.execute(BankService.deposit(account, 100))
            for _ in range(6):
                assert engine.execute(
                    BankService.transfer("alice", "bob", 5)) is True
            # Insufficient funds refuse without corrupting either shard.
            assert engine.execute(
                BankService.transfer("alice", "bob", 10_000)) is False
            snapshot = engine.snapshot()
        assert sum(snapshot.values()) == 400
        assert snapshot["alice"] == 70 and snapshot["bob"] == 130
        assert registry.counter("mp_barrier_rounds_total").value >= 6

    def test_barrier_interleaved_with_single_shard_traffic(self):
        with MpService("bank", workers=2) as engine:
            for i in range(8):
                engine.execute(BankService.deposit(f"acct-{i}", 10))
            for i in range(0, 8, 2):
                engine.execute(
                    BankService.transfer(f"acct-{i}", f"acct-{i + 1}", 1))
            for i in range(8):
                engine.execute(BankService.deposit(f"acct-{i}", 1))
            snapshot = engine.snapshot()
        assert sum(snapshot.values()) == 8 * 10 + 8


class TestFailures:
    def test_application_error_is_forwarded_not_fatal(self):
        with MpService("kv", workers=2) as engine:
            with pytest.raises(ShardError, match="unknown kv operation"):
                engine.execute(Command("bogus-op", ("k",)))
            # The worker survives an application-level error.
            assert engine.execute(KVStoreService.put("k", 1)) is None
            assert engine.running

    def test_killed_worker_poisons_engine(self):
        config = MpEngineConfig(dispatch_timeout=5.0)
        engine = MpService("kv", workers=2, config=config)
        engine.start()
        try:
            engine.execute(KVStoreService.put("a", 1))
            victim = engine._dispatcher._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            with pytest.raises(ShardCrashed):
                while time.monotonic() < deadline:
                    for i in range(20):
                        engine.execute(KVStoreService.put(f"x{i}", i))
                raise AssertionError("crash never surfaced")
            assert not engine.running
            # Poisoned: every further dispatch refuses immediately.
            with pytest.raises(ShardCrashed):
                engine.execute(KVStoreService.put("y", 2))
        finally:
            engine.stop()

    def test_stop_is_idempotent(self):
        engine = MpService("kv", workers=2)
        engine.start()
        engine.stop()
        engine.stop()
        assert not engine.running


class TestReplicaIntegration:
    def test_replica_thread_pool_respects_engine_hint(self):
        with MpService("kv", workers=2) as engine:
            replica = ParallelReplica(0, engine, workers=1)
            assert replica.workers == engine.dispatch_parallelism

    def test_replica_executes_through_engine(self):
        with MpService("kv", workers=2) as engine:
            replica = ParallelReplica(0, engine, workers=4)
            replica.start()
            try:
                commands = [KVStoreService.put(f"k{i}", i) for i in range(40)]
                replica.on_deliver(0, commands)
                deadline = time.monotonic() + 10.0
                while replica.executed < 40:
                    assert time.monotonic() < deadline, "replica stalled"
                    time.sleep(0.005)
                checkpoint = replica.take_checkpoint()
            finally:
                replica.stop()
        assert len(checkpoint.state) == 40


@pytest.mark.slow
class TestClusterIntegration:
    def test_mp_cluster_replicas_agree(self):
        config = ClusterConfig(engine="mp", service="kv", mp_workers=2,
                               n_replicas=3)
        with ThreadedCluster(config) as cluster:
            client = cluster.client()
            for i in range(20):
                client.execute(KVStoreService.put(f"k{i}", i))
            assert client.execute(KVStoreService.get("k7")) == 7
            snapshots = [service.snapshot()
                         for service in cluster.services()]
        assert snapshots[0] == snapshots[1] == snapshots[2]
        assert len(snapshots[0]) == 20

    def test_mp_cluster_crash_recovery(self):
        config = ClusterConfig(engine="mp", service="bank", mp_workers=2,
                               n_replicas=3)
        with ThreadedCluster(config) as cluster:
            client = cluster.client()
            for account in ("a", "b", "c"):
                client.execute(BankService.deposit(account, 100))
            cluster.crash(2)
            for _ in range(4):
                client.execute(BankService.transfer("a", "b", 10))
            cluster.restart_replica(2)
            client.execute(BankService.deposit("c", 1))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                snapshots = [service.snapshot()
                             for service in cluster.services()]
                if snapshots[0] == snapshots[1] == snapshots[2]:
                    break
                time.sleep(0.05)
        assert snapshots[0] == snapshots[1] == snapshots[2]
        assert sum(snapshots[0].values()) == 301

    def test_mp_requires_service_spec(self):
        with pytest.raises(ConfigurationError, match="service name"):
            ClusterConfig(engine="mp").validate()


class TestBenchBackend:
    def test_mp_bench_smoke(self):
        result = run_mp_bench(MpBenchConfig(
            engine="mp", mp_workers=2, key_space=200,
            warm_ops=20, measure_ops=120))
        assert result.executed == 120
        assert result.throughput > 0
        assert len(result.shard_busy) == 2
        payload = result.to_json()
        assert payload["config"]["engine"] == "mp"

    def test_threaded_baseline_smoke(self):
        result = run_mp_bench(MpBenchConfig(
            engine="threaded", workers=2, key_space=200,
            warm_ops=20, measure_ops=120))
        assert result.executed == 120
        assert result.shard_busy == []

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MpBenchConfig(engine="gpu").validate()
