"""Threaded SpeculativeReplica: withheld responses, rollback, quiesce.

Drives the real threaded pipeline (COS workers executing speculatively)
through the optimistic/conservative delivery pair and checks the
visible contract: responses are withheld until the conservative order
confirms, mis-speculation rolls the service state back, local reads
never observe provisional effects, and checkpoints quiesce to a
confirmed cut.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

import pytest

from repro.apps.kvstore import KVStoreService
from repro.smr.checkpoint import CheckpointError
from repro.obs import MetricsRegistry
from repro.spec.replica import SpeculativeReplica


def put(key, value, cid, rid):
    return KVStoreService.put(key, value, client_id=cid, request_id=rid)


def get(key, cid, rid):
    return KVStoreService.get(key, client_id=cid, request_id=rid)


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached within timeout")
        time.sleep(0.005)


class Harness:
    """One started replica plus its collected responses."""

    def __init__(self, **kwargs):
        self.responses: List[Tuple[Any, Any]] = []
        self.service = KVStoreService()
        self.replica = SpeculativeReplica(
            0, self.service, workers=2,
            on_response=lambda c, r, _rid: self.responses.append((c, r)),
            **kwargs)
        self.replica.start()

    def stop(self):
        self.replica.stop()

    def wait_drained(self, speculated: int) -> None:
        """Wait until ``speculated`` commands finished executing."""
        wait_until(lambda: (
            self.replica.speculation_stats["speculated"] >= speculated
            and self.replica._engine.unexecuted == 0))

    def by_client(self) -> Dict[str, Any]:
        return {c.client_id: r for c, r in self.responses}


@pytest.fixture
def harness():
    h = Harness()
    yield h
    h.stop()


class TestSpeculativeExecution:
    def test_responses_withheld_until_conservative_delivery(self, harness):
        command = put("k", "v", "a", 1)
        harness.replica.on_optimistic(command)
        harness.wait_drained(1)
        # Executed speculatively (state moved) but nothing released.
        assert harness.service.snapshot() == {"k": "v"}
        assert harness.responses == []
        harness.replica.on_deliver(0, command)
        wait_until(lambda: len(harness.responses) == 1)
        assert harness.responses == [(command, None)]
        assert harness.replica.speculation_stats["hits"] == 1

    def test_hits_release_the_buffered_response(self, harness):
        first = put("k", 1, "a", 1)
        second = put("k", 2, "a", 2)
        harness.replica.on_optimistic([first, second])
        harness.wait_drained(2)
        harness.replica.on_deliver(0, [first, second])
        wait_until(lambda: len(harness.responses) == 2)
        # put returns the previous value: the buffered speculative
        # responses carry the speculative predecessor's effect.
        assert harness.responses == [(first, None), (second, 1)]
        stats = harness.replica.speculation_stats
        assert stats["hits"] == 2 and stats["rollbacks"] == 0

    def test_mismatch_rolls_back_and_matches_conservative_state(
            self, harness):
        a, b = put("k", "a-wins", "a", 1), put("k", "b-wins", "b", 1)
        harness.replica.on_optimistic([a, b])
        harness.wait_drained(2)
        # The conservative order reverses the optimistic guess.
        harness.replica.on_deliver(0, [b, a])
        wait_until(lambda: len(harness.responses) == 2)
        # Bit-identical to a replica that executed [b, a] sequentially.
        assert harness.service.snapshot() == {"k": "a-wins"}
        assert harness.by_client() == {"b": None, "a": "b-wins"}
        stats = harness.replica.speculation_stats
        assert stats["rollbacks"] == 1 and stats["rolled_back"] == 2
        assert stats["misses"] == 2

    def test_rolled_back_commands_respeculate_and_commit_later(
            self, harness):
        mine = put("k", "mine", "a", 1)
        intruder = put("k", "intruder", "b", 1)
        harness.replica.on_optimistic(mine)
        harness.wait_drained(1)
        # The conservative order confirms only the intruder: ``mine``
        # rolls back and re-enters the speculation log.
        harness.replica.on_deliver(0, intruder)
        wait_until(lambda: len(harness.responses) == 1)
        assert harness.replica.speculation_stats["rolled_back"] == 1
        # ...and hits when its own confirmation arrives.
        harness.replica.on_deliver(1, mine)
        wait_until(lambda: len(harness.responses) == 2)
        assert harness.by_client() == {"b": None, "a": "intruder"}
        assert harness.service.snapshot() == {"k": "mine"}
        assert harness.replica.speculation_stats["hits"] == 1

    def test_duplicate_optimistic_deliveries_are_dropped(self, harness):
        command = put("k", "v", "a", 1)
        harness.replica.on_optimistic(command)
        harness.replica.on_optimistic(command)  # retransmitted announce
        harness.wait_drained(1)
        stats = harness.replica.speculation_stats
        assert stats["speculated"] == 1 and stats["duplicates_dropped"] == 1
        harness.replica.on_deliver(0, command)
        wait_until(lambda: len(harness.responses) == 1)
        assert harness.service.snapshot() == {"k": "v"}


class TestLocalReads:
    def test_dirty_log_defers_reads_until_confirmation(self, harness):
        write = put("k", "guess", "w", 1)
        read = get("k", "r", 1)
        harness.replica.on_optimistic(write)
        harness.wait_drained(1)
        harness.replica.on_local_read(read)
        # Provisional state must stay invisible: no inline answer.
        assert harness.responses == []
        harness.replica.on_deliver(0, write)
        wait_until(lambda: len(harness.responses) == 2)
        assert harness.by_client()["r"] == "guess"  # now committed

    def test_deferred_read_never_sees_a_rolled_back_value(self, harness):
        write = put("k", "guess", "w", 1)
        read = get("k", "r", 1)
        harness.replica.on_optimistic(write)
        harness.wait_drained(1)
        harness.replica.on_local_read(read)
        assert harness.responses == []
        # The conservative order contains only another client's write:
        # "guess" rolls back (then respeculates), and the read must
        # release only once the log is clean again.
        intruder = put("k", "final", "i", 1)
        harness.replica.on_deliver(0, intruder)
        wait_until(lambda: "i" in harness.by_client())
        assert "r" not in harness.by_client(), (
            "read released while the respeculated write kept the log "
            "dirty")
        harness.replica.on_deliver(1, write)
        wait_until(lambda: len(harness.responses) == 3)
        assert harness.by_client()["r"] == "guess"

    def test_clean_log_reads_use_the_idle_fast_path(self, harness):
        command = put("k", "v", "w", 1)
        harness.replica.on_optimistic(command)
        harness.wait_drained(1)
        harness.replica.on_deliver(0, command)
        wait_until(lambda: len(harness.responses) == 1)
        harness.replica.on_local_read(get("k", "r", 1))
        wait_until(lambda: len(harness.responses) == 2)
        assert harness.by_client()["r"] == "v"


class TestCheckpoints:
    def test_checkpoint_refuses_a_provisional_cut(self, harness):
        harness.replica.on_optimistic(put("k", "guess", "w", 1))
        harness.wait_drained(1)
        with pytest.raises(CheckpointError):
            harness.replica.take_checkpoint(timeout=0.2)

    def test_checkpoint_after_confirmation_holds_committed_state(
            self, harness):
        command = put("k", "v", "w", 1)
        harness.replica.on_optimistic(command)
        harness.wait_drained(1)
        harness.replica.on_deliver(0, command)
        wait_until(lambda: len(harness.responses) == 1)
        checkpoint = harness.replica.take_checkpoint(timeout=5.0)
        assert checkpoint.instance == 0
        assert checkpoint.state == {"k": "v"}


class TestObservability:
    def test_spec_counters_and_histograms_populate(self):
        registry = MetricsRegistry()
        h = Harness.__new__(Harness)
        h.responses = []
        h.service = KVStoreService()
        h.replica = SpeculativeReplica(
            0, h.service, workers=2, registry=registry,
            on_response=lambda c, r, _rid: h.responses.append((c, r)))
        h.replica.start()
        try:
            a, b = put("k", 1, "a", 1), put("k", 2, "b", 1)
            h.replica.on_optimistic([a, b])
            h.wait_drained(2)
            h.replica.on_deliver(0, [b, a])  # forced mismatch
            wait_until(lambda: len(h.responses) == 2)
            assert registry.counter("spec_speculated_total").value == 2
            assert registry.counter("spec_misses_total").value == 2
            assert registry.counter("spec_rollbacks_total").value == 1
            assert registry.counter("spec_rolled_back_total").value == 2
            assert registry.histogram("spec_exec_seconds").count == 2
            assert registry.histogram("spec_commit_seconds").count == 2
        finally:
            h.stop()
