"""Loopback TCP cluster tests.

The crash-and-recover scenarios that run against
:class:`~repro.smr.cluster.ThreadedCluster` run here over real localhost
sockets: every replica is a :class:`~repro.net.replica.ReplicaServer` with
its own TCP endpoint, and clients speak the wire protocol.  One process,
so the suite stays fast; the genuinely multi-process path is covered by
``tests/test_net_process.py``.

Convergence is asserted on *snapshot equality*, not executed counters: a
recovered replica restarts its counter at zero after installing a peer
checkpoint, so counters diverge across recoveries while state must not.
"""

import time

import pytest

from repro.core.command import Command
from repro.errors import ConfigurationError, ShutdownError
from repro.net.cluster import TcpCluster


def write(key):
    return Command("add", (key,), writes=True)


def read(key):
    return Command("contains", (key,), writes=False)


def wait_snapshots_equal(cluster, required_key=None, timeout=15.0):
    """Block until every replica's service snapshot is identical."""
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        if all(server.running for server in cluster.servers):
            last = [server.service.snapshot() for server in cluster.servers]
            if (all(snap == last[0] for snap in last)
                    and (required_key is None or required_key in last[0])):
                return last[0]
        time.sleep(0.05)
    raise AssertionError(f"replica snapshots did not converge: {last}")


@pytest.fixture(params=["paxos", "sequencer"])
def cluster(request):
    with TcpCluster(n_replicas=3, protocol=request.param) as running:
        yield running


class TestBasicOperation:
    def test_write_then_read(self, cluster):
        client = cluster.client()
        assert client.execute(write(500)) is True   # 500 not pre-populated
        assert client.execute(read(500)) is True
        assert client.execute(read(499)) is False

    def test_batch_preserves_order(self, cluster):
        client = cluster.client()
        responses = client.execute_batch(
            [write(600), read(600), write(600), read(1), read(601)])
        # second add of 600 is a no-op; key 1 is in the seed population.
        assert responses == [True, True, False, True, False]

    def test_two_clients_different_contacts(self, cluster):
        first = cluster.client(contact=0)
        second = cluster.client(contact=1)
        assert first.execute(write(700)) is True
        assert second.execute(write(701)) is True
        assert first.execute(read(701)) is True
        assert second.execute(read(700)) is True

    def test_all_replicas_converge(self, cluster):
        client = cluster.client()
        client.execute_batch([write(800 + key) for key in range(10)])
        snapshot = wait_snapshots_equal(cluster, required_key=809)
        assert all(800 + key in snapshot for key in range(10))

    def test_start_twice_rejected(self, cluster):
        with pytest.raises(ShutdownError):
            cluster.start()


class TestFaults:
    def test_follower_crash_keeps_serving(self, cluster):
        client = cluster.client()
        assert client.execute(write(900)) is True
        cluster.crash(2)  # not the paxos leader, not the sequencer
        responses = client.execute_batch(
            [write(901), read(900), read(901)])
        assert responses == [True, True, True]

    def test_contact_crash_client_fails_over(self, cluster):
        # The client's contact replica dies with the request mapping; the
        # retransmission (after one attempt timeout) goes through another
        # contact, and replica-side dedup keeps it safe.
        client = cluster.client(contact=2, timeout=0.5)
        assert client.execute(write(910)) is True
        cluster.crash(2)
        assert client.execute(write(911)) is True
        assert client.execute(read(910)) is True

    def test_restart_running_replica_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.restart_replica(0)


class TestRecovery:
    def test_crash_and_recover_follower(self):
        with TcpCluster(n_replicas=3, protocol="paxos") as cluster:
            client = cluster.client()
            client.execute_batch([write(100 + key) for key in range(6)])
            cluster.crash(1)
            client.execute_batch([write(200 + key) for key in range(6)])
            cluster.restart_replica(1)
            # A post-recovery write must reach the rebuilt replica too.
            assert client.execute(write(300)) is True
            snapshot = wait_snapshots_equal(cluster, required_key=300)
            assert 105 in snapshot      # pre-crash write
            assert 205 in snapshot      # write decided while 1 was down
        assert not cluster.servers[0].running  # teardown really stopped it

    def test_recover_without_live_peer_rejected(self):
        with TcpCluster(n_replicas=3, protocol="paxos") as cluster:
            for replica_id in range(3):
                cluster.crash(replica_id)
            with pytest.raises(ShutdownError):
                cluster.restart_replica(1)
