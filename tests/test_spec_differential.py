"""Differential suite for the optimistic pipeline (forced divergence).

The strongest end-to-end safety claim of :mod:`repro.spec`: whatever the
optimistic guesses and however many forced mismatches the adapters
inject, every replica's final state is **bit-identical** to a sequential
execution of the conservative order — across all three bundled apps.
Uses the speculation DES (:mod:`repro.spec.sim`), which runs the real
:class:`~repro.broadcast.sequencer.SequencerBroadcast` machines and the
real :class:`~repro.spec.engine.SpeculationEngine` per replica; only
time is virtual.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps import build_service
from repro.spec.sim import SpecSimConfig, run_spec_sim

_MS = 1e-3

#: Concurrent clients + cheap execution: plenty of optimistic/conservative
#: interleaving per virtual second, so forced swaps create real reorders.
BASE = SpecSimConfig(
    n_replicas=3,
    n_clients=4,
    total_commands=120,
    write_pct=80.0,
    exec_cost=0.5 * _MS,
    undo_cost=0.05 * _MS,
    ordering_delay=2.0 * _MS,
    seed=9,
)

SERVICES = ("kv", "bank", "linked-list")


def run(service: str, **overrides):
    return run_spec_sim(dataclasses.replace(BASE, service=service,
                                            **overrides))


def reference_snapshot(service: str, order):
    reference = build_service(service)
    for command in order:
        reference.execute(command)
    return reference.snapshot()


@pytest.mark.parametrize("service", SERVICES)
@pytest.mark.parametrize("mismatch", [0.0, 0.6],
                         ids=["clean", "forced-divergence"])
class TestBitIdenticalState:
    def test_replicas_match_each_other_and_the_reference(
            self, service, mismatch):
        result = run(service, mismatch_rate=mismatch)
        assert result.committed == BASE.total_commands
        first = result.snapshots[0]
        for replica, snapshot in enumerate(result.snapshots):
            assert snapshot == first, (
                f"replica {replica} diverged under "
                f"mismatch_rate={mismatch}")
        assert first == reference_snapshot(
            service, result.conservative_order), (
            "speculative pipeline diverged from the sequential reference")


@pytest.mark.parametrize("service", SERVICES)
class TestForcedDivergenceExercisesRollback:
    def test_mismatches_actually_occur_and_are_survived(self, service):
        # Not vacuous: the forced-divergence runs above must actually
        # roll back, otherwise they test nothing new.
        result = run(service, mismatch_rate=0.6)
        assert result.rollbacks > 0, (
            "0.6 mismatch rate produced no rollbacks — the injection "
            "regressed")
        assert result.match_rate < 1.0


@pytest.mark.parametrize("service", SERVICES)
class TestConservativeBaseline:
    def test_conservative_mode_matches_the_same_reference(self, service):
        result = run(service, speculative=False)
        assert result.rollbacks == 0 and result.match_rate == 1.0
        first = result.snapshots[0]
        assert all(snapshot == first for snapshot in result.snapshots)
        assert first == reference_snapshot(
            service, result.conservative_order)


class TestDeterminism:
    def test_identical_configs_reproduce_bit_for_bit(self):
        first = run("kv", mismatch_rate=0.5)
        second = run("kv", mismatch_rate=0.5)
        assert first.latencies == second.latencies
        assert first.snapshots == second.snapshots
        assert first.rollbacks == second.rollbacks

    def test_mismatch_injection_is_per_seed(self):
        assert (run("kv", mismatch_rate=0.5, seed=3).snapshots
                == run("kv", mismatch_rate=0.5, seed=3).snapshots)
