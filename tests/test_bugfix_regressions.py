"""Regression tests for the client/transport/replica bug fixes.

Each test fails against the pre-fix code:

- **per-attempt client deadline** (smr/client.py): a slow replica dripping
  one response per interval used to reset the wait window on every
  response, stretching one attempt to ``len(batch) * timeout``;
- **FaultPlan.fate thread safety** (broadcast/transport.py): concurrent
  senders used to interleave RNG draws *inside* one fate, so the stream
  was no longer consumed in fate-sized chunks and the sampled fates
  diverged from a serial run with the same seed;
- **ThreadedTransport timer leak** (broadcast/transport.py): fired timers
  stayed in ``_timers`` until ``close()``, growing without bound;
- **reference CAS** (core/threaded.py, sim/sync.py): ``==`` comparison let
  a compare-and-set succeed against a distinct-but-equal object, which
  breaks the lock-free graph's identity-based transitions;
- **monotonic quiesce deadline** (smr/replica.py): a wall-clock step while
  quiescing fired the checkpoint deadline early (or postponed it forever);
- **TimeSeries same-instant samples** (sim/metrics.py): two samples at one
  virtual timestamp used to silently drop the events between them;
- **latency quantiles** (sim/metrics.py): ``ordered[n // 2]`` biased the
  median high and ``int(n * 0.99)`` truncated to index 0 for n <= 100, so
  p99 reported the *minimum*;
- **TcpTransport.start failure leak** (net/transport.py): a bind conflict
  (or readiness timeout) used to leave the loop thread alive and the event
  loop open;
- **_flatten_commands on str** (smr/replica.py): a string payload recursed
  forever (str iteration yields strings), dying with RecursionError
  instead of a diagnosable TypeError;
- **MpDispatcher._await timeout race** (par/dispatcher.py): a reply that
  arrived between the wait's expiry and the cleanup used to poison the
  whole engine as a shard crash, even though the slot held a valid value;
- **MpDispatcher._collector_loop broken pipe** (par/dispatcher.py): a
  broken reply-queue pipe raises from ``get()`` instantly, so the
  collector hot-spun a core forever; it now backs off (bounded) and
  poisons the engine after repeated consecutive failures;
- **make_cos footprint error** (core/__init__.py): asking for a
  footprint-compiled scheduler (indexed / early / early-batched) with a
  non-decomposable relation used to surface as IndexedCOS's generic
  NotImplementedError naming only the indexed COS; the factory now
  rejects it up front, naming the *requested* scheduler and listing the
  pairwise schedulers that would work;
- **hint-change drain** (broadcast/node.py): a hop-exhausted Forward
  parked at a *never-leader* follower used to sit in ``pending`` forever —
  only the was-leader step-down transition drained the queue;
- **drain hop budget** (broadcast/paxos.py): drain_pending_forwards used
  to re-emit Forwards with ``hops=0``, handing circularly-hinted payloads
  a fresh budget on every drain and defeating FORWARD_HOP_LIMIT;
- **catch-up chunking** (broadcast/paxos.py): a CatchupReply used to pack
  the requester's *entire* missing suffix into one frame, which could blow
  transport frame caps or be dropped whole by drop-oldest queues;
- **accepted-state pruning** (broadcast/paxos.py): decided instances kept
  their ``accepted`` entries and ``("accepted", i)`` stable-store keys
  forever, growing both with history instead of the in-flight window;
- **sequencer failover epoch guard** (broadcast/sequencer.py): a deposed
  sequencer's stamp at or above the new epoch's base used to occupy (or
  deliver at) a position the new sequencer re-stamps — double-delivering
  one payload and silently dropping the other, leaving a permanent gap;
- **merger released-xid absorption** (groups/merge.py): a late duplicate
  of a released rendezvous that arrived after its xid rolled out of the
  bounded ``_recent`` window used to queue as a live hold, blocking its
  group's stream forever; the authoritative released-xid set absorbs it;
- **speculative dirty reads** (spec/replica.py, smr/replica.py): the
  idle-read fast path used to answer a leaseholder-local read inline
  while the speculation log was dirty, leaking a provisional value that
  a later rollback erased; dirty-log reads are now deferred until the
  next confirmation leaves the log clean, and the base idle check +
  inline claim are one atomic critical section;
- **cross-partition key distinctness** (workload/generator.py): under
  Zipf skew the cross-partition draw could repeat a key, silently
  shrinking the command's conflict footprint (``MultiKeyedConflicts``
  dedups arguments) and understating cross-partition conflict rates.
"""

from __future__ import annotations

import queue
import statistics
import sys
import threading
import time
from collections import Counter

import pytest

from repro.broadcast.messages import Forward, Prepare
from repro.broadcast.node import ThreadedNode
from repro.broadcast.paxos import FORWARD_HOP_LIMIT, MultiPaxos
from repro.broadcast.transport import FaultPlan, ThreadedTransport
from repro.core.command import Command, ReadWriteConflicts
from repro.core.threaded import ThreadedRuntime
from repro.errors import ConfigurationError, ShardCrashed
from repro.net.transport import TcpTransport
from repro.par.config import MpEngineConfig
from repro.par.dispatcher import (
    _REPLY_FAILURE_LIMIT,
    MpDispatcher,
    _Slot,
)
from repro.sim import SimRuntime, Simulator
from repro.sim.metrics import Metrics, TimeSeries
from repro.smr.client import Client, ClientTimeout
from repro.smr.replica import ParallelReplica, _flatten_commands
from repro.smr.service import Service


def read(key):
    return Command("contains", (key,), writes=False)


# --------------------------------------------------------------------------
# Satellite 1: one deadline per attempt, not one timeout per response.
# --------------------------------------------------------------------------


class DripServer:
    """A slow replica answering a batch one response per ``interval``."""

    def __init__(self, interval: float):
        self.interval = interval
        self.client = None

    def submit(self, payload, contact):
        threading.Thread(
            target=self._drip, args=(payload,), daemon=True).start()

    def _drip(self, payload):
        for command in payload:
            time.sleep(self.interval)
            self.client.deliver_response(command, "ok")


def test_slow_responder_bounded_by_one_attempt_timeout():
    # 6 commands arriving every 0.2s against a 0.5s timeout: each get()
    # individually returns within the window, so the pre-fix code (full
    # timeout per get) happily waits ~1.2s and succeeds.  The attempt
    # budget is 0.5s total, so this must time out — and promptly.
    server = DripServer(interval=0.2)
    client = Client("slow", server.submit, n_replicas=3,
                    timeout=0.5, max_retries=0)
    server.client = client
    started = time.monotonic()
    with pytest.raises(ClientTimeout):
        client.execute_batch([read(key) for key in range(6)])
    elapsed = time.monotonic() - started
    assert elapsed < 1.0, (
        f"attempt stretched to {elapsed:.2f}s; the deadline must cap the "
        f"whole attempt, not each response")


def test_fast_batch_still_completes_within_one_attempt():
    class InstantServer(DripServer):
        def _drip(self, payload):
            for command in payload:
                self.client.deliver_response(command, "ok")

    server = InstantServer(interval=0.0)
    client = Client("fast", server.submit, n_replicas=3,
                    timeout=0.5, max_retries=0)
    server.client = client
    assert client.execute_batch([read(key) for key in range(6)]) == ["ok"] * 6


# --------------------------------------------------------------------------
# Satellite 3: FaultPlan.fate draws whole fates atomically.
# --------------------------------------------------------------------------


def _fates_match_serial(seed: int, draws_per_thread: int = 3000,
                        n_threads: int = 4) -> bool:
    kwargs = dict(seed=seed, loss=0.25, duplication=0.4)

    serial = FaultPlan(**kwargs)
    expected = Counter(
        serial.fate(0, 1)
        for _ in range(draws_per_thread * n_threads))

    shared = FaultPlan(**kwargs)
    results = [[] for _ in range(n_threads)]
    barrier = threading.Barrier(n_threads)

    def draw(out):
        barrier.wait()
        for _ in range(draws_per_thread):
            out.append(shared.fate(0, 1))

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)  # force aggressive interleaving
    try:
        threads = [threading.Thread(target=draw, args=(out,))
                   for out in results]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
    finally:
        sys.setswitchinterval(old_interval)

    observed = Counter(fate for out in results for fate in out)
    return observed == expected


def test_concurrent_sender_fates_match_serial_run():
    # Whole fates are drawn under the lock, so the RNG stream is consumed
    # in fate-sized chunks: the multiset of fates (copies AND exact delays)
    # equals a serial run with the same seed, whatever the interleaving.
    # Three independent trials: the unlocked code survives one trial of
    # this size only by freak scheduling, never three.
    for seed in (42, 43, 44):
        assert _fates_match_serial(seed), (
            f"threaded fate multiset diverged from the serial run "
            f"(seed {seed}); fates are not drawn atomically")


def test_fate_lossless_plan_single_copy():
    plan = FaultPlan(seed=1)
    fate = plan.fate(0, 1)
    assert fate.copies == 1
    assert len(fate.delays) == 1


# --------------------------------------------------------------------------
# Satellite 4: fired timers are pruned from ThreadedTransport._timers.
# --------------------------------------------------------------------------


def test_fired_timers_are_pruned():
    plan = FaultPlan(seed=3, min_delay=0.001, max_delay=0.01)
    transport = ThreadedTransport(2, plan)
    try:
        n_messages = 50
        for index in range(n_messages):
            transport.send(0, 1, ("msg", index))
        inbox = transport.inbox(1)
        received = [inbox.get(timeout=5) for _ in range(n_messages)]
        assert len(received) == n_messages

        # Delivery happens before pruning in the timer callback, so give
        # the last callback a moment to finish its bookkeeping.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and transport._timers:
            time.sleep(0.005)
        assert transport._timers == [], (
            f"{len(transport._timers)} fired timers still retained")
    finally:
        transport.close()


# --------------------------------------------------------------------------
# Satellite 5: compare-and-set is reference CAS in both runtimes.
# --------------------------------------------------------------------------


class _AlwaysEqual:
    """Distinct instances that compare (and hash) equal."""

    def __eq__(self, other):
        return isinstance(other, _AlwaysEqual)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return 17


def _threaded_cell(initial):
    return ThreadedRuntime().atomic(initial)


def _sim_cell(initial):
    return SimRuntime(Simulator()).atomic(initial)


@pytest.mark.parametrize("make_cell", [_threaded_cell, _sim_cell],
                         ids=["threaded", "sim"])
def test_cas_requires_identity_not_equality(make_cell):
    original, impostor = _AlwaysEqual(), _AlwaysEqual()
    assert original == impostor and original is not impostor
    cell = make_cell(original)
    assert not cell.compare_and_set(impostor, "stolen"), (
        "CAS succeeded against an equal-but-distinct expected value")
    assert cell.value is original
    assert cell.compare_and_set(original, "advanced")
    assert cell.value == "advanced"


@pytest.mark.parametrize("make_cell", [_threaded_cell, _sim_cell],
                         ids=["threaded", "sim"])
def test_cas_interned_status_strings_still_work(make_cell):
    # The COS algorithms CAS module-level status constants; identity
    # semantics must keep the happy path working.
    waiting, ready = "wtg", "rdy"
    cell = make_cell(waiting)
    assert cell.compare_and_set(waiting, ready)
    assert not cell.compare_and_set(waiting, ready)
    assert cell.value is ready


# --------------------------------------------------------------------------
# Satellite 2: checkpoint quiesce uses the monotonic clock.
# --------------------------------------------------------------------------


class SlowService(Service):
    """Takes a fixed real-time delay per command; trivial state."""

    def __init__(self, delay: float):
        self._delay = delay
        self._conflicts = ReadWriteConflicts()
        self._executed = 0

    def execute(self, command):
        time.sleep(self._delay)
        self._executed += 1
        return self._executed

    @property
    def conflicts(self):
        return self._conflicts

    def snapshot(self):
        return self._executed

    def restore(self, snapshot):
        self._executed = snapshot


def test_checkpoint_quiesce_survives_wall_clock_steps(monkeypatch):
    replica = ParallelReplica(0, SlowService(0.25), workers=2)
    replica.start()
    try:
        replica.on_deliver(0, Command("slow", writes=True))
        # Every wall-clock read leaps another hour forward (an NTP step,
        # or a VM resume).  The pre-fix deadline was wall-clock based and
        # fired immediately; quiescing must depend only on monotonic time.
        real_time = time.time
        leaps = [0.0]

        def leaping_clock():
            leaps[0] += 3600.0
            return real_time() + leaps[0]

        monkeypatch.setattr(time, "time", leaping_clock)
        checkpoint = replica.take_checkpoint(timeout=5.0)
        monkeypatch.undo()
        assert checkpoint.instance == 0
        assert checkpoint.state == 1  # the slow command finished first
    finally:
        monkeypatch.undo()
        replica.stop()


# --------------------------------------------------------------------------
# TimeSeries: samples sharing a virtual instant must not lose events.
# --------------------------------------------------------------------------


def _integrate(points, start=0.0):
    """Recover the event total from (time, rate) points."""
    total, last = 0.0, start
    for at, rate in points:
        total += rate * (at - last)
        last = at
    return total


def test_time_series_same_instant_sample_conserves_events():
    sim = Simulator()
    series = TimeSeries(sim)
    sim.schedule(1.0, lambda: series.sample(10))
    # Second sample at the SAME virtual instant, counter has moved on: the
    # pre-fix code overwrote the baseline and the 6 events vanished from
    # every later rate.
    sim.schedule(1.0, lambda: series.sample(16))
    sim.schedule(2.0, lambda: series.sample(20))
    sim.run()
    assert _integrate(series.points) == pytest.approx(20.0), (
        "events between same-instant samples were dropped")


def test_time_series_normal_sampling_unchanged():
    sim = Simulator()
    series = TimeSeries(sim)
    sim.schedule(1.0, lambda: series.sample(100))
    sim.schedule(3.0, lambda: series.sample(400))
    sim.run()
    assert series.points == [(1.0, pytest.approx(100.0)),
                             (3.0, pytest.approx(150.0))]


# --------------------------------------------------------------------------
# latency_stats: interpolated quantiles, validated against the stdlib.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 4, 5, 10, 37, 100, 101])
def test_latency_quantiles_match_statistics_inclusive(n):
    import random

    rng = random.Random(n)
    values = [rng.uniform(0.001, 2.0) for _ in range(n)]
    metrics = Metrics(Simulator())
    metrics.mark_warm()
    for value in values:
        metrics.record_latency(value)
    mean, median, p99 = metrics.latency_stats()
    assert mean == pytest.approx(statistics.fmean(values))
    assert median == pytest.approx(statistics.median(values))
    cuts = statistics.quantiles(values, n=100, method="inclusive")
    assert p99 == pytest.approx(cuts[98])


def test_even_sample_median_is_interpolated():
    metrics = Metrics(Simulator())
    metrics.mark_warm()
    metrics.record_latency(1.0)
    metrics.record_latency(3.0)
    _, median, p99 = metrics.latency_stats()
    assert median == pytest.approx(2.0)      # pre-fix: 3.0 (upper element)
    assert 1.0 < p99 < 3.0                   # pre-fix: an endpoint


# --------------------------------------------------------------------------
# TcpTransport.start: failed starts must not leak the loop thread.
# --------------------------------------------------------------------------


def test_tcp_transport_bind_conflict_cleans_up_loop_thread():
    from repro.net.config import free_port

    addresses = {0: ("127.0.0.1", free_port())}
    first = TcpTransport(0, addresses).start()
    second = TcpTransport(0, addresses)  # same endpoint: bind must fail
    try:
        with pytest.raises(ConfigurationError):
            second.start()
        second._thread.join(timeout=5)
        assert not second._thread.is_alive(), (
            "bind failure leaked a live loop thread")
        assert second._loop.is_closed(), (
            "bind failure leaked an open event loop")
        assert second.closed
        second.close()  # idempotent after a failed start
    finally:
        first.close()


# --------------------------------------------------------------------------
# _flatten_commands: clear TypeError instead of infinite recursion.
# --------------------------------------------------------------------------


def test_flatten_commands_rejects_strings():
    # ``"abc"`` iterates to strings forever; pre-fix this was a
    # RecursionError deep inside the scheduler.
    with pytest.raises(TypeError, match="Command"):
        list(_flatten_commands("abc"))


def test_flatten_commands_rejects_bytes_and_scalars():
    with pytest.raises(TypeError, match="Command"):
        list(_flatten_commands(b"\x00\x01"))
    with pytest.raises(TypeError, match="Command"):
        list(_flatten_commands([Command("get"), 42]))


def test_flatten_commands_preserves_nested_order():
    a, b, c = Command("a"), Command("b"), Command("c")
    assert list(_flatten_commands([a, (b, [c])])) == [a, b, c]
    assert list(_flatten_commands(a)) == [a]


# --------------------------------------------------------------------------
# MpDispatcher._await: a reply racing the deadline is a reply, not a crash.
# --------------------------------------------------------------------------


def _dispatcher(n_shards: int = 1) -> MpDispatcher:
    """Dispatcher with in-memory plumbing only — no worker processes.

    The constructor is cheap (processes spawn in ``start()``), so unit
    tests can poke ``_await`` / ``_collector_loop`` directly.
    """
    return MpDispatcher("kv", {}, n_shards, MpEngineConfig())


class TestAwaitTimeoutRace:

    def test_fulfilled_slot_wins_over_timed_out_wait(self):
        dispatcher = _dispatcher()
        dispatcher._started = True
        slot = _Slot(0)
        slot.value = "late-but-valid"
        slot.event.set()
        # Simulate the race: the wait call reports expiry even though the
        # collector filled the slot (the flag was set between the deadline
        # and wait()'s return — exactly what a loaded box produces).
        slot.event.wait = lambda timeout=None: False
        dispatcher._pending[7] = slot
        assert dispatcher._await(7, shard=0, timeout=0.01) == "late-but-valid"
        assert dispatcher._crashed is None, (
            "a delivered reply must never poison the engine")
        assert 7 not in dispatcher._pending

    def test_genuine_timeout_still_poisons(self):
        dispatcher = _dispatcher()
        dispatcher._started = True
        dispatcher._pending[9] = _Slot(0)  # never fulfilled
        with pytest.raises(ShardCrashed):
            dispatcher._await(9, shard=0, timeout=0.01)
        assert isinstance(dispatcher._crashed, ShardCrashed)


# --------------------------------------------------------------------------
# MpDispatcher._collector_loop: broken reply pipe must not hot-spin.
# --------------------------------------------------------------------------


class _BrokenQueue:
    """A reply queue whose pipe has died: every get raises instantly."""

    def __init__(self, exc_type):
        self._exc_type = exc_type
        self.calls = 0

    def get(self, timeout=None):
        self.calls += 1
        raise self._exc_type("simulated broken reply pipe")


class TestCollectorBrokenPipe:

    @pytest.mark.parametrize("exc_type", [OSError, EOFError])
    def test_poisons_and_exits_after_repeated_failures(self, exc_type):
        dispatcher = _dispatcher()
        broken = _BrokenQueue(exc_type)
        dispatcher._reply_queue = broken
        thread = threading.Thread(target=dispatcher._collector_loop,
                                  daemon=True)
        thread.start()
        thread.join(timeout=10)
        # Pre-fix the loop re-raised into get() forever: never exits, and
        # broken.calls climbs unboundedly (a pegged core).
        assert not thread.is_alive(), "collector hot-spun on a broken pipe"
        assert isinstance(dispatcher._crashed, ShardCrashed)
        assert "reply queue" in str(dispatcher._crashed)
        assert broken.calls == _REPLY_FAILURE_LIMIT, (
            f"expected exactly {_REPLY_FAILURE_LIMIT} bounded attempts, "
            f"saw {broken.calls}")

    def test_broken_pipe_fails_outstanding_requests(self):
        dispatcher = _dispatcher()
        dispatcher._reply_queue = _BrokenQueue(OSError)
        slot = _Slot(0)
        dispatcher._pending[3] = slot
        thread = threading.Thread(target=dispatcher._collector_loop,
                                  daemon=True)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert slot.event.is_set(), (
            "poisoning must wake threads parked in _await")
        assert isinstance(slot.error, ShardCrashed)

    def test_clean_close_still_exits_quietly(self):
        dispatcher = _dispatcher()
        broken = _BrokenQueue(OSError)
        dispatcher._reply_queue = broken
        dispatcher._closing.set()  # shutdown already in progress
        dispatcher._collector_loop()  # must return on the first failure
        assert dispatcher._crashed is None, (
            "a closing dispatcher's dead queue is not a crash")
        assert broken.calls == 1


# --------------------------------------------------------------------------
# make_cos: a non-decomposable relation names the scheduler you asked for.
# --------------------------------------------------------------------------


class TestFootprintSchedulerError:

    @pytest.mark.parametrize("name", ["indexed", "early", "early-batched"])
    def test_names_the_requested_scheduler_and_alternatives(self, name):
        from repro.core import PredicateConflicts, make_cos

        opaque = PredicateConflicts(lambda a, b: True)
        with pytest.raises(ValueError) as excinfo:
            make_cos(name, ThreadedRuntime(), opaque)
        message = str(excinfo.value)
        assert f"the {name!r} scheduler requires" in message
        assert "PredicateConflicts" in message
        assert "supports_footprint" in message
        # Every pairwise alternative is offered; no footprint scheduler is.
        for alternative in ("coarse-grained", "fine-grained", "lock-free"):
            assert alternative in message
        assert "'indexed'" not in message.split("scheduler requires")[1]

    def test_decomposable_relation_passes_the_gate(self):
        from repro.core import make_cos

        cos = make_cos("early", ThreadedRuntime(), ReadWriteConflicts())
        assert cos.schedule().describe()["policy"] == "static"


# --------------------------------------------------------------------------
# Span keys: colliding process-local uids must not merge traces.
# --------------------------------------------------------------------------


def test_span_keys_survive_uid_collisions_across_clients():
    # Two *different* commands stamped with the same uid — exactly what
    # two client processes (each minting uids from 0) produce after their
    # commands cross the wire.  Pre-fix the span log keyed by uid and
    # merged both lives into one bogus trace.
    from repro.obs import MetricsRegistry

    alice = Command("contains", (1,), writes=False,
                    client_id="alice", request_id=1, uid=777)
    bob = Command("contains", (2,), writes=False,
                  client_id="bob", request_id=1, uid=777)
    registry = MetricsRegistry(trace=True)
    replica = ParallelReplica(0, SlowService(0.0), workers=2,
                              registry=registry)
    replica.start()
    try:
        replica.on_deliver(0, alice)
        replica.on_deliver(1, bob)
        deadline = time.monotonic() + 5
        while (registry.counter("replica_executed_total").value < 2
               and time.monotonic() < deadline):
            time.sleep(0.01)
    finally:
        replica.stop()
    spans = registry.spans.spans()
    assert "alice#1" in spans and "bob#1" in spans
    assert 777 not in spans, "span log fell back to the colliding uid"
    for key in ("alice#1", "bob#1"):
        for stage in ("delivered", "scheduled", "executing", "responded"):
            assert stage in spans[key], f"{key} missing stage {stage}"


# --------------------------------------------------------------------------
# Step-down liveness: pending payloads must chase the new leader.
# --------------------------------------------------------------------------


class TestStepDownDrainsPending:

    def test_deposed_node_reforwards_stranded_payloads(self):
        # pipeline=1, batch_size=1: the second submit is parked in
        # ``pending`` while the first instance is in flight.  When a
        # higher ballot deposes the node, nothing used to re-forward the
        # parked payload — the protocol grew drain_pending_forwards, but
        # no adapter called it, so live clusters still leaked commands
        # until the client timed out and retried.
        transport = ThreadedTransport(3, FaultPlan(min_delay=0, max_delay=0))
        protocol = MultiPaxos(0, 3, pipeline=1, batch_size=1)
        node = ThreadedNode(0, protocol, transport, lambda inst, payload: None)
        node.start()
        try:
            node.submit("proposed")
            node.submit("stranded")
            deadline = time.monotonic() + 5
            while not protocol.pending and time.monotonic() < deadline:
                time.sleep(0.005)
            assert list(protocol.pending) == ["stranded"]
            # Node 1 starts an election with a higher ballot; node 0 steps
            # down on the Prepare and must hand "stranded" to the new hint.
            transport.send(1, 0, Prepare((5, 1)))
            inbox = transport.inbox(1)
            forwarded = []
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    _, msg = inbox.get(timeout=0.1)
                except queue.Empty:
                    continue
                if isinstance(msg, Forward):
                    forwarded.append(msg.payload)
                    break
            assert forwarded == ["stranded"], (
                "step-down stranded a pending payload: nothing forwarded "
                "it to the new leader")
        finally:
            node.stop()
            node.join(5.0)
            transport.close()


# --------------------------------------------------------------------------
# Forward routing: stale circular hints must not relay forever.
# --------------------------------------------------------------------------


class TestForwardHopBudget:

    @staticmethod
    def _follower(node_id: int, hint: int) -> MultiPaxos:
        node = MultiPaxos(node_id, 5)
        # Observing a higher-ballot Prepare from ``hint`` both cancels any
        # leadership and points leader_hint() at that node.
        node.on_message(hint, Prepare((7, hint)))
        assert not node.is_leader and node.leader_hint() == hint
        return node

    def test_circular_hints_terminate_within_hop_budget(self):
        # 0 -> 1 -> 2 -> 0: every relay target is itself a non-leader
        # pointing at the next one.  Pre-fix (no hop budget) the Forward
        # orbited these three nodes forever, burning bandwidth and never
        # landing the payload anywhere.
        nodes = {
            0: self._follower(0, 1),
            1: self._follower(1, 2),
            2: self._follower(2, 0),
        }
        src, current, msg = 4, 0, Forward("orbit-me")
        hops = 0
        while True:
            actions = nodes[current].on_message(src, msg)
            forwards = [a for a in actions
                        if isinstance(getattr(a, "msg", None), Forward)]
            if not forwards:
                break
            (action,) = forwards
            src, current, msg = current, action.dst, action.msg
            hops += 1
            assert hops <= FORWARD_HOP_LIMIT + len(nodes), (
                "Forward relayed past the hop budget — circular stale "
                "hints would orbit forever")
        stranded = [payload
                    for node in nodes.values()
                    for payload in node.pending]
        assert stranded == ["orbit-me"], (
            "hop-exhausted Forward must queue locally, not vanish")


# --------------------------------------------------------------------------
# Codec strictness: non-finite floats and bool frame sources.
# --------------------------------------------------------------------------


def _codecs():
    from repro.net import bincodec, codec
    return [pytest.param(codec, id="json"),
            pytest.param(bincodec, id="binary")]


class TestCodecStrictness:

    @pytest.mark.parametrize("mod", _codecs())
    @pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                       float("-inf")])
    def test_non_finite_floats_rejected_on_encode(self, mod, value):
        from repro.net.codec import CodecError

        # Pre-fix json.dumps emitted bare NaN/Infinity tokens — frames the
        # decoder (or any strict JSON peer) could not parse back.
        with pytest.raises(CodecError):
            mod.dumps(value)
        with pytest.raises(CodecError):
            mod.dumps((1, {"x": value}))

    def test_json_decoder_rejects_non_finite_tokens(self):
        from repro.net.codec import CodecError, loads

        for wire in (b"NaN", b"Infinity", b"[1, -Infinity]"):
            with pytest.raises(CodecError):
                loads(wire)

    @pytest.mark.parametrize("mod", _codecs())
    def test_bool_frame_src_rejected_on_encode(self, mod):
        from repro.net.codec import CodecError

        # bool is an int subclass: a True src used to slip through and
        # arrive as node id 1 on the wire, silently misrouting replies.
        with pytest.raises(CodecError):
            mod.encode_frame(True, "payload")

    def test_json_bool_frame_src_rejected_on_decode(self):
        from repro.net.codec import CodecError, decode_frame

        with pytest.raises(CodecError):
            decode_frame(b'[true, "payload"]')


# --------------------------------------------------------------------------
# _poison must reconcile the mp_queue_depth gauges.
# --------------------------------------------------------------------------


class TestPoisonGaugeReconciliation:

    def test_poison_returns_queue_depth_gauges_to_zero(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        dispatcher = MpDispatcher("kv", {}, 2, MpEngineConfig(), registry)
        dispatcher._started = True
        # In-memory request queues: no worker ever answers, so wait()
        # times out and poisons every outstanding slot.
        dispatcher._request_queues = [queue.Queue(), queue.Queue()]
        first = dispatcher.submit(0, "exec", read(1))
        dispatcher.submit(1, "exec", read(2))
        dispatcher.submit_many(0, [read(3), read(4)])
        gauge_0 = registry.gauge("mp_queue_depth", shard="0")
        gauge_1 = registry.gauge("mp_queue_depth", shard="1")
        assert gauge_0.value == 3 and gauge_1.value == 1
        with pytest.raises(ShardCrashed):
            dispatcher.wait(first, 0, timeout=0.05)
        # Pre-fix _poison failed the waiters but never decremented the
        # gauges, so a crashed engine reported phantom queue depth forever.
        assert gauge_0.value == 0, "shard 0 gauge stuck after poison"
        assert gauge_1.value == 0, "shard 1 gauge stuck after poison"


# --------------------------------------------------------------------------
# Hint-change drain: never-leader nodes must not strand exhausted Forwards.
# --------------------------------------------------------------------------


class TestHintChangeDrainsPending:

    def test_follower_reforwards_on_observed_hint_change(self):
        # A hop-exhausted Forward parks its payload in a *never-leader*
        # follower's ``pending``.  Pre-fix only the was-leader -> follower
        # transition drained that queue, so on a node that never led the
        # payload sat there until the client timed out: learning a new
        # leader hint must drain it too.
        transport = ThreadedTransport(5, FaultPlan(min_delay=0, max_delay=0))
        protocol = MultiPaxos(3, 5)
        node = ThreadedNode(3, protocol, transport, lambda inst, payload: None)
        node.start()
        try:
            # Hint moves to 1, then an exhausted Forward arrives and parks.
            transport.send(1, 3, Prepare((7, 1)))
            transport.send(4, 3, Forward("parked", FORWARD_HOP_LIMIT))
            deadline = time.monotonic() + 5
            while not protocol.pending and time.monotonic() < deadline:
                time.sleep(0.005)
            assert list(protocol.pending) == ["parked"]
            # Node 2 campaigns: node 3's observed hint flips 1 -> 2, which
            # must re-forward "parked" toward the new hint.
            transport.send(2, 3, Prepare((9, 2)))
            inbox = transport.inbox(2)
            forwarded = []
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    _, msg = inbox.get(timeout=0.1)
                except queue.Empty:
                    continue
                if isinstance(msg, Forward):
                    forwarded.append(msg)
                    break
            assert [m.payload for m in forwarded] == ["parked"], (
                "hint change left a hop-exhausted payload stranded at a "
                "never-leader follower")
        finally:
            node.stop()
            node.join(5.0)
            transport.close()


# --------------------------------------------------------------------------
# Drained Forwards must keep their consumed hop budget.
# --------------------------------------------------------------------------


class TestDrainKeepsHopBudget:

    def test_drained_forward_carries_remaining_budget(self):
        # Pre-fix drain_pending_forwards re-emitted ``Forward(payload)``
        # with hops=0: under circular stale hints each drain handed the
        # payload a fresh budget, defeating FORWARD_HOP_LIMIT — three
        # churning followers could orbit it forever.
        follower = MultiPaxos(3, 5)
        follower.on_message(1, Prepare((7, 1)))          # hint -> 1
        follower.on_message(4, Forward("p", FORWARD_HOP_LIMIT))
        assert list(follower.pending) == ["p"]           # budget exhausted
        follower.on_message(2, Prepare((9, 2)))          # hint -> 2
        actions = follower.drain_pending_forwards()
        forwards = [a for a in actions
                    if isinstance(getattr(a, "msg", None), Forward)]
        assert len(forwards) == 1 and forwards[0].dst == 2
        assert forwards[0].msg.hops == FORWARD_HOP_LIMIT, (
            "drain reset the hop budget: re-forwarded payloads would "
            "orbit circular hints forever")
        assert not follower.pending and not follower._pending_hops


# --------------------------------------------------------------------------
# Catch-up replies must be chunked, not one giant frame.
# --------------------------------------------------------------------------


class TestCatchupChunking:

    def test_long_suffix_is_served_in_bounded_chunks(self):
        from repro.broadcast.messages import (
            Accepted,
            CatchupReply,
            CatchupRequest,
        )
        from repro.broadcast.paxos import CATCHUP_CHUNK

        total = 3 * CATCHUP_CHUNK + 57          # several chunks + remainder
        leader = MultiPaxos(0, 3, batch_size=1, pipeline=total)
        for index in range(total):
            leader.submit(f"v{index}")
        # One cumulative ack decides the whole range at once.
        leader.on_message(1, Accepted((0, 0), total - 1, total - 1))
        assert leader.next_deliver == total
        # A blank replica pulls the history.  Pre-fix the first reply
        # packed all ``total`` instances into one frame — beyond frame
        # caps and drop-oldest queues, that reply just vanished.
        follower = MultiPaxos(1, 3)
        request = CatchupRequest(0)
        replies = 0
        while True:
            actions = leader.on_message(1, request)
            reply = next(a.msg for a in actions
                         if isinstance(a.msg, CatchupReply))
            assert len(reply.decided) <= CATCHUP_CHUNK, (
                "catch-up reply exceeds the per-frame chunk cap")
            replies += 1
            follow_up = [
                a.msg for a in follower.on_message(0, reply)
                if isinstance(getattr(a, "msg", None), CatchupRequest)
            ]
            if not follow_up:
                break
            (request,) = follow_up
            assert request.from_instance == follower.next_deliver
        assert follower.next_deliver == total
        assert replies == -(-total // CATCHUP_CHUNK)  # ceil division


# --------------------------------------------------------------------------
# Accepted entries (and their stable-store keys) must be pruned on learn.
# --------------------------------------------------------------------------


class TestAcceptedPruning:

    def test_decided_instances_leave_accepted_and_store(self):
        from repro.broadcast.messages import Accept, Accepted
        from repro.broadcast.storage import InMemoryStableStore

        total = 200
        backing = {}
        leader = MultiPaxos(0, 3, batch_size=1, pipeline=total,
                            stable_store=InMemoryStableStore(backing))
        for index in range(total):
            leader.submit(f"v{index}")
        assert len(leader.accepted) == total     # all in flight
        leader.on_message(1, Accepted((0, 0), total - 1, total - 1))
        # Pre-fix every decided instance kept its accepted entry and its
        # ("accepted", i) store key forever — both grew with history, not
        # with the in-flight window.
        assert leader.accepted == {}, "accepted map grew with history"
        stale = [key for key in backing
                 if isinstance(key, tuple) and key[0] == "accepted"]
        assert stale == [], "stable store kept pruned accepted keys"

    def test_follower_prunes_as_the_commit_frontier_advances(self):
        from repro.broadcast.messages import Accept

        total = 64
        follower = MultiPaxos(1, 3)
        for index in range(total):
            follower.on_message(0, Accept((0, 0), index, (f"v{index}",)))
        assert len(follower.accepted) == total
        # The next Accept carries the leader's commit frontier covering
        # everything so far; learning must prune the covered entries.
        follower.on_message(
            0, Accept((0, 0), total, ("tail",), total - 1))
        assert follower.next_deliver == total
        assert set(follower.accepted) == {total}, (
            "follower kept accepted entries for learned instances")


# --------------------------------------------------------------------------
# Sequencer failover: the epoch guard keeps stamped slots collision-free.
# --------------------------------------------------------------------------


class TestSequencerEpochGuard:

    def test_deposed_stamp_neither_delivers_nor_shadows_the_restamp(self):
        from repro.broadcast import SequencerBroadcast, SequencerStamp
        from repro.broadcast.messages import Deliver, NewEpoch

        def log(actions):
            return [(a.instance, a.payload) for a in actions
                    if isinstance(a, Deliver)]

        follower = SequencerBroadcast(2, 3)
        assert log(follower.on_message(
            0, SequencerStamp(0, "a", epoch=0))) == [(0, "a")]
        # Node 1 takes over at base 1; node 0 is presumed fail-stop but a
        # stamp it issued *before* dying is still in flight.
        follower.on_message(1, NewEpoch(1, 1, 1))
        stale = follower.on_message(0, SequencerStamp(1, "stale", epoch=0))
        fresh = follower.on_message(1, SequencerStamp(1, "fresh", epoch=1))
        # Pre-fix (no epoch on stamps, no guard) the stale stamp claimed
        # position 1, delivered "stale", and the re-stamp was dropped as
        # a duplicate: one payload double-delivered cluster-wide, the
        # other lost, and replicas that saw the races in the other order
        # diverged.  The guard voids the deposed stamp instead.
        assert log(stale) == [], "deposed sequencer's stamp delivered"
        assert log(fresh) == [(1, "fresh")], (
            "new epoch's re-stamp was shadowed by the stale one")


# --------------------------------------------------------------------------
# GroupMerger: late duplicates past the recent window must be absorbed.
# --------------------------------------------------------------------------


class TestMergerReleasedXidAbsorption:

    @staticmethod
    def _marker(xid, value):
        from repro.groups.messages import Rendezvous

        return Rendezvous(xid, (0, 1),
                          Command("add-all", (value,), writes=True))

    def test_late_duplicate_after_window_rollover_is_absorbed(self):
        from repro.groups.merge import GroupMerger

        merger = GroupMerger(2, xid_window=2)
        assert merger.offer(0, self._marker("x", 1)) == []
        assert [e.xid for e in merger.offer(1, self._marker("x", 1))] == ["x"]
        # Two newer markers roll "x" out of the bounded recent window.
        for xid in ("y", "z"):
            merger.offer(0, self._marker(xid, 2))
            merger.offer(1, self._marker(xid, 2))
        assert "x" not in merger._recent[0]
        # A straggler copy of "x" (client retransmission that raced its
        # own success) finally surfaces in group 0.  Pre-fix it was
        # queued as a live hold — group 0's stream blocked forever
        # waiting for partner copies that will never be re-offered.
        assert merger.offer(0, self._marker("x", 1)) == []
        assert merger.held() == 0, (
            "late duplicate of a released rendezvous queued as a hold")
        assert merger.pending(0) == 0
        # The stream still flows.
        released = merger.offer(0, Command("add", (9,), writes=True))
        assert [e.command.op for e in released] == ["add"]

    def test_in_window_duplicates_still_use_the_fast_path(self):
        from repro.groups.merge import GroupMerger

        merger = GroupMerger(2, xid_window=8)
        merger.offer(0, self._marker("x", 1))
        merger.offer(1, self._marker("x", 1))
        assert merger.offer(0, self._marker("x", 1)) == []
        assert merger.held() == 0 and merger.emitted_cross == 1


# --------------------------------------------------------------------------
# Speculative local reads: provisional state must stay invisible.
# --------------------------------------------------------------------------


class TestSpeculativeDirtyReads:

    def test_dirty_log_read_is_deferred_not_answered_inline(self):
        from repro.apps.kvstore import KVStoreService
        from repro.spec.replica import SpeculativeReplica

        responses = []
        replica = SpeculativeReplica(
            0, KVStoreService(), workers=2,
            on_response=lambda c, r, _rid: responses.append((c, r)))
        replica.start()
        try:
            write = KVStoreService.put("k", "guess", client_id="w",
                                       request_id=1)
            replica.on_optimistic(write)
            deadline = time.monotonic() + 5
            while (replica._engine.unexecuted
                   or not replica.speculation_stats["speculated"]):
                assert time.monotonic() < deadline
                time.sleep(0.005)
            replica.on_local_read(KVStoreService.get("k", client_id="r",
                                                     request_id=1))
            # Pre-fix the committed frontiers looked idle (speculation
            # bumps neither counter), so the read ran inline and returned
            # "guess" — a value the conservative order may roll back.
            assert responses == [], (
                "local read answered from provisional speculative state")
            replica.on_deliver(0, write)
            deadline = time.monotonic() + 5
            while len(responses) < 2:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert {c.client_id: r for c, r in responses}["r"] == "guess"
        finally:
            replica.stop()

    def test_idle_inline_claim_is_atomic_under_contention(self):
        # The base fast path: the idleness check and the inline-slot
        # claim happen in one _state_lock critical section.  Hammer reads
        # against concurrent deliveries and verify the counter pair never
        # tears: every command (read or write) is answered exactly once
        # and the pipeline quiesces cleanly.
        replica = ParallelReplica(0, SlowService(0.0), workers=2)
        replica.start()
        answered = []
        replica._on_response = lambda c, r, _rid: answered.append(c)
        stop = threading.Event()
        errors = []

        def deliver_writes():
            try:
                for instance in range(150):
                    replica.on_deliver(
                        instance, Command("w", (instance,), writes=True,
                                          client_id="writer",
                                          request_id=instance + 1))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
            finally:
                stop.set()

        def read_loop():
            rid = 0
            while not stop.is_set():
                rid += 1
                try:
                    replica.on_local_read(
                        Command("r", (), writes=False, client_id="reader",
                                request_id=rid))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)
                    return
            return rid

        try:
            threads = [threading.Thread(target=deliver_writes)]
            threads += [threading.Thread(target=read_loop)
                        for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
            assert errors == []
            # Quiesce: a torn claim would leave _scheduled != _executed
            # and the checkpoint path would hang on a phantom command.
            checkpoint = replica.take_checkpoint(timeout=10.0)
            assert checkpoint.instance == 149
            writes = [c for c in answered if c.client_id == "writer"]
            assert len(writes) == 150
        finally:
            replica.stop()


# --------------------------------------------------------------------------
# WorkloadGenerator: cross-partition keys are distinct, 0% cross is free.
# --------------------------------------------------------------------------


class TestCrossPartitionKeyDistinctness:

    def test_keys_and_partitions_distinct_even_under_heavy_skew(self):
        from repro.core.command import stable_hash
        from repro.workload.generator import WorkloadGenerator

        # Zipf s=3 over 8 keys piles most draws on key 0: the pre-fix
        # draw (no partition-coverage acceptance test) repeated keys
        # routinely here.
        generator = WorkloadGenerator(
            write_pct=100.0, key_space=8, seed=5, key_dist="zipf",
            zipf_s=3.0, cross_partition_fraction=1.0, n_partitions=4,
            keys_per_cross=3)
        for command in generator.commands(300):
            keys = command.args
            assert len(set(keys)) == len(keys), (
                f"duplicate keys in cross-partition command: {keys}")
            partitions = {stable_hash(key) % 4 for key in keys}
            assert len(partitions) == len(keys), (
                f"cross-partition command does not span distinct "
                f"partitions: {keys}")

    def test_zero_cross_fraction_stream_is_bit_identical(self):
        from repro.workload.generator import WorkloadGenerator

        def stream(**kwargs):
            generator = WorkloadGenerator(write_pct=30.0, key_space=100,
                                          seed=11, client_id="c", **kwargs)
            return [(c.op, c.args, c.request_id, c.writes)
                    for c in generator.commands(400)]

        # Wiring the cross-partition machinery up but dialling it to 0%
        # must not perturb the seeded draw: benchmarks comparing against
        # historical runs rely on stream stability.
        assert stream() == stream(cross_partition_fraction=0.0,
                                  n_partitions=4)
