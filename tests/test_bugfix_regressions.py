"""Regression tests for the client/transport/replica bug fixes.

Each test fails against the pre-fix code:

- **per-attempt client deadline** (smr/client.py): a slow replica dripping
  one response per interval used to reset the wait window on every
  response, stretching one attempt to ``len(batch) * timeout``;
- **FaultPlan.fate thread safety** (broadcast/transport.py): concurrent
  senders used to interleave RNG draws *inside* one fate, so the stream
  was no longer consumed in fate-sized chunks and the sampled fates
  diverged from a serial run with the same seed;
- **ThreadedTransport timer leak** (broadcast/transport.py): fired timers
  stayed in ``_timers`` until ``close()``, growing without bound;
- **reference CAS** (core/threaded.py, sim/sync.py): ``==`` comparison let
  a compare-and-set succeed against a distinct-but-equal object, which
  breaks the lock-free graph's identity-based transitions;
- **monotonic quiesce deadline** (smr/replica.py): a wall-clock step while
  quiescing fired the checkpoint deadline early (or postponed it forever).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter

import pytest

from repro.broadcast.transport import FaultPlan, ThreadedTransport
from repro.core.command import Command, ReadWriteConflicts
from repro.core.threaded import ThreadedRuntime
from repro.sim import SimRuntime, Simulator
from repro.smr.client import Client, ClientTimeout
from repro.smr.replica import ParallelReplica
from repro.smr.service import Service


def read(key):
    return Command("contains", (key,), writes=False)


# --------------------------------------------------------------------------
# Satellite 1: one deadline per attempt, not one timeout per response.
# --------------------------------------------------------------------------


class DripServer:
    """A slow replica answering a batch one response per ``interval``."""

    def __init__(self, interval: float):
        self.interval = interval
        self.client = None

    def submit(self, payload, contact):
        threading.Thread(
            target=self._drip, args=(payload,), daemon=True).start()

    def _drip(self, payload):
        for command in payload:
            time.sleep(self.interval)
            self.client.deliver_response(command, "ok")


def test_slow_responder_bounded_by_one_attempt_timeout():
    # 6 commands arriving every 0.2s against a 0.5s timeout: each get()
    # individually returns within the window, so the pre-fix code (full
    # timeout per get) happily waits ~1.2s and succeeds.  The attempt
    # budget is 0.5s total, so this must time out — and promptly.
    server = DripServer(interval=0.2)
    client = Client("slow", server.submit, n_replicas=3,
                    timeout=0.5, max_retries=0)
    server.client = client
    started = time.monotonic()
    with pytest.raises(ClientTimeout):
        client.execute_batch([read(key) for key in range(6)])
    elapsed = time.monotonic() - started
    assert elapsed < 1.0, (
        f"attempt stretched to {elapsed:.2f}s; the deadline must cap the "
        f"whole attempt, not each response")


def test_fast_batch_still_completes_within_one_attempt():
    class InstantServer(DripServer):
        def _drip(self, payload):
            for command in payload:
                self.client.deliver_response(command, "ok")

    server = InstantServer(interval=0.0)
    client = Client("fast", server.submit, n_replicas=3,
                    timeout=0.5, max_retries=0)
    server.client = client
    assert client.execute_batch([read(key) for key in range(6)]) == ["ok"] * 6


# --------------------------------------------------------------------------
# Satellite 3: FaultPlan.fate draws whole fates atomically.
# --------------------------------------------------------------------------


def _fates_match_serial(seed: int, draws_per_thread: int = 3000,
                        n_threads: int = 4) -> bool:
    kwargs = dict(seed=seed, loss=0.25, duplication=0.4)

    serial = FaultPlan(**kwargs)
    expected = Counter(
        serial.fate(0, 1)
        for _ in range(draws_per_thread * n_threads))

    shared = FaultPlan(**kwargs)
    results = [[] for _ in range(n_threads)]
    barrier = threading.Barrier(n_threads)

    def draw(out):
        barrier.wait()
        for _ in range(draws_per_thread):
            out.append(shared.fate(0, 1))

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)  # force aggressive interleaving
    try:
        threads = [threading.Thread(target=draw, args=(out,))
                   for out in results]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
    finally:
        sys.setswitchinterval(old_interval)

    observed = Counter(fate for out in results for fate in out)
    return observed == expected


def test_concurrent_sender_fates_match_serial_run():
    # Whole fates are drawn under the lock, so the RNG stream is consumed
    # in fate-sized chunks: the multiset of fates (copies AND exact delays)
    # equals a serial run with the same seed, whatever the interleaving.
    # Three independent trials: the unlocked code survives one trial of
    # this size only by freak scheduling, never three.
    for seed in (42, 43, 44):
        assert _fates_match_serial(seed), (
            f"threaded fate multiset diverged from the serial run "
            f"(seed {seed}); fates are not drawn atomically")


def test_fate_lossless_plan_single_copy():
    plan = FaultPlan(seed=1)
    fate = plan.fate(0, 1)
    assert fate.copies == 1
    assert len(fate.delays) == 1


# --------------------------------------------------------------------------
# Satellite 4: fired timers are pruned from ThreadedTransport._timers.
# --------------------------------------------------------------------------


def test_fired_timers_are_pruned():
    plan = FaultPlan(seed=3, min_delay=0.001, max_delay=0.01)
    transport = ThreadedTransport(2, plan)
    try:
        n_messages = 50
        for index in range(n_messages):
            transport.send(0, 1, ("msg", index))
        inbox = transport.inbox(1)
        received = [inbox.get(timeout=5) for _ in range(n_messages)]
        assert len(received) == n_messages

        # Delivery happens before pruning in the timer callback, so give
        # the last callback a moment to finish its bookkeeping.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and transport._timers:
            time.sleep(0.005)
        assert transport._timers == [], (
            f"{len(transport._timers)} fired timers still retained")
    finally:
        transport.close()


# --------------------------------------------------------------------------
# Satellite 5: compare-and-set is reference CAS in both runtimes.
# --------------------------------------------------------------------------


class _AlwaysEqual:
    """Distinct instances that compare (and hash) equal."""

    def __eq__(self, other):
        return isinstance(other, _AlwaysEqual)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return 17


def _threaded_cell(initial):
    return ThreadedRuntime().atomic(initial)


def _sim_cell(initial):
    return SimRuntime(Simulator()).atomic(initial)


@pytest.mark.parametrize("make_cell", [_threaded_cell, _sim_cell],
                         ids=["threaded", "sim"])
def test_cas_requires_identity_not_equality(make_cell):
    original, impostor = _AlwaysEqual(), _AlwaysEqual()
    assert original == impostor and original is not impostor
    cell = make_cell(original)
    assert not cell.compare_and_set(impostor, "stolen"), (
        "CAS succeeded against an equal-but-distinct expected value")
    assert cell.value is original
    assert cell.compare_and_set(original, "advanced")
    assert cell.value == "advanced"


@pytest.mark.parametrize("make_cell", [_threaded_cell, _sim_cell],
                         ids=["threaded", "sim"])
def test_cas_interned_status_strings_still_work(make_cell):
    # The COS algorithms CAS module-level status constants; identity
    # semantics must keep the happy path working.
    waiting, ready = "wtg", "rdy"
    cell = make_cell(waiting)
    assert cell.compare_and_set(waiting, ready)
    assert not cell.compare_and_set(waiting, ready)
    assert cell.value is ready


# --------------------------------------------------------------------------
# Satellite 2: checkpoint quiesce uses the monotonic clock.
# --------------------------------------------------------------------------


class SlowService(Service):
    """Takes a fixed real-time delay per command; trivial state."""

    def __init__(self, delay: float):
        self._delay = delay
        self._conflicts = ReadWriteConflicts()
        self._executed = 0

    def execute(self, command):
        time.sleep(self._delay)
        self._executed += 1
        return self._executed

    @property
    def conflicts(self):
        return self._conflicts

    def snapshot(self):
        return self._executed

    def restore(self, snapshot):
        self._executed = snapshot


def test_checkpoint_quiesce_survives_wall_clock_steps(monkeypatch):
    replica = ParallelReplica(0, SlowService(0.25), workers=2)
    replica.start()
    try:
        replica.on_deliver(0, Command("slow", writes=True))
        # Every wall-clock read leaps another hour forward (an NTP step,
        # or a VM resume).  The pre-fix deadline was wall-clock based and
        # fired immediately; quiescing must depend only on monotonic time.
        real_time = time.time
        leaps = [0.0]

        def leaping_clock():
            leaps[0] += 3600.0
            return real_time() + leaps[0]

        monkeypatch.setattr(time, "time", leaping_clock)
        checkpoint = replica.take_checkpoint(timeout=5.0)
        monkeypatch.undo()
        assert checkpoint.instance == 0
        assert checkpoint.state == 1  # the slow command finished first
    finally:
        monkeypatch.undo()
        replica.stop()
