"""End-to-end observability over the TCP deployment.

Covers the CI ``tcp-cluster-smoke`` contract: a live replica serves
``/metrics`` with the core series present, the series move monotonically
under load, JSON snapshots land on disk, and the loopback bench's
``--trace`` path produces a span log plus a Fig. 6-shaped point.
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.net.bench import NetBenchConfig, run_net_bench
from repro.net.cluster import TcpCluster
from repro.obs import SnapshotWriter, MetricsRegistry
from repro.workload import WorkloadGenerator

#: Series every replica process must expose (the CI smoke asserts these).
CORE_SERIES = (
    "replica_scheduled_total",
    "replica_executed_total",
    "cos_inserts_total",
    "cos_removes_total",
    "cos_graph_size",
    "net_frames_received_total",
)


def _scrape(address) -> str:
    host, port = address
    with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=5) as response:
        assert response.status == 200
        return response.read().decode()


def _series_value(text: str, name: str) -> float:
    """Sum every sample of ``name`` (labelled series add up)."""
    total, found = 0.0, False
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        match = re.match(rf"{re.escape(name)}(?:{{[^}}]*}})? (\S+)$", line)
        if match:
            total += float(match.group(1))
            found = True
    if not found:
        raise AssertionError(f"series {name} absent from exposition")
    return total


@pytest.fixture(scope="module")
def cluster():
    with TcpCluster(n_replicas=3, metrics=True, workers=2) as running:
        yield running


class TestMetricsEndpoint:
    def test_scrape_core_series_present_and_monotone(self, cluster):
        address = cluster.servers[0].metrics_address
        assert address is not None
        client = cluster.client()
        commands = WorkloadGenerator(30.0, key_space=100, seed=9).commands(8)
        client.execute_batch(commands)
        cluster.wait_converged(8)

        before = _scrape(address)
        for name in CORE_SERIES:
            _series_value(before, name)  # raises when absent
        executed_before = _series_value(before, "replica_executed_total")
        assert executed_before >= 8

        more = WorkloadGenerator(30.0, key_space=100, seed=10).commands(8)
        client.execute_batch(more)
        cluster.wait_converged(16)
        after = _scrape(address)
        assert (_series_value(after, "replica_executed_total")
                >= executed_before + 8)
        assert (_series_value(after, "replica_scheduled_total")
                >= _series_value(before, "replica_scheduled_total"))
        assert (_series_value(after, "net_frames_received_total")
                >= _series_value(before, "net_frames_received_total"))

    def test_every_replica_serves_metrics(self, cluster):
        for server in cluster.servers:
            text = _scrape(server.metrics_address)
            assert "replica_executed_total" in text

    def test_json_snapshot_endpoint(self, cluster):
        host, port = cluster.servers[0].metrics_address
        with urllib.request.urlopen(
                f"http://{host}:{port}/metrics.json", timeout=5) as response:
            snapshot = json.loads(response.read())
        assert snapshot["replica_executed_total"]["kind"] == "counter"
        assert "cos_graph_size" in snapshot

    def test_unknown_path_is_404(self, cluster):
        host, port = cluster.servers[0].metrics_address
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=5)
        assert info.value.code == 404


class TestSnapshotWriter:
    def test_periodic_file_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("executed").inc(5)
        path = tmp_path / "metrics.json"
        writer = SnapshotWriter(registry, str(path), interval=0.05).start()
        try:
            deadline = 100
            while not path.exists() and deadline:
                deadline -= 1
                time.sleep(0.02)
        finally:
            writer.stop()
        data = json.loads(path.read_text())
        assert data["executed"]["value"] == 5

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SnapshotWriter(MetricsRegistry(), "x.json", interval=0.0)


class TestBenchTrace:
    def test_bench_trace_produces_spans_and_fig6_point(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        artifact_path = tmp_path / "bench.json"
        config = NetBenchConfig(
            n_replicas=1, n_clients=1, batch=4, ops=16,
            cos_algorithm="lock-free", workers=2,
            trace=True, trace_path=str(trace_path),
        )
        result = run_net_bench(config, out_path=str(artifact_path))

        assert result.executed == 16
        assert result.errors == 0
        # Fig. 6 shape: one (throughput, latency) coordinate.
        assert result.fig6_point["throughput_kops"] > 0
        assert result.fig6_point["latency_ms"] > 0
        # Latency histogram on the shared fixed-bucket ladder.
        assert result.latency_histogram["count"] == 4  # 4 batches
        assert result.latency_histogram["buckets"][-1]["le"] == "+Inf"
        # Span log: submitted + responded per command.
        assert result.trace_events == 2 * 16
        lines = [json.loads(line)
                 for line in trace_path.read_text().splitlines()]
        assert len(lines) == 2 * 16
        stages = {line["stage"] for line in lines}
        assert stages == {"submitted", "responded"}
        # Per-command round trips are recoverable and positive.
        by_uid = {}
        for line in lines:
            by_uid.setdefault(line["uid"], {})[line["stage"]] = line["t"]
        assert all(span["responded"] >= span["submitted"]
                   for span in by_uid.values())
        # The JSON artifact embeds the same observability fields.
        artifact = json.loads(artifact_path.read_text())
        assert artifact["trace_events"] == 32
        assert artifact["fig6_point"]["throughput_kops"] > 0


class TestSpanJoin:
    def test_client_and_replica_spans_join_on_stable_key(self):
        """Client- and replica-side spans share ``client_id#request_id``.

        The join is the whole point of stable span keys: a client process
        records ``submitted``/``responded`` while each replica process
        records ``delivered``..``responded``, and the two logs must line
        up per command without sharing a uid counter.
        """
        with TcpCluster(n_replicas=1, workers=2, trace=True) as cluster:
            client = cluster.client(client_id="joiner")
            base = client.requests_issued
            commands = WorkloadGenerator(
                50.0, key_space=10, seed=5).commands(6)
            client.execute_batch(commands)
            cluster.wait_converged(6)
            replica_spans = cluster.servers[0].registry.spans.spans()

        expected = {f"joiner#{base + 1 + offset}" for offset in range(6)}
        assert expected <= set(replica_spans), (
            f"replica trace missing keys: {expected - set(replica_spans)}")
        for key in expected:
            stages = replica_spans[key]
            for stage in ("delivered", "scheduled", "ready",
                          "executing", "responded"):
                assert stage in stages, f"{key} missing stage {stage}"
            assert (stages["delivered"] <= stages["scheduled"]
                    <= stages["executing"] <= stages["responded"])
        # No span leaked under a bare process-local uid: every key of a
        # client-stamped command is the wire-stable string form.
        assert all(isinstance(key, str) and "#" in key
                   for key in replica_spans)
