"""COS algorithms under the simulator's finest interleaving ('effect' mode).

Every effect is its own event here, so the deterministic scheduler explores
much finer interleavings than quantum mode — a complementary check to the
real-thread stress tests, with perfectly reproducible schedules.
"""

import pytest

from conftest import GRAPH_ALGORITHMS, make_mixed_commands
from repro.core import ReadWriteConflicts, make_cos
from repro.core.effects import Work
from repro.core.runtime import EffectGen
from repro.sim import SimRuntime, Simulator, structure_costs


def run_sim_workload(algorithm, commands, n_workers, preemption="effect",
                     max_size=16, seed_jitter=False):
    """Algorithm 1 in the simulator; returns per-command (start, finish)."""
    sim = Simulator()
    runtime = SimRuntime(sim, preemption=preemption)
    conflicts = ReadWriteConflicts()
    cos = make_cos(algorithm, runtime, conflicts, max_size=max_size,
                   costs=structure_costs())
    start = {}
    finish = {}
    order = []
    remaining = {"count": len(commands)}

    def scheduler() -> EffectGen:
        for command in commands:
            yield Work(1e-7)
            yield from cos.insert(command)

    def worker(index: int) -> EffectGen:
        while remaining["count"] > 0:
            handle = yield from cos.get()
            command = cos.command_of(handle)
            start[command.uid] = sim.now
            order.append(command.uid)
            yield Work(1e-6 * (1 + index % 3))
            finish[command.uid] = sim.now
            yield from cos.remove(handle)
            remaining["count"] -= 1

    runtime.spawn(scheduler(), "scheduler")
    for index in range(n_workers):
        runtime.spawn(worker(index), f"worker-{index}")
    sim.run(until=120.0)
    return start, finish, order


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
@pytest.mark.parametrize("n_workers", (1, 3, 8))
def test_exactly_once_fine_interleaving(algorithm, n_workers):
    commands = make_mixed_commands(120, write_every=6)
    start, finish, order = run_sim_workload(algorithm, commands, n_workers)
    assert len(start) == len(commands)
    assert len(order) == len(set(order))


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_conflict_order_fine_interleaving(algorithm):
    commands = make_mixed_commands(100, write_every=4)
    start, finish, _ = run_sim_workload(algorithm, commands, 4)
    conflicts = ReadWriteConflicts()
    for i, first in enumerate(commands):
        for second in commands[i + 1:]:
            if conflicts.conflicts(first, second):
                assert finish[first.uid] <= start[second.uid], (
                    f"{first} overlapped {second}")


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_write_only_is_sequential(algorithm):
    commands = make_mixed_commands(60, write_every=1)
    _, _, order = run_sim_workload(algorithm, commands, 6)
    assert order == [command.uid for command in commands]


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_deterministic_replay(algorithm):
    """Two identical sim runs produce identical execution orders."""
    commands = make_mixed_commands(80, write_every=5)
    first = run_sim_workload(algorithm, commands, 4)
    second = run_sim_workload(algorithm, commands, 4)
    assert first == second


@pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
def test_quantum_mode_same_invariants(algorithm):
    commands = make_mixed_commands(100, write_every=3)
    start, finish, order = run_sim_workload(
        algorithm, commands, 4, preemption="quantum")
    assert len(order) == len(commands)
    conflicts = ReadWriteConflicts()
    for i, first in enumerate(commands):
        for second in commands[i + 1:]:
            if conflicts.conflicts(first, second):
                assert finish[first.uid] <= start[second.uid]
