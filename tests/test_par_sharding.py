"""Sharding contract tests: routing, fragments, and round-trips.

The multiprocess engine's correctness rests on the
:class:`~repro.smr.service.ShardableService` contract: routing is pure and
cross-process stable, per-shard fragments partition the full snapshot, and
``split → restore_shard → snapshot_shard → recompose`` reproduces exactly
the unsharded snapshot for every application service.
"""

import pytest

from repro.apps import SERVICES, build_service
from repro.apps.bank import BankService
from repro.apps.kvstore import KVStoreService
from repro.apps.linked_list import LinkedListService
from repro.core.command import Command, stable_hash
from repro.errors import ConfigurationError
from repro.par.shard import ShardRouter
from repro.smr.service import ALL_SHARDS, ShardableService
from repro.workload import READ_OP, WRITE_OP


class TestStableHash:
    def test_ints_map_to_themselves(self):
        assert [stable_hash(i) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_bools_are_ints(self):
        assert stable_hash(True) == 1
        assert stable_hash(False) == 0

    def test_str_and_bytes_agree_with_crc(self):
        import zlib
        assert stable_hash("key") == zlib.crc32(b"key")
        assert stable_hash(b"key") == zlib.crc32(b"key")

    def test_spreads_string_keys(self):
        shards = {stable_hash(f"key-{i}") % 4 for i in range(100)}
        assert shards == {0, 1, 2, 3}


def _populated(name):
    """Build each registered service with a little state on board."""
    if name == "kv":
        service = build_service("kv")
        for i in range(40):
            service.execute(KVStoreService.put(f"k{i}", i))
    elif name == "bank":
        service = build_service("bank")
        for i in range(20):
            service.execute(BankService.deposit(f"acct-{i}", 10 * i))
    else:
        service = build_service(name, initial_size=30)
        service.execute(Command(WRITE_OP, (1000,)))
    return service


class TestFragmentRoundTrips:
    """Satellite: checkpoint/restore through the sharded path, all apps."""

    @pytest.mark.parametrize("name", SERVICES)
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_fragments_recompose_to_unsharded_snapshot(self, name, n_shards):
        service = _populated(name)
        full = service.snapshot()
        fragments = [service.snapshot_shard(shard, n_shards)
                     for shard in range(n_shards)]
        assert service.recompose_snapshots(fragments) == full

    @pytest.mark.parametrize("name", SERVICES)
    def test_split_then_restore_shard_round_trip(self, name):
        n_shards = 3
        source = _populated(name)
        full = source.snapshot()
        fragments = build_service(name).split_snapshot(full, n_shards)
        rebuilt = []
        for shard, fragment in enumerate(fragments):
            worker = _populated(name)  # stale state must be replaced
            worker.restore_shard(shard, n_shards, fragment)
            rebuilt.append(worker.snapshot_shard(shard, n_shards))
        assert source.recompose_snapshots(rebuilt) == full

    @pytest.mark.parametrize("name", SERVICES)
    def test_fragments_are_disjoint(self, name):
        service = _populated(name)
        n_shards = 4
        sizes = []
        for shard in range(n_shards):
            fragment = service.snapshot_shard(shard, n_shards)
            sizes.append(len(fragment))
        total = len(service.snapshot())
        assert sum(sizes) == total

    def test_worker_trim_idiom(self):
        """restore_shard(snapshot_shard(...)) leaves exactly one shard."""
        service = _populated("kv")
        keys = set(service.snapshot())
        service.restore_shard(1, 3, service.snapshot_shard(1, 3))
        kept = set(service.snapshot())
        assert kept == {k for k in keys if stable_hash(k) % 3 == 1}


class TestRouting:
    def test_kv_routes_by_key(self):
        router = ShardRouter(build_service("kv"), 4)
        shards = router.route(KVStoreService.put("alpha", 1))
        assert shards == (stable_hash("alpha") % 4,)
        assert router.route(KVStoreService.get("alpha")) == shards

    def test_bank_transfer_spans_both_account_shards(self):
        service = build_service("bank")
        router = ShardRouter(service, 8)
        command = BankService.transfer("acct-a", "acct-b", 1)
        shards = router.route(command)
        expected = tuple(sorted({stable_hash("acct-a") % 8,
                                 stable_hash("acct-b") % 8}))
        assert shards == expected
        assert router.is_barrier(shards) == (len(expected) > 1)

    def test_linked_list_is_always_single_shard(self):
        router = ShardRouter(build_service("linked-list"), 4)
        for key in range(50):
            read = router.route(Command(READ_OP, (key,), writes=False))
            write = router.route(Command(WRITE_OP, (key,)))
            assert read == write == (key % 4,)

    def test_all_shards_sentinel_routes_everywhere(self):
        class Sweeping(ShardableService):
            def execute(self, command):
                return None

            @property
            def conflicts(self):
                raise NotImplementedError

            def snapshot(self):
                return {}

            def restore(self, snapshot):
                pass

            def shards_of(self, command, n_shards):
                return ALL_SHARDS

            def snapshot_shard(self, shard, n_shards):
                return {}

            def recompose_snapshots(self, fragments):
                return {}

        router = ShardRouter(Sweeping(), 3)
        assert router.route(Command("sweep")) == (0, 1, 2)

    def test_out_of_range_shard_is_a_service_bug(self):
        class Broken(KVStoreService):
            def shards_of(self, command, n_shards):
                return (n_shards,)

        router = ShardRouter(Broken(), 2)
        with pytest.raises(ConfigurationError):
            router.route(KVStoreService.get("x"))

    def test_rejects_non_shardable_service(self):
        class Plain:
            pass

        with pytest.raises(ConfigurationError):
            ShardRouter(Plain(), 2)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(build_service("kv"), 0)


class TestRegistry:
    def test_all_services_are_shardable(self):
        for name in SERVICES:
            assert isinstance(build_service(name), ShardableService)

    def test_kwargs_override(self):
        assert len(build_service("linked-list", initial_size=7)) == 7

    def test_unknown_service(self):
        with pytest.raises(ConfigurationError):
            build_service("nope")
