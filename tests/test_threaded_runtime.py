"""Tests for the threaded runtime: primitives and the effect trampoline."""

import threading

import pytest

from repro.core import ThreadedRuntime
from repro.core.effects import (
    Acquire,
    Cas,
    Down,
    Load,
    Release,
    Signal,
    Store,
    Up,
    Wait,
    Work,
)


@pytest.fixture
def runtime():
    return ThreadedRuntime()


class TestTrampoline:
    def test_returns_generator_value(self, runtime):
        def gen():
            yield Work(0.0)
            return 42

        assert runtime.run(gen()) == 42

    def test_sends_effect_results_back(self, runtime):
        cell = runtime.atomic(7)

        def gen():
            value = yield Load(cell)
            yield Store(cell, value + 1)
            return (yield Load(cell))

        assert runtime.run(gen()) == 8

    def test_yield_from_composition(self, runtime):
        cell = runtime.atomic(0)

        def inner():
            yield Store(cell, 1)
            return 10

        def outer():
            value = yield from inner()
            return value + (yield Load(cell))

        assert runtime.run(outer()) == 11

    def test_work_is_noop(self, runtime):
        def gen():
            yield Work(1e9)  # would be 30 years if it actually slept
            return "done"

        assert runtime.run(gen()) == "done"


class TestAtomic:
    def test_cas_success(self, runtime):
        cell = runtime.atomic("a")

        def gen():
            return (yield Cas(cell, "a", "b"))

        assert runtime.run(gen()) is True
        assert cell.value == "b"

    def test_cas_failure_leaves_value(self, runtime):
        cell = runtime.atomic("a")

        def gen():
            return (yield Cas(cell, "x", "b"))

        assert runtime.run(gen()) is False
        assert cell.value == "a"

    def test_cas_compares_by_equality(self, runtime):
        cell = runtime.atomic((1, 2))

        def gen():
            return (yield Cas(cell, (1, 2), (3,)))

        assert runtime.run(gen()) is True

    def test_cas_is_atomic_under_contention(self, runtime):
        cell = runtime.atomic(0)
        winners = []

        def contender(tag):
            def gen():
                return (yield Cas(cell, 0, tag))

            if runtime.run(gen()):
                winners.append(tag)

        threads = [threading.Thread(target=contender, args=(i,))
                   for i in range(1, 17)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1
        assert cell.value == winners[0]


class TestMutexAndSemaphore:
    def test_mutex_mutual_exclusion(self, runtime):
        mutex = runtime.mutex()
        counter = {"value": 0}

        def gen():
            for _ in range(500):
                yield Acquire(mutex)
                current = counter["value"]
                counter["value"] = current + 1
                yield Release(mutex)

        threads = [threading.Thread(target=lambda: runtime.run(gen()))
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 2000

    def test_semaphore_counts(self, runtime):
        sem = runtime.semaphore(0)
        results = []

        def consumer():
            def gen():
                yield Down(sem)
                return True

            results.append(runtime.run(gen()))

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        thread.join(timeout=0.1)
        assert thread.is_alive()  # blocked at zero

        def producer():
            yield Up(sem, 1)

        runtime.run(producer())
        thread.join(timeout=5)
        assert results == [True]

    def test_semaphore_bulk_up(self, runtime):
        sem = runtime.semaphore(0)

        def produce():
            yield Up(sem, 3)

        runtime.run(produce())
        for _ in range(3):
            def consume():
                yield Down(sem)

            runtime.run(consume())  # must not block
        assert not sem.sem.acquire(blocking=False)


class TestConditionVariable:
    def test_wait_signal(self, runtime):
        mutex = runtime.mutex()
        cond = runtime.condition(mutex)
        state = {"ready": False, "observed": False}

        def waiter():
            def gen():
                yield Acquire(mutex)
                while not state["ready"]:
                    yield Wait(cond)
                state["observed"] = True
                yield Release(mutex)

            runtime.run(gen())

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        thread.join(timeout=0.1)
        assert thread.is_alive()

        def signaller():
            yield Acquire(mutex)
            state["ready"] = True
            yield Signal(cond)
            yield Release(mutex)

        runtime.run(signaller())
        thread.join(timeout=5)
        assert state["observed"]
