"""Snapshot determinism across interpreters and execution orders.

Replicas compare and ship snapshots as serialized bytes (checkpoint
transfer, state-sync digests), so every service's ``snapshot()`` must be
*canonical*: the serialized form depends only on the observable state,
never on insertion order, set/dict iteration order, or the interpreter's
``PYTHONHASHSEED``.  These tests execute the same logical workload

- in permuted (non-conflicting) command orders inside one process, and
- in child interpreters launched with different ``PYTHONHASHSEED`` values,

and require byte-identical ``json.dumps`` output every time.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from repro.apps import SERVICES, build_service
from repro.apps.bank import BankService
from repro.apps.kvstore import KVStoreService
from repro.core.command import Command
from repro.workload import WRITE_OP

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

#: Deliberately hash-hostile keys: short strings whose builtin ``hash``
#: (and hence set/dict behaviour) varies with PYTHONHASHSEED.
KV_KEYS = [f"k{i}" for i in range(25)] + ["", "a", "aa", "bé"]


def _commands(name):
    """A fixed workload of pairwise non-conflicting writes per service."""
    if name == "kv":
        return [KVStoreService.put(key, i) for i, key in enumerate(KV_KEYS)]
    if name == "bank":
        return [BankService.deposit(f"acct-{i}", 7 * i) for i in range(20)]
    return [Command(WRITE_OP, (value,)) for value in range(40, 80)]


def _snapshot_bytes(name, order_seed):
    """Execute the workload in a shuffled order; serialize the snapshot."""
    service = build_service(
        name, **({"initial_size": 10} if name == "linked-list" else {}))
    commands = _commands(name)
    random.Random(order_seed).shuffle(commands)
    for command in commands:
        service.execute(command)
    return json.dumps(service.snapshot(), sort_keys=False)


def _child_snapshot(name, order_seed, hash_seed):
    """Run _snapshot_bytes in a fresh interpreter with a given hash seed."""
    env = dict(os.environ,
               PYTHONHASHSEED=str(hash_seed),
               PYTHONPATH=SRC_DIR)
    tests_dir = os.path.dirname(os.path.abspath(__file__))
    script = (
        "import sys; sys.path.insert(0, sys.argv[3]); "
        "from test_snapshot_determinism import _snapshot_bytes; "
        "print(_snapshot_bytes(sys.argv[1], int(sys.argv[2])))")
    proc = subprocess.run(
        [sys.executable, "-c", script, name, str(order_seed), tests_dir],
        env=env, capture_output=True, text=True, timeout=60, check=True)
    return proc.stdout.strip()


class TestExecutionOrderIndependence:
    @pytest.mark.parametrize("name", SERVICES)
    def test_permuted_orders_serialize_identically(self, name):
        reference = _snapshot_bytes(name, order_seed=0)
        for order_seed in range(1, 6):
            assert _snapshot_bytes(name, order_seed) == reference

    @pytest.mark.parametrize("name", SERVICES)
    def test_sharded_round_trip_serializes_identically(self, name):
        """Checkpoint through the sharded path is byte-stable too."""
        service = build_service(
            name, **({"initial_size": 10} if name == "linked-list" else {}))
        for command in _commands(name):
            service.execute(command)
        reference = json.dumps(service.snapshot())
        fragments = service.split_snapshot(service.snapshot(), 3)
        recomposed = service.recompose_snapshots(fragments)
        assert json.dumps(recomposed) == reference


class TestHashSeedIndependence:
    """The property the paper's deployment depends on: two replicas built
    by different interpreter launches (different hash seeds) must agree
    byte-for-byte after the same logical history."""

    @pytest.mark.parametrize("name", SERVICES)
    def test_snapshots_agree_across_hash_seeds(self, name):
        outputs = {
            _child_snapshot(name, order_seed=seed % 3, hash_seed=hash_seed)
            for seed, hash_seed in enumerate((0, 1, 31337))
        }
        assert len(outputs) == 1, (
            f"{name} snapshot serialization varies with PYTHONHASHSEED "
            f"or execution order: {outputs}")

    def test_child_matches_parent(self):
        # Anchor the subprocess harness itself: same seed, same bytes.
        assert _child_snapshot("kv", 0, 0) == _snapshot_bytes("kv", 0)
