"""Multi-process deployment smoke tests.

These spawn one real interpreter per replica through the
:class:`~repro.net.supervisor.Supervisor` — the process-per-replica
deployment of docs/deployment.md — then crash one with SIGKILL and check
the cluster keeps serving.  This file is the CI cluster smoke job.
"""

import json

from repro.core.command import Command
from repro.net.bench import NetBenchConfig, run_net_bench
from repro.net.client import NetClient
from repro.net.config import loopback_config
from repro.net.supervisor import Supervisor


def write(key):
    return Command("add", (key,), writes=True)


def read(key):
    return Command("contains", (key,), writes=False)


def test_cluster_survives_replica_crash():
    config = loopback_config(n_replicas=3, client_timeout=3.0)
    with Supervisor(config) as supervisor:
        supervisor.wait_ready()
        assert sorted(supervisor.alive()) == [0, 1, 2]
        with NetClient("proc-smoke", config, timeout=3.0) as client:
            first = client.execute_batch([write(100 + key)
                                          for key in range(8)])
            assert first == [True] * 8

            supervisor.kill(2)  # SIGKILL: crash-stop, nothing flushed
            assert sorted(supervisor.alive()) == [0, 1]
            second = client.execute_batch([write(200 + key)
                                           for key in range(8)])
            assert second == [True] * 8

            supervisor.restart(2)
            assert sorted(supervisor.alive()) == [0, 1, 2]
            assert client.execute(write(300)) is True
            assert client.execute(read(207)) is True
    assert supervisor.alive() == []  # context exit tore the fleet down


def test_net_bench_writes_artifact(tmp_path):
    out = tmp_path / "net-bench.json"
    config = NetBenchConfig(n_replicas=3, n_clients=2, batch=4, ops=48,
                            client_timeout=3.0, seed=7)
    result = run_net_bench(config, out_path=str(out))
    assert result.executed == 48
    assert result.errors == 0
    assert result.throughput > 0

    data = json.loads(out.read_text())
    assert data["executed"] == 48
    assert data["throughput"] > 0
    assert data["crash_injected"] is False
