"""Unit and invariant tests for the unified observability layer (repro.obs).

The load-bearing invariant is at the bottom: observability must be
**zero-cost when disabled** and **schedule-neutral when enabled** — the
discrete-event figure runs produce bit-identical numbers with no registry,
and identical throughput/schedules with a live registry, because the
instrumentation never adds, removes, or reorders effects.
"""

from __future__ import annotations

import json
import statistics

import pytest

from repro.bench.harness import StandaloneConfig, run_standalone
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SpanLog,
    log_spaced_buckets,
    quantile,
    render_text,
)
from repro.sim import PROFILES, Metrics, Simulator
from repro.smr.sim_cluster import SimClusterConfig, run_sim_cluster

MODERATE = PROFILES["moderate"]


# ---------------------------------------------------------------- instruments


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("ops_total") is counter  # cached by key

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(7)
        assert gauge.value == 7

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("sent", peer="1").inc()
        registry.counter("sent", peer="2").inc(2)
        assert registry.counter("sent", peer="2").value == 2
        assert registry.series() == ['sent{peer="1"}', 'sent{peer="2"}']

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(0.5)
        text = json.dumps(registry.snapshot())
        assert '"a"' in text and '"b"' in text


class TestHistogram:
    def test_fixed_buckets_are_deterministic(self):
        # Every process derives the same ladder from integer exponents —
        # the property that makes cross-process aggregation exact.
        assert DEFAULT_BUCKETS == log_spaced_buckets()
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(100.0)
        assert len(DEFAULT_BUCKETS) == 25

    def test_observe_counts_and_sums(self):
        hist = MetricsRegistry().histogram("latency_seconds")
        for value in (1e-5, 1e-3, 1e-3, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(1e-5 + 2e-3 + 5.0)
        assert hist.mean == pytest.approx(hist.sum / 4)

    def test_quantile_within_bucket_resolution(self):
        hist = MetricsRegistry().histogram("h")
        for _ in range(100):
            hist.observe(0.01)
        estimate = hist.quantile(0.5)
        # One log-spaced bucket spans ~2.15x; the estimate lands inside
        # the bucket containing the true value.
        assert 0.01 / 2.2 <= estimate <= 0.01 * 2.2

    def test_quantile_empty_and_overflow(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.99) == 0.0
        hist.observe(1e9)  # beyond the last bound: overflow bucket
        assert hist.quantile(0.5) == DEFAULT_BUCKETS[-1]


class TestQuantileFunction:
    def test_matches_statistics_inclusive(self):
        import random

        rng = random.Random(5)
        values = sorted(rng.uniform(0, 10) for _ in range(23))
        cuts = statistics.quantiles(values, n=100, method="inclusive")
        for pct in (1, 25, 50, 75, 99):
            assert quantile(values, pct / 100) == pytest.approx(cuts[pct - 1])

    def test_degenerate_sizes(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([3.0], 0.99) == 3.0


# ---------------------------------------------------------------------- spans


class TestSpanLog:
    def test_stage_reconstruction_and_durations(self):
        clock = iter([1.0, 2.0, 5.0])
        log = SpanLog(lambda: next(clock))
        log.record(7, "delivered")
        log.record(7, "executing")
        log.record(7, "responded")
        spans = log.spans()
        assert spans[7] == {"delivered": 1.0, "executing": 2.0,
                            "responded": 5.0}
        assert log.durations("delivered", "responded") == [4.0]
        assert log.durations("executing", "responded") == [3.0]

    def test_bounded_drop_oldest(self):
        log = SpanLog(lambda: 0.0, capacity=3)
        for uid in range(5):
            log.record(uid, "delivered")
        assert [event[0] for event in log.events()] == [2, 3, 4]

    def test_explicit_timestamp_wins(self):
        log = SpanLog(lambda: 99.0)
        log.record(1, "submitted", at=1.5)
        assert log.events() == [(1, "submitted", 1.5)]

    def test_write_jsonl(self, tmp_path):
        log = SpanLog(lambda: 2.0)
        log.record(3, "responded")
        path = tmp_path / "trace.jsonl"
        assert log.write_jsonl(str(path)) == 1
        assert json.loads(path.read_text()) == {
            "uid": 3, "stage": "responded", "t": 2.0}


# ----------------------------------------------------------------- exposition


class TestRenderText:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("cos_inserts_total").inc(3)
        registry.gauge("cos_graph_size").set(2)
        registry.histogram("w", peer="1").observe(0.01)
        text = render_text(registry)
        assert "# TYPE cos_inserts_total counter" in text
        assert "cos_inserts_total 3" in text
        assert "cos_graph_size 2" in text
        assert '# TYPE w histogram' in text
        assert 'w_bucket{peer="1",le="+Inf"} 1' in text
        assert 'w_count{peer="1"} 1' in text

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(1e-6)   # first bucket
        hist.observe(50.0)   # near-last bucket
        text = render_text(registry)
        # The +Inf bucket must carry the full count (cumulative rendering).
        assert 'h_bucket{le="+Inf"} 2' in text


# -------------------------------------------------------------- null registry


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        null = NullRegistry()
        null.counter("a").inc()
        null.gauge("b").set(9)
        null.histogram("c").observe(1.0)
        null.span(1, "delivered")
        assert null.enabled is False
        assert null.series() == []
        assert null.snapshot() == {}
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.histogram("y")

    def test_metrics_defaults_to_null(self):
        metrics = Metrics(Simulator())
        metrics.incr("executed", 3)
        assert metrics.count("executed") == 3  # local path unaffected


# ----------------------------------------------- warm-up edge cases (Metrics)


class TestMetricsWarmupEdges:
    def test_latency_before_mark_warm_is_dropped_even_with_registry(self):
        registry = MetricsRegistry()
        metrics = Metrics(Simulator(), registry=registry)
        metrics.record_latency(9.0)  # warm-up: dropped everywhere
        assert metrics.latency_stats() == (0.0, 0.0, 0.0)
        assert registry.snapshot() == {}
        metrics.mark_warm()
        metrics.record_latency(0.5)
        assert registry.histogram("latency_seconds").count == 1

    def test_throughput_at_zero_elapsed_is_zero(self):
        metrics = Metrics(Simulator())
        metrics.mark_warm()     # sim.now is still 0.0
        metrics.incr("executed", 10)
        assert metrics.throughput("executed") == 0.0  # not a ZeroDivision

    def test_registry_mirror_counts_from_run_start(self):
        registry = MetricsRegistry()
        metrics = Metrics(Simulator(), registry=registry)
        metrics.incr("executed")
        metrics.mark_warm()
        metrics.incr("executed")
        assert registry.counter("executed").value == 2
        assert metrics.warm_count("executed") == 1


# ------------------------------------------- DES determinism (the invariant)

#: Pre-PR outputs of six Fig. 2-sized standalone runs, captured on the seed
#: commit before the observability layer existed.  With observability
#: disabled these must stay BIT-IDENTICAL: the instrumentation may not add,
#: remove, or reorder a single simulator event.
FIG2_GOLDEN = {
    ("coarse-grained", 2): (33582.98209633602, 918,
                            0.030375276930984647, 10496),
    ("coarse-grained", 4): (46904.90437808247, 918,
                            0.02183990373501264, 10752),
    ("fine-grained", 2): (18220.933172057397, 902,
                          0.055236158043028755, 75776),
    ("fine-grained", 4): (24744.575296236682, 900,
                          0.04059786354846769, 73216),
    ("lock-free", 2): (35784.96700488178, 914,
                       0.028560488368950223, 13056),
    ("lock-free", 4): (50010.83121216352, 909,
                       0.020465580407265947, 12800),
}


def _fig2_config(algorithm: str, workers: int) -> StandaloneConfig:
    return StandaloneConfig(algorithm=algorithm, workers=workers,
                            profile=MODERATE, write_pct=15.0, seed=7,
                            warm_ops=100, measure_ops=900,
                            max_virtual_time=10.0)


@pytest.mark.parametrize("algorithm,workers", sorted(FIG2_GOLDEN))
def test_fig2_series_bit_identical_with_obs_disabled(algorithm, workers):
    result = run_standalone(_fig2_config(algorithm, workers))
    golden = FIG2_GOLDEN[(algorithm, workers)]
    assert (result.throughput, result.executed,
            result.virtual_time, result.events) == golden


@pytest.mark.parametrize("algorithm", ["coarse-grained", "fine-grained",
                                       "lock-free"])
def test_enabled_registry_does_not_shift_standalone_des(algorithm):
    config = _fig2_config(algorithm, 4)
    baseline = run_standalone(config)
    registry = MetricsRegistry()
    observed = run_standalone(config, registry=registry)
    assert observed.throughput == baseline.throughput
    assert observed.executed == baseline.executed
    assert observed.virtual_time == baseline.virtual_time
    assert observed.events == baseline.events
    # ...and the registry actually recorded the structure's activity.
    assert registry.counter("cos_inserts_total").value > 0
    assert registry.counter("cos_gets_total").value > 0
    assert registry.counter("cos_removes_total").value > 0
    # The stop predicate fires at >= target, so in-flight workers can
    # push a few extra completions past it.
    assert registry.counter("executed").value >= (config.warm_ops
                                                  + config.measure_ops)
    assert registry.histogram("cos_ready_wait_seconds").count > 0


def test_enabled_registry_does_not_shift_sim_cluster_des():
    config = SimClusterConfig(
        algorithm="lock-free", workers=4, profile=MODERATE,
        write_pct=10.0, n_clients=20, client_batch=5, seed=3,
        warm_ops=50, measure_ops=300, max_virtual_time=20.0)
    baseline = run_sim_cluster(config)
    registry = MetricsRegistry()
    observed = run_sim_cluster(config, registry=registry)
    assert observed.throughput == baseline.throughput
    assert observed.latency_mean == baseline.latency_mean
    assert observed.latency_p99 == baseline.latency_p99
    assert observed.executed == baseline.executed
    assert observed.virtual_time == baseline.virtual_time
    assert observed.events == baseline.events
    assert registry.counter("cos_inserts_total").value > 0
    assert registry.histogram("latency_seconds").count > 0
    # The registry clock followed the virtual clock, so recorded wait
    # times sit at virtual-time scale (sub-second), not wall-time scale.
    assert registry.clock() == observed.virtual_time


# ------------------------------------------------- transport depth gauge


class TestTcpOutboxDepthGauge:
    """``net_outbox_depth`` must count the pump's in-flight frame.

    Regression: the pump used to set the gauge to ``qsize()`` right after
    popping a frame, so a down peer holding exactly one undelivered frame
    reported depth 0 while the pump retried it forever — the gauge went
    stale at the precise moment it mattered.
    """

    def _transport(self, registry, **kwargs):
        from repro.net.config import free_port
        from repro.net.transport import TcpTransport

        addresses = {
            0: ("127.0.0.1", free_port()),
            1: ("127.0.0.1", free_port()),  # nobody listens: peer is down
        }
        return TcpTransport(0, addresses, registry=registry,
                            backoff_base=0.05, seed=7, **kwargs).start()

    @staticmethod
    def _await_depth(gauge, expected, timeout=5.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if gauge.value == expected:
                return
            time.sleep(0.01)
        assert gauge.value == expected, (
            f"net_outbox_depth stuck at {gauge.value}, "
            f"expected {expected}")

    def test_depth_counts_in_flight_frame_while_peer_down(self):
        registry = MetricsRegistry()
        transport = self._transport(registry)
        try:
            gauge = registry.gauge("net_outbox_depth", peer="1")
            transport.send(0, 1, ("ping", 0))
            # Pre-fix the pump pops the frame and sets the gauge to the
            # now-empty queue's size: 0.  The frame is still undelivered.
            self._await_depth(gauge, 1)
            for index in range(2):
                transport.send(0, 1, ("ping", 1 + index))
            self._await_depth(gauge, 3)
        finally:
            transport.close()

    def test_depth_consistent_across_drop_oldest(self):
        # The exact split between dropped and retained frames depends on
        # whether the pump pops before the later sends land, so assert
        # the timing-independent conservation law instead: the peer is
        # down, nothing is ever delivered, hence every sent frame is
        # either counted by the depth gauge (queued or in flight) or by
        # the drop counter.  Pre-fix the in-hand frame is in neither.
        import time

        registry = MetricsRegistry()
        transport = self._transport(registry, queue_limit=2)
        try:
            gauge = registry.gauge("net_outbox_depth", peer="1")
            drops = registry.counter("net_outbox_drops_total", peer="1")
            for index in range(4):
                transport.send(0, 1, ("ping", index))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if gauge.value + drops.value == 4:
                    break
                time.sleep(0.01)
            assert gauge.value + drops.value == 4, (
                f"frames leaked from the accounting: depth {gauge.value} "
                f"+ drops {drops.value} != 4 sent")
            # queue capped at 2 + at most 1 in flight: something dropped.
            assert drops.value >= 1
        finally:
            transport.close()
