"""Unit tests of the cross-partition rendezvous merge rule.

:class:`~repro.groups.merge.GroupMerger` is the deterministic heart of the
partitioned deployment (docs/partitioning.md): every replica runs one, and
safety requires the released order to depend only on the groups' consensus
logs — never on how a replica interleaves the streams.  These tests pin
the single-stream FIFO rule, the hold-until-all-copies rendezvous rule,
the anchor-position tie-break, duplicate-marker absorption, and the
inspection/validation surface.  (Whole-cluster coverage lives in
test_groups_cluster.py; randomized coverage in test_groups_check.py.)
"""

from __future__ import annotations

import pytest

from repro.core.command import Command, MultiKeyedConflicts
from repro.errors import ConfigurationError, SimulationError
from repro.groups.merge import GroupMerger, SkipHoldMerger, command_key
from repro.groups.messages import Rendezvous, rendezvous_xid


def _cmd(key: int, seq: int, *more_keys: int) -> Command:
    keys = (key,) + more_keys
    return Command("add-all" if more_keys else "add", keys,
                   client_id="c", request_id=seq, writes=True)


def _marker(command: Command, groups) -> Rendezvous:
    return Rendezvous(rendezvous_xid(command), tuple(groups), command)


class TestSingles:
    def test_fifo_positions_per_group(self):
        merger = GroupMerger(2)
        first, second = _cmd(0, 1), _cmd(0, 2)
        out = merger.offer(0, first) + merger.offer(0, second)
        assert [e.command for e in out] == [first, second]
        assert [e.position for e in out] == [(0, 0), (0, 1)]
        assert not out[0].cross_partition

    def test_groups_emit_independently(self):
        merger = GroupMerger(2)
        a, b = _cmd(0, 1), _cmd(1, 2)
        assert merger.offer(1, b)[0].position == (1, 0)
        assert merger.offer(0, a)[0].position == (0, 0)
        assert merger.idle()


class TestRendezvous:
    def test_marker_holds_until_all_copies_arrive(self):
        merger = GroupMerger(2)
        cross = _cmd(0, 1, 1)
        marker = _marker(cross, (0, 1))
        assert merger.offer(0, marker) == []
        assert merger.held() and not merger.idle()
        out = merger.offer(1, marker)
        assert [e.command for e in out] == [cross]
        assert out[0].position == (0, 0)  # anchored in min(groups)
        assert out[0].cross_partition and out[0].xid == marker.xid
        assert merger.idle()

    def test_marker_blocks_later_items_of_its_group(self):
        merger = GroupMerger(2)
        cross = _cmd(0, 1, 1)
        marker = _marker(cross, (0, 1))
        single = _cmd(0, 2)
        assert merger.offer(0, marker) == []
        # The single sits behind the held marker: group-0 FIFO.
        assert merger.offer(0, single) == []
        out = merger.offer(1, marker)
        assert [e.command for e in out] == [cross, single]
        assert [e.position for e in out] == [(0, 0), (0, 1)]

    def test_positions_are_interleaving_independent(self):
        cross = _cmd(0, 1, 1)
        marker = _marker(cross, (0, 1))
        feeds = [
            [(0, _cmd(0, 2)), (0, marker), (1, marker), (1, _cmd(1, 3))],
            [(1, marker), (1, _cmd(1, 3)), (0, _cmd(0, 2)), (0, marker)],
        ]
        results = []
        for feed in feeds:
            merger = GroupMerger(2)
            for group, item in feed:
                merger.offer(group, item)
            assert merger.idle()
            results.append(merger.positions)
        assert results[0] == results[1]

    def test_duplicate_marker_copy_is_absorbed(self):
        # At-least-once clients can land one marker in a group's log
        # twice; the second copy must neither re-release nor wedge.
        merger = GroupMerger(2)
        cross = _cmd(0, 1, 1)
        marker = _marker(cross, (0, 1))
        merger.offer(0, marker)
        assert merger.offer(0, marker) == []  # dup before release
        assert len(merger.offer(1, marker)) == 1
        assert merger.offer(1, marker) == []  # dup after release
        follow = _cmd(1, 2)
        assert merger.offer(1, follow)[0].command is follow
        assert merger.idle()

    def test_cross_counter_and_history(self):
        conflicts = MultiKeyedConflicts()
        merger = GroupMerger(2, record_history=True, conflicts=conflicts)
        single = _cmd(0, 1)
        cross = _cmd(0, 2, 1)
        marker = _marker(cross, (0, 1))
        merger.offer(0, single)
        merger.offer(0, marker)
        merger.offer(1, marker)
        assert (merger.emitted, merger.emitted_cross) == (2, 1)
        key_history = merger.class_history[conflicts.footprint(single)[0][0]]
        assert key_history == [command_key(single), command_key(cross)]


class TestValidation:
    def test_group_out_of_range(self):
        with pytest.raises(ConfigurationError):
            GroupMerger(2).offer(2, _cmd(0, 1))

    def test_marker_offered_to_uninvolved_group(self):
        merger = GroupMerger(3)
        marker = _marker(_cmd(0, 1, 1), (0, 1))
        with pytest.raises(SimulationError):
            merger.offer(2, marker)

    def test_skip_hold_mutant_releases_early(self):
        # Sanity for the check harness's seeded bug: one copy is enough.
        merger = SkipHoldMerger(2)
        cross = _cmd(0, 1, 1)
        out = merger.offer(0, _marker(cross, (0, 1)))
        assert [e.command for e in out] == [cross]
