"""Self-validation of the groups-rendezvous checking harness.

Same bar as the lease harness's suite: the seeded ``groups-skip-hold``
mutant (release a rendezvous as soon as any one copy surfaces) must be
caught within a bounded schedule budget, its counterexample must shrink,
and the frozen replay file must reproduce the violation deterministically
— and dispatch correctly next to COS and lease replay files, which all
share the ``repro check --replay`` entry point.
"""

from __future__ import annotations

import json

import pytest

from repro.check.groups_rendezvous import (
    GROUPS_MUTANTS,
    GroupsCheckConfig,
    RendezvousHarness,
    load_groups_replay,
    replay_groups,
    run_groups_check,
    run_groups_schedule,
    save_groups_replay,
    shrink_groups,
)
from repro.check.paxos_lease import replay_harness_kind
from repro.errors import SimulationError

BUDGET = 200


def caught_report(seed: int = 0):
    config = GroupsCheckConfig(mutant="groups-skip-hold")
    return config, run_groups_check(config, max_schedules=BUDGET, seed=seed)


class TestMutantCatching:
    def test_skip_hold_is_caught_within_budget(self):
        _, report = caught_report()
        assert not report.ok, f"groups-skip-hold escaped {BUDGET} schedules"
        assert report.violation.kind in (
            "position-divergence", "class-divergence", "fifo-violation")
        assert report.schedules_explored <= BUDGET

    def test_catch_is_seed_robust(self):
        for seed in (1, 2, 3):
            config = GroupsCheckConfig(mutant="groups-skip-hold")
            report = run_groups_check(config, max_schedules=BUDGET,
                                      seed=seed,
                                      shrink_counterexamples=False)
            assert not report.ok, f"mutant escaped under seed {seed}"

    def test_clean_merger_survives_exploration(self):
        config = GroupsCheckConfig()
        report = run_groups_check(config, max_schedules=40)
        assert report.ok, report.describe()

    def test_unknown_mutant_is_rejected(self):
        with pytest.raises(ValueError, match="unknown groups mutant"):
            run_groups_check(GroupsCheckConfig(mutant="nope"),
                             max_schedules=1)


class TestShrinking:
    def test_counterexample_shrinks(self):
        config, report = caught_report()
        assert report.shrunk_decisions is not None
        assert len(report.shrunk_decisions) < len(report.decisions)
        # The shrunk schedule still violates on its own.
        violation = run_groups_schedule(config, report.shrunk_decisions)
        assert violation is not None

    def test_shrink_requires_a_violating_schedule(self):
        config = GroupsCheckConfig()
        with pytest.raises(SimulationError):
            shrink_groups(config, ["sp:0"])


class TestReplay:
    def test_replay_reproduces_the_shrunk_violation(self, tmp_path):
        config, report = caught_report()
        path = str(tmp_path / "groups-ce.json")
        save_groups_replay(path, config, report.shrunk_decisions,
                           report.violation)
        assert replay_harness_kind(path) == "groups-rendezvous"
        reproduced = replay_groups(path)
        assert reproduced is not None
        assert reproduced.kind == report.violation.kind
        assert reproduced.step == report.violation.step

    def test_replay_roundtrips_config_and_decisions(self, tmp_path):
        config, report = caught_report()
        path = str(tmp_path / "groups-ce.json")
        save_groups_replay(path, config, report.shrunk_decisions,
                           report.violation)
        loaded_config, decisions, violation = load_groups_replay(path)
        assert loaded_config == config
        assert decisions == report.shrunk_decisions
        assert violation.kind == report.violation.kind

    def test_fixed_implementation_no_longer_violates(self, tmp_path):
        # Replaying a mutant counterexample against the *fixed* merge rule
        # (mutant=None) must come back clean — the replay answers "is this
        # bug still there", not "was it ever".
        config, report = caught_report()
        fixed = GroupsCheckConfig()
        path = str(tmp_path / "groups-ce.json")
        save_groups_replay(path, fixed, report.shrunk_decisions,
                           report.violation)
        assert replay_groups(path) is None

    def test_foreign_replay_files_are_not_claimed(self, tmp_path):
        path = str(tmp_path / "cos-ce.json")
        with open(path, "w") as handle:
            json.dump({"version": 1, "config": {}, "decisions": [],
                       "violation": {"kind": "double-get", "message": "x",
                                     "step": 1}}, handle)
        assert replay_harness_kind(path) is None
        with pytest.raises(SimulationError):
            load_groups_replay(path)


class TestHarnessDeterminism:
    def test_schedules_replay_bit_for_bit(self):
        config, report = caught_report()
        first = run_groups_schedule(config, report.decisions)
        second = run_groups_schedule(config, report.decisions)
        assert (first.kind, first.step) == (second.kind, second.step)

    def test_out_of_range_decisions_are_deterministic_noops(self):
        # Decision arguments are taken modulo the config's bounds and
        # exhausted advances do nothing: any recorded list replays.
        config = GroupsCheckConfig()
        decisions = ["sp:999", "adv:7,9", "adv:0,0", "dup:5", "xp:70-71"]
        assert run_groups_schedule(config, decisions) is None

    def test_unknown_decisions_are_rejected(self):
        harness = RendezvousHarness(GroupsCheckConfig())
        with pytest.raises(SimulationError):
            harness.apply("warp:3", step=0)

    def test_registry_is_disjoint_from_other_harnesses(self):
        from repro.check.mutants import MUTANTS
        from repro.check.paxos_lease import LEASE_MUTANTS

        assert not set(GROUPS_MUTANTS) & set(MUTANTS)
        assert not set(GROUPS_MUTANTS) & set(LEASE_MUTANTS)
