"""Unit tests for the asyncio TCP transport (repro.net.transport)."""

import queue
import time

import pytest

from repro.core.command import Command
from repro.errors import ConfigurationError, ShutdownError
from repro.net.config import free_port
from repro.net.transport import TcpTransport


def make_pair(**kwargs):
    """Two started transports that know each other's endpoints."""
    addresses = {0: ("127.0.0.1", free_port()),
                 1: ("127.0.0.1", free_port())}
    left = TcpTransport(0, addresses, **kwargs).start()
    right = TcpTransport(1, addresses, **kwargs).start()
    return left, right


def drain_until(inbox, count, timeout=5.0):
    """Collect ``count`` messages or fail the test."""
    received = []
    deadline = time.monotonic() + timeout
    while len(received) < count:
        remaining = deadline - time.monotonic()
        assert remaining > 0, f"only {len(received)}/{count} arrived"
        try:
            received.append(inbox.get(timeout=remaining))
        except queue.Empty:
            continue
    return received


class TestContract:
    def test_inbox_is_own_node_only(self):
        transport = TcpTransport(0, {0: ("127.0.0.1", free_port())}).start()
        try:
            assert transport.inbox(0) is transport.inbox(0)
            with pytest.raises(ConfigurationError):
                transport.inbox(1)
        finally:
            transport.close()

    def test_own_endpoint_required(self):
        with pytest.raises(ConfigurationError):
            TcpTransport(5, {0: ("127.0.0.1", free_port())})

    def test_unknown_peer_rejected(self):
        transport = TcpTransport(0, {0: ("127.0.0.1", free_port())}).start()
        try:
            with pytest.raises(ConfigurationError):
                transport.send(0, 9, "hello")
        finally:
            transport.close()

    def test_send_after_close_raises(self):
        left, right = make_pair()
        right.close()
        left.close()
        assert left.closed
        with pytest.raises(ShutdownError):
            left.send(0, 1, "late")

    def test_close_is_idempotent(self):
        left, right = make_pair()
        left.close()
        left.close()
        right.close()

    def test_bind_conflict_is_reported(self):
        port = free_port()
        first = TcpTransport(0, {0: ("127.0.0.1", port)}).start()
        try:
            second = TcpTransport(0, {0: ("127.0.0.1", port)})
            with pytest.raises(ConfigurationError):
                second.start()
        finally:
            first.close()


class TestDelivery:
    def test_send_receive_in_order(self):
        left, right = make_pair()
        try:
            for index in range(20):
                left.send(0, 1, ("msg", index))
            received = drain_until(right.inbox(1), 20)
            assert received == [(0, ("msg", index)) for index in range(20)]
        finally:
            left.close()
            right.close()

    def test_both_directions(self):
        left, right = make_pair()
        try:
            left.send(0, 1, "ping")
            assert right.inbox(1).get(timeout=5) == (0, "ping")
            right.send(1, 0, "pong")
            assert left.inbox(0).get(timeout=5) == (1, "pong")
        finally:
            left.close()
            right.close()

    def test_self_send_loops_back_without_sockets(self):
        transport = TcpTransport(0, {0: ("127.0.0.1", free_port())}).start()
        try:
            transport.send(0, 0, "to-myself")
            assert transport.inbox(0).get(timeout=5) == (0, "to-myself")
        finally:
            transport.close()

    def test_commands_cross_the_wire(self):
        left, right = make_pair()
        try:
            command = Command("add", (3,), writes=True,
                              client_id="c1", request_id=2)
            left.send(0, 1, (command,))
            src, payload = right.inbox(1).get(timeout=5)
            assert src == 0
            assert payload == (command,)
            assert isinstance(payload, tuple)
        finally:
            left.close()
            right.close()

    def test_interceptor_consumes_before_inbox(self):
        seen = []
        addresses = {0: ("127.0.0.1", free_port()),
                     1: ("127.0.0.1", free_port())}

        def interceptor(src, msg):
            if isinstance(msg, str) and msg.startswith("client:"):
                seen.append((src, msg))
                return True
            return False

        left = TcpTransport(0, addresses).start()
        right = TcpTransport(1, addresses, interceptor=interceptor).start()
        try:
            left.send(0, 1, "client:hello")
            left.send(0, 1, ("protocol", 1))
            assert right.inbox(1).get(timeout=5) == (0, ("protocol", 1))
            assert seen == [(0, "client:hello")]
            assert right.inbox(1).empty()
        finally:
            left.close()
            right.close()


class TestReconnect:
    def test_reconnects_after_peer_restart(self):
        addresses = {0: ("127.0.0.1", free_port()),
                     1: ("127.0.0.1", free_port())}
        left = TcpTransport(0, addresses, backoff_base=0.02,
                            backoff_max=0.1).start()
        right = TcpTransport(1, addresses).start()
        try:
            left.send(0, 1, "before")
            assert right.inbox(1).get(timeout=5) == (0, "before")
            right.close()

            # Same endpoint, new transport — as a restarted replica would.
            right = TcpTransport(1, addresses).start()
            deadline = time.monotonic() + 10
            delivered = None
            sequence = 0
            while delivered is None and time.monotonic() < deadline:
                # Frames written into the dying connection may be lost
                # (fair-lossy); keep sending until one lands.
                left.send(0, 1, ("after", sequence))
                sequence += 1
                try:
                    delivered = right.inbox(1).get(timeout=0.1)
                except queue.Empty:
                    continue
            assert delivered is not None, "never reconnected"
            assert delivered[1][0] == "after"
        finally:
            left.close()
            right.close()

    def test_add_peer_registers_dynamic_endpoint(self):
        server = TcpTransport(0, {0: ("127.0.0.1", free_port())}).start()
        client_port = free_port()
        client = TcpTransport(
            1000,
            {1000: ("127.0.0.1", client_port),
             0: server.peers()[0]},
        ).start()
        try:
            with pytest.raises(ConfigurationError):
                server.send(0, 1000, "who are you")
            server.add_peer(1000, "127.0.0.1", client_port)
            server.send(0, 1000, "now I know you")
            assert client.inbox(1000).get(timeout=5) == (0, "now I know you")
        finally:
            client.close()
            server.close()

    def test_bounded_outbox_drops_oldest(self):
        # Peer 1's endpoint is allocated but nothing listens: frames pile
        # up in the bounded outbox and the oldest fall off.
        addresses = {0: ("127.0.0.1", free_port()),
                     1: ("127.0.0.1", free_port())}
        limit = 4
        left = TcpTransport(0, addresses, queue_limit=limit,
                            backoff_base=0.02, backoff_max=0.1).start()
        try:
            total = 20
            for index in range(total):
                left.send(0, 1, ("queued", index))
            time.sleep(0.1)  # let the pump fail at least once

            right = TcpTransport(1, addresses).start()
            try:
                received = []
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    try:
                        received.append(right.inbox(1).get(timeout=0.3))
                    except queue.Empty:
                        if received:
                            break
                # The pump holds at most one frame beyond the queue bound.
                assert 1 <= len(received) <= limit + 1
                assert received[-1] == (0, ("queued", total - 1)), (
                    "the newest frame must survive the drop-oldest policy")
            finally:
                right.close()
        finally:
            left.close()
