"""Unit tests for the SMR client (retry, batching, response matching)."""

import threading

import pytest

from repro.core.command import Command
from repro.errors import ShutdownError
from repro.smr.client import Client, ClientTimeout


def read(key):
    return Command("contains", (key,), writes=False)


class FakeServer:
    """Captures submissions and optionally answers like a replica."""

    def __init__(self, respond=True, fail_contacts=()):
        self.submissions = []
        self.respond = respond
        self.fail_contacts = set(fail_contacts)
        self.client = None

    def submit(self, payload, contact):
        if contact in self.fail_contacts:
            raise ShutdownError("replica down")
        self.submissions.append((payload, contact))
        if self.respond:
            for command in payload:
                self.client.deliver_response(command, f"resp-{command.args[0]}")


def make_client(server, **kwargs):
    client = Client("c1", server.submit, n_replicas=3,
                    timeout=kwargs.pop("timeout", 0.05), **kwargs)
    server.client = client
    return client


class TestClient:
    def test_execute_returns_response(self):
        server = FakeServer()
        client = make_client(server)
        assert client.execute(read(7)) == "resp-7"

    def test_commands_stamped_with_identity(self):
        server = FakeServer()
        client = make_client(server)
        client.execute(read(1))
        client.execute(read(2))
        (first, _), (second, _) = server.submissions
        assert first[0].client_id == "c1"
        assert first[0].request_id == 1
        assert second[0].request_id == 2
        assert client.requests_issued == 2

    def test_batch_preserves_order(self):
        server = FakeServer()
        client = make_client(server)
        responses = client.execute_batch([read(5), read(6), read(7)])
        assert responses == ["resp-5", "resp-6", "resp-7"]

    def test_empty_batch(self):
        server = FakeServer()
        client = make_client(server)
        assert client.execute_batch([]) == []

    def test_duplicate_responses_ignored(self):
        server = FakeServer(respond=False)
        client = make_client(server)

        def answer():
            while not server.submissions:
                pass
            (payload, _), = server.submissions
            for _ in range(3):  # three replicas answer
                client.deliver_response(payload[0], "same")

        thread = threading.Thread(target=answer, daemon=True)
        thread.start()
        assert client.execute(read(1)) == "same"
        thread.join()

    def test_timeout_then_retry_other_contact(self):
        server = FakeServer(respond=False)
        client = make_client(server, timeout=0.02)
        with pytest.raises(ClientTimeout):
            client.execute(read(1))
        contacts = [contact for _, contact in server.submissions]
        assert len(set(contacts)) > 1  # rotated through replicas

    def test_dead_contact_skipped(self):
        server = FakeServer(fail_contacts={0})
        client = make_client(server, contact=0)
        assert client.execute(read(3)) == "resp-3"
        assert server.submissions[0][1] == 1  # fell over to replica 1

    def test_all_dead_times_out(self):
        server = FakeServer(fail_contacts={0, 1, 2})
        client = make_client(server)
        with pytest.raises(ClientTimeout):
            client.execute(read(1))

    def test_stale_response_for_old_request_ignored(self):
        server = FakeServer(respond=False)
        client = make_client(server, timeout=0.2)

        def answer():
            while not server.submissions:
                pass
            (payload, _), = server.submissions
            stale = Command("contains", (9,), client_id="c1", request_id=999,
                            writes=False)
            client.deliver_response(stale, "stale")
            client.deliver_response(payload[0], "fresh")

        thread = threading.Thread(target=answer, daemon=True)
        thread.start()
        assert client.execute(read(1)) == "fresh"
        thread.join()
