"""Additional Multi-Paxos edge cases: pipeline, batching, forwarding."""

import pytest

from repro.broadcast import (
    Accept,
    Accepted,
    Decide,
    Forward,
    MultiPaxos,
    Prepare,
    Promise,
    Send,
)
from repro.broadcast.paxos import LEADER_TIMER, NOOP


def sends(actions, msg_type=None):
    picked = [a for a in actions if isinstance(a, Send)]
    if msg_type is not None:
        picked = [a for a in picked if isinstance(a.msg, msg_type)]
    return picked


class TestPipeline:
    def test_pipeline_limits_in_flight_instances(self):
        leader = MultiPaxos(0, 3, batch_size=1, pipeline=2)
        for index in range(5):
            leader.submit(f"p{index}")
        assert len(leader._in_flight) == 2
        assert len(leader.pending) == 3

    def test_decide_releases_pipeline_slot(self):
        leader = MultiPaxos(0, 3, batch_size=1, pipeline=1)
        leader.submit("a")
        leader.submit("b")
        assert leader.next_instance == 1
        leader.on_message(1, Accepted((0, 0), 0))
        assert leader.next_instance == 2  # b proposed after a decided

    def test_batch_size_bounds_instance_value(self):
        leader = MultiPaxos(0, 3, batch_size=2, pipeline=10)
        actions = []
        for index in range(5):
            actions.extend(leader.submit(f"p{index}"))
        values = [a.msg.value for a in sends(actions, Accept)
                  if a.dst == 1]
        assert all(len(value) <= 2 for value in values)
        flattened = [item for value in values for item in value]
        assert flattened == [f"p{i}" for i in range(5)]


class TestForwarding:
    def test_forward_to_self_hint_is_dropped(self):
        # Node 1 believes node 0 leads; node 0 (not leader anymore after a
        # higher ballot was seen) must not bounce the payload back forever.
        node = MultiPaxos(0, 3)
        node.on_message(1, Prepare((2, 1)))   # step down; hint = node 1
        actions = node.on_message(2, Forward("p"))
        forwards = sends(actions, Forward)
        assert all(f.dst == 1 for f in forwards)  # towards the new hint
        # And a forward ARRIVING from the hinted node is not ping-ponged.
        actions = node.on_message(1, Forward("q"))
        assert not sends(actions, Forward)

    def test_drain_pending_forwards_noop_when_leading(self):
        leader = MultiPaxos(0, 3, pipeline=1, batch_size=1)
        leader.submit("a")
        leader.submit("b")  # stuck in pending behind the pipeline
        assert leader.drain_pending_forwards() == []

    def test_drain_pending_after_step_down(self):
        leader = MultiPaxos(0, 3, pipeline=1, batch_size=1)
        leader.submit("a")
        leader.submit("b")
        leader.on_message(1, Prepare((5, 1)))  # deposed
        actions = leader.drain_pending_forwards()
        forwards = sends(actions, Forward)
        assert [f.msg.payload for f in forwards] == ["b"]
        assert not leader.pending


class TestLearning:
    def test_duplicate_decide_ignored(self):
        node = MultiPaxos(1, 3)
        first = node.on_message(0, Decide(0, ("v",)))
        second = node.on_message(0, Decide(0, ("v",)))
        assert first and not second

    def test_out_of_order_decides_deliver_in_order(self):
        node = MultiPaxos(1, 3)
        collected = []
        for instance in (2, 0, 1):
            actions = node.on_message(0, Decide(instance, (f"v{instance}",)))
            from repro.broadcast import Deliver
            collected.extend(
                (a.instance, a.payload) for a in actions
                if isinstance(a, Deliver))
        assert collected == [(0, ("v0",)), (1, ("v1",)), (2, ("v2",))]

    def test_noop_gap_consumes_instance_number(self):
        node = MultiPaxos(1, 3)
        node.on_message(0, Decide(0, NOOP))
        assert node.next_deliver == 1


class TestCampaignEdgeCases:
    def test_failed_campaign_retries_with_higher_round(self):
        node = MultiPaxos(1, 3)
        node.start()
        node.on_timer(LEADER_TIMER)
        node.on_timer(LEADER_TIMER)
        first_ballot = node.preparing
        # A rival with a higher ballot nacks our prepare.
        from repro.broadcast import Nack
        node.on_message(2, Nack(first_ballot, (9, 2)))
        assert node.preparing is None
        actions = node.on_timer(LEADER_TIMER)
        actions = node.on_timer(LEADER_TIMER)
        prepares = sends(actions, Prepare)
        assert prepares and prepares[0].msg.ballot[0] > 9

    def test_extra_promises_after_election_harmless(self):
        node = MultiPaxos(1, 3)
        node.start()
        node.on_timer(LEADER_TIMER)
        node.on_timer(LEADER_TIMER)
        node.on_message(0, Promise((1, 1), {}))
        assert node.is_leader
        assert node.on_message(2, Promise((1, 1), {})) == []

    def test_promise_for_stale_ballot_ignored(self):
        node = MultiPaxos(1, 3)
        node.start()
        node.on_timer(LEADER_TIMER)
        node.on_timer(LEADER_TIMER)
        assert node.on_message(0, Promise((0, 9), {})) == []
        assert not node.is_leader
