"""Integration tests: Multi-Paxos over the threaded transport.

Covers the happy path, lossy/duplicating networks, and leader crash with
re-election — the f = 1 crash tolerance the paper's deployment assumes.
"""

import time

import pytest

from repro.broadcast import FaultPlan, MultiPaxos, ThreadedNode, ThreadedTransport


def build_cluster(n=3, plan=None, heartbeat=0.02, timeout=0.08):
    transport = ThreadedTransport(n, plan or FaultPlan(min_delay=0, max_delay=0))
    delivered = [[] for _ in range(n)]
    nodes = []
    for node_id in range(n):
        def on_deliver(instance, payload, log=delivered[node_id]):
            log.append((instance, payload))

        protocol = MultiPaxos(
            node_id, n,
            heartbeat_interval=heartbeat,
            leader_timeout=timeout * (1 + 0.4 * node_id),
        )
        nodes.append(ThreadedNode(node_id, protocol, transport, on_deliver))
    for node in nodes:
        node.start()
    return transport, nodes, delivered


def flatten(log):
    return [item for _, batch in sorted(log) for item in batch]


def shutdown(transport, nodes):
    for node in nodes:
        node.stop()
    transport.close()


def wait_until(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestHappyPath:
    def test_all_nodes_deliver_everything_in_order(self):
        transport, nodes, delivered = build_cluster()
        try:
            for index in range(50):
                nodes[index % 3].submit(("cmd", index))
            assert wait_until(
                lambda: all(len(flatten(log)) == 50 for log in delivered))
            logs = [flatten(log) for log in delivered]
            assert logs[0] == logs[1] == logs[2]
            assert len(set(logs[0])) == 50
        finally:
            shutdown(transport, nodes)

    def test_throughput_is_reasonable(self):
        transport, nodes, delivered = build_cluster()
        try:
            started = time.time()
            for index in range(200):
                nodes[0].submit(index)
            assert wait_until(
                lambda: len(flatten(delivered[0])) == 200, timeout=10)
            assert time.time() - started < 10
        finally:
            shutdown(transport, nodes)


class TestFaultyNetwork:
    def test_loss_and_duplication(self):
        plan = FaultPlan(seed=7, min_delay=0, max_delay=0.002,
                         loss=0.08, duplication=0.08)
        transport, nodes, delivered = build_cluster(plan=plan)
        try:
            for index in range(60):
                nodes[0].submit(("cmd", index))
            # Losses may strand some commands (clients retry in real use);
            # safety: logs must be prefix-compatible and duplicate-free at
            # the instance level.  Poll instead of a fixed sleep: under a
            # loaded test machine progress through a lossy network is slow.
            assert wait_until(
                lambda: min(len(flatten(log)) for log in delivered) > 0,
                timeout=15)
            time.sleep(0.5)  # let logs settle a little further
            logs = [flatten(log) for log in delivered]
            shortest = min(len(log) for log in logs)
            assert shortest > 0
            for log in logs:
                assert log[:shortest] == logs[0][:shortest]
            instances = [i for i, _ in sorted(delivered[0])]
            assert instances == sorted(set(instances))
        finally:
            shutdown(transport, nodes)


class TestLeaderCrash:
    def test_reelection_and_progress(self):
        transport, nodes, delivered = build_cluster()
        try:
            for index in range(10):
                nodes[0].submit(("before", index))
            assert wait_until(
                lambda: len(flatten(delivered[1])) >= 10)
            # Crash the initial leader.
            transport.crash(0)
            nodes[0].stop()
            # Give the failure detector time to elect a new leader, then
            # submit through the survivors.
            assert wait_until(
                lambda: any(n.protocol.is_leader for n in nodes[1:]),
                timeout=10)
            for index in range(10):
                nodes[1].submit(("after", index))
            assert wait_until(
                lambda: sum(payload[0] == "after"
                            for payload in flatten(delivered[1])) == 10,
                timeout=10)
            logs = [flatten(log) for log in delivered[1:]]
            shortest = min(len(log) for log in logs)
            assert logs[0][:shortest] == logs[1][:shortest]
        finally:
            shutdown(transport, nodes)

    def test_minority_crash_does_not_block(self):
        transport, nodes, delivered = build_cluster(n=5)
        try:
            transport.crash(3)
            transport.crash(4)
            nodes[3].stop()
            nodes[4].stop()
            for index in range(20):
                nodes[0].submit(index)
            assert wait_until(
                lambda: len(flatten(delivered[1])) == 20, timeout=10)
        finally:
            shutdown(transport, nodes)
