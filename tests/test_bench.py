"""Tests for the benchmark harnesses and reporting (tiny runs)."""

import pytest

from repro.bench import (
    BENCH_BACKENDS,
    FigureData,
    StandaloneConfig,
    format_figure,
    run_benchmark,
    run_standalone,
)
from repro.sim import LIGHT


def tiny(**overrides):
    defaults = dict(
        algorithm="lock-free",
        workers=2,
        profile=LIGHT,
        measure_ops=400,
        warm_ops=50,
    )
    defaults.update(overrides)
    return StandaloneConfig(**defaults)


class TestBackendDispatch:
    def test_backends_registered(self):
        assert BENCH_BACKENDS == ("sim", "tcp", "mp")

    def test_sim_backend_dispatches_to_standalone(self):
        result = run_benchmark("sim", tiny())
        assert result.throughput > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark backend"):
            run_benchmark("carrier-pigeon", tiny())


class TestStandaloneHarness:
    def test_runs_and_measures(self):
        result = run_standalone(tiny())
        assert result.throughput > 0
        assert result.executed >= 400
        assert result.kops == pytest.approx(result.throughput / 1e3)

    def test_deterministic(self):
        assert run_standalone(tiny()).throughput == \
            run_standalone(tiny()).throughput

    def test_seed_matters(self):
        a = run_standalone(tiny(seed=1))
        b = run_standalone(tiny(seed=2))
        assert a.throughput != b.throughput

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_standalone(tiny(workers=0))

    def test_write_pct_lowers_throughput(self):
        read_only = run_standalone(tiny(workers=4))
        write_heavy = run_standalone(tiny(workers=4, write_pct=100.0))
        assert write_heavy.throughput < read_only.throughput

    def test_virtual_time_cap_respected(self):
        result = run_standalone(tiny(
            algorithm="fine-grained", workers=1, measure_ops=10_000_000,
            max_virtual_time=0.01))
        assert result.virtual_time <= 0.011

    @pytest.mark.parametrize("algorithm", ("coarse-grained", "fine-grained",
                                           "lock-free", "sequential"))
    def test_all_algorithms(self, algorithm):
        assert run_standalone(tiny(algorithm=algorithm)).throughput > 0


class TestFigureData:
    def _figure(self):
        figure = FigureData(name="f", title="t", x_label="x", y_label="y")
        figure.add_point("panel", "series-a", 1, 10.0)
        figure.add_point("panel", "series-a", 2, 30.0)
        figure.add_point("panel", "series-b", 1, 20.0)
        return figure

    def test_add_and_best(self):
        figure = self._figure()
        assert figure.best_x("panel", "series-a") == 2
        assert figure.best_x("panel", "series-b") == 1

    def test_format_contains_series_and_values(self):
        text = format_figure(self._figure())
        assert "series-a" in text
        assert "30.0" in text
        assert "panel" in text

    def test_format_aligns_missing_points(self):
        text = format_figure(self._figure())
        # series-b has no x=2 point; the table still renders.
        assert text.count("\n") >= 4

    def test_fig6_scatter_format(self):
        figure = FigureData(name="fig6", title="t", x_label="kops",
                            y_label="ms")
        figure.add_point("5% writes", "lock-free", 100.0, 1.5)
        text = format_figure(figure)
        assert "->" in text


class TestCsvExport:
    def _figure(self):
        from repro.bench import FigureData
        figure = FigureData(name="demo", title="t", x_label="workers",
                            y_label="kops")
        figure.add_point("light", "lock-free", 1, 100.5)
        figure.add_point("light", "lock-free", 2, 200.0)
        figure.add_point("heavy", "coarse-grained", 1, 1.5)
        return figure

    def test_csv_long_format(self):
        from repro.bench import figure_to_csv
        text = figure_to_csv(self._figure())
        lines = text.strip().split("\n")
        assert lines[0] == "panel,series,workers,kops"
        assert "light,lock-free,1,100.5" in lines
        assert len(lines) == 4

    def test_write_to_directory(self, tmp_path):
        from repro.bench import write_figure_csv
        path = write_figure_csv(self._figure(), tmp_path)
        assert path.name == "demo.csv"
        assert "coarse-grained" in path.read_text()


class TestTimeSeries:
    def test_rates_over_virtual_time(self):
        from repro.sim import Metrics, Simulator
        sim = Simulator()
        metrics = Metrics(sim)
        series = metrics.time_series()
        sim.schedule(1.0, lambda: (metrics.incr("x", 100),
                                   series.sample(metrics.count("x"))))
        sim.schedule(2.0, lambda: (metrics.incr("x", 300),
                                   series.sample(metrics.count("x"))))
        sim.run()
        assert series.points == [(1.0, 100.0), (2.0, 400.0 - 100.0)]

    def test_zero_elapsed_skipped(self):
        from repro.sim import Metrics, Simulator
        sim = Simulator()
        series = Metrics(sim).time_series()
        series.sample(5)  # elapsed == 0 at t=0
        assert series.points == []


class TestLockFreeGarbageBound:
    def test_helped_removal_bounds_garbage(self):
        from repro.core import (LockFreeCOS, ReadWriteConflicts, ThreadedCOS,
                                ThreadedRuntime)
        from repro.core.command import Command
        runtime = ThreadedRuntime()
        algo = LockFreeCOS(runtime, ReadWriteConflicts(), max_size=64)
        cos = ThreadedCOS(algo, runtime)
        # Execute-and-remove 30 commands without any intervening insert:
        # all 30 stay as logical garbage.
        for i in range(30):
            cos.insert(Command("contains", (i,), writes=False))
        for _ in range(30):
            cos.remove(cos.get())
        live, removed = algo.chain_stats_unsafe()
        assert (live, removed) == (0, 30)
        # One insert traversal helps-remove everything it passes.
        cos.insert(Command("contains", (99,), writes=False))
        live, removed = algo.chain_stats_unsafe()
        assert removed == 0
        assert live == 1


class TestAsciiPlot:
    def _figure(self):
        from repro.bench import FigureData
        figure = FigureData(name="p", title="t", x_label="w", y_label="kops")
        for w, y in ((1, 10.0), (2, 20.0), (4, 40.0)):
            figure.add_point("light", "lock-free", w, y)
            figure.add_point("light", "coarse-grained", w, y / 2)
        return figure

    def test_plot_contains_markers_and_legend(self):
        from repro.bench import plot_figure
        text = plot_figure(self._figure())
        assert "a=lock-free" in text or "b=lock-free" in text
        assert "kops" in text
        assert "+" in text  # axis corner

    def test_highest_point_is_top_series(self):
        from repro.bench import plot_panel
        text = plot_panel("light", self._figure().panels["light"], "kops")
        rows = text.split("\n")
        # First marker row from the top must belong to lock-free (series a).
        for row in rows[1:]:
            stripped = row.replace("|", "").replace("40.0", "").strip()
            if stripped:
                assert stripped[0] == "a"
                break

    def test_empty_panel(self):
        from repro.bench import plot_panel
        assert "(no data)" in plot_panel("empty", {}, "kops")

    def test_log_y_mode(self):
        from repro.bench import plot_figure
        text = plot_figure(self._figure(), log_y=True)
        assert "lock-free" in text


class TestBenchArtifacts:
    def _figure(self):
        figure = FigureData(name="demo", title="t", x_label="w",
                            y_label="kops")
        figure.add_point("light", "lock-free", 1, 10.0)
        figure.add_point("light", "lock-free", 2, 20.0)
        return figure

    def test_environment_has_provenance(self):
        from repro.bench import bench_environment
        env = bench_environment()
        assert set(env) >= {"git_sha", "python", "cpu_count",
                            "pythonhashseed", "recorded_at"}
        assert len(env["git_sha"]) == 40  # this repo is a git checkout

    def test_figure_payload_round_trips_points(self):
        from repro.bench import figure_payload
        payload = figure_payload(self._figure())
        assert payload["name"] == "demo"
        assert payload["panels"]["light"]["lock-free"] == [[1, 10.0],
                                                           [2, 20.0]]

    def test_write_bench_json(self, tmp_path):
        import json

        from repro.bench import figure_payload, write_bench_json
        path = write_bench_json("demo", figure_payload(self._figure()),
                                str(tmp_path), config={"workers": 2})
        assert path.endswith("BENCH_demo.json")
        document = json.loads(open(path).read())
        assert document["bench"] == "demo"
        assert document["config"] == {"workers": 2}
        assert document["result"]["panels"]["light"]["lock-free"]
        assert document["environment"]["git_sha"]

    def test_payload_with_to_json_hook(self, tmp_path):
        import json

        from repro.bench import write_bench_json

        class Result:
            def to_json(self):
                return {"throughput": 123.0}

        path = write_bench_json("hooked", Result(), str(tmp_path))
        assert json.loads(open(path).read())["result"] == {
            "throughput": 123.0}
