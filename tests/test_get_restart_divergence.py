"""Targeted tests for the documented get-restart divergence (DESIGN.md #1).

A node can become ready *behind* an in-flight ``get`` traversal: the
semaphore admitted the getter for a node that a faster peer then stole,
while the node freed by a concurrent remove sits at a position the
traversal has already passed.  The paper's pseudocode walks off the end of
the list; our implementations restart from the head.  These tests engineer
exactly that interleaving on real threads and assert the get still
completes with the correct command.
"""

import threading
import time

import pytest

from conftest import make_threaded_cos
from repro.core import ReadWriteConflicts
from repro.core.command import Command


def read(key):
    return Command("contains", (key,), writes=False)


def write(key):
    return Command("add", (key,), writes=True)


@pytest.mark.parametrize("algorithm", ("fine-grained", "lock-free"))
def test_node_freed_behind_traversal_is_still_found(algorithm):
    """w1 <- r2 ordering; a getter blocked on the semaphore is released by
    w1's removal while another getter races it for r2."""
    cos = make_threaded_cos(algorithm, ReadWriteConflicts(), max_size=16)
    w1, r2 = write(1), read(2)
    cos.insert(w1)
    cos.insert(r2)
    handle_w1 = cos.get()

    got = []
    lock = threading.Lock()

    def getter():
        handle = cos.get()
        with lock:
            got.append(cos.command_of(handle))
        cos.remove(handle)

    # Two getters race for the single command r2 that becomes ready when
    # w1 is removed; one wins, the other must keep blocking (not spin off
    # the end of the list and crash).
    threads = [threading.Thread(target=getter, daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    time.sleep(0.05)
    cos.remove(handle_w1)  # frees r2 behind any in-flight traversal
    time.sleep(0.2)
    with lock:
        assert got == [r2]
    # Unblock the loser with one more command and join everything.
    r3 = read(3)
    cos.insert(r3)
    for thread in threads:
        thread.join(timeout=5)
        assert not thread.is_alive()
    with lock:
        assert set(got) == {r2, r3}


@pytest.mark.parametrize("algorithm", ("fine-grained", "lock-free"))
def test_interleaved_frees_and_gets_many_rounds(algorithm):
    """Repeated write-barrier / release cycles with racing getters."""
    cos = make_threaded_cos(algorithm, ReadWriteConflicts(), max_size=32)
    executed = []
    lock = threading.Lock()
    rounds = 30

    def getter():
        while True:
            handle = cos.get()
            command = cos.command_of(handle)
            if command.op == "__stop__":
                cos.remove(handle)
                return
            with lock:
                executed.append(command.uid)
            cos.remove(handle)

    threads = [threading.Thread(target=getter, daemon=True) for _ in range(4)]
    for thread in threads:
        thread.start()
    expected = []
    for round_index in range(rounds):
        barrier = write(round_index)
        frees = [read(round_index * 10 + offset) for offset in range(3)]
        cos.insert(barrier)
        for command in frees:
            cos.insert(command)
        expected.append(barrier)
        expected.extend(frees)
    for _ in threads:
        cos.insert(Command(op="__stop__", writes=True))
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    assert sorted(executed) == sorted(c.uid for c in expected)
