"""Differential tests of the threaded partitioned cluster.

The partitioned deployment's safety claim (docs/partitioning.md): every
replica merges its groups' ordered streams into the *same* total order —
cross-partition commands land at the identical merged position everywhere,
and conflicting commands release in the same per-class order — even when
seeded loss/duplication/reordering shapes each group's ordering traffic
differently per replica.  These tests drive a real
:class:`~repro.groups.cluster.GroupedCluster` (threaded engine, real
workload generator) and compare replicas against each other, and the
grouped deployment against a single-group baseline.

Note on counters: lease-served reads execute only at the leaseholder, so
tests that wait for *every* replica to reach an executed count run with
``lease_reads=False`` (writes and reads all take the ordered path).
"""

from __future__ import annotations

import pytest

from repro.broadcast import FaultPlan
from repro.core.command import Command
from repro.groups.cluster import GroupedCluster, GroupsConfig
from repro.workload import WorkloadGenerator

N_COMMANDS = 60


def _config(n_groups: int, **overrides) -> GroupsConfig:
    base = dict(
        n_groups=n_groups,
        n_replicas=3,
        service="linked-list-keyed",
        lease_reads=False,
        record_history=True,
        client_timeout=5.0,
    )
    base.update(overrides)
    return GroupsConfig(**base)


def _workload(n_groups: int, cross: float, seed: int = 3,
              write_pct: float = 100.0):
    return WorkloadGenerator(
        write_pct=write_pct,
        key_space=64,
        seed=seed,
        client_id=None,
        cross_partition_fraction=cross,
        n_partitions=n_groups if cross > 0 else None,
    )


def _drive(cluster: GroupedCluster, commands):
    # The client re-stamps commands with its own id and request ids
    # 1..len(commands) in stream order (repro.smr.client).
    client = cluster.client()
    for start in range(0, len(commands), 6):
        client.execute_batch(commands[start:start + 6])
    return client


def _assert_replicas_agree(cluster: GroupedCluster) -> None:
    positions = cluster.merged_positions()
    histories = cluster.class_histories()
    snapshots = [service.snapshot() for service in cluster.services()]
    for replica in range(1, cluster.config.n_replicas):
        assert positions[replica] == positions[0], (
            f"replica {replica} merged positions diverge")
        assert histories[replica] == histories[0], (
            f"replica {replica} per-class history diverges")
        assert snapshots[replica] == snapshots[0], (
            f"replica {replica} service state diverges")


class TestConvergence:
    def test_cross_partition_workload_converges_identically(self):
        commands = _workload(2, cross=0.25).commands(N_COMMANDS)
        with GroupedCluster(_config(2)) as cluster:
            _drive(cluster, commands)
            assert cluster.wait_converged(N_COMMANDS, timeout=20.0), (
                cluster.total_executed())
            _assert_replicas_agree(cluster)
            positions = cluster.merged_positions()[0]
            assert len(positions) == N_COMMANDS
            # The stream really exercised the rendezvous path.
            cross = [c for c in commands if len(c.args) > 1]
            assert cross, "seeded workload produced no cross commands"

    def test_cross_commands_anchor_in_lowest_group(self):
        commands = _workload(2, cross=0.4, seed=5).commands(N_COMMANDS)
        with GroupedCluster(_config(2)) as cluster:
            client = _drive(cluster, commands)
            assert cluster.wait_converged(N_COMMANDS, timeout=20.0)
            positions = cluster.merged_positions()[0]
            for index, command in enumerate(commands):
                if len(command.args) <= 1:
                    continue
                groups = cluster.partition_map.groups_of(command)
                key = (client.client_id, index + 1)
                assert positions[key][0] == min(groups)

    def test_three_groups_mixed_reads_and_writes(self):
        commands = _workload(3, cross=0.2, seed=9,
                             write_pct=70.0).commands(N_COMMANDS)
        with GroupedCluster(_config(3)) as cluster:
            _drive(cluster, commands)
            assert cluster.wait_converged(N_COMMANDS, timeout=20.0), (
                cluster.total_executed())
            _assert_replicas_agree(cluster)


class TestUnderFaults:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_identical_merge_under_seeded_loss_and_reordering(self, seed):
        # Each group's ordering traffic gets its own seeded fault plan:
        # jittered delays reorder, loss forces retransmission/catch-up.
        plans = (
            FaultPlan(seed=seed, min_delay=0.0, max_delay=2e-3, loss=0.05,
                      duplication=0.05),
            FaultPlan(seed=seed + 10, min_delay=0.0, max_delay=1e-3,
                      loss=0.02),
        )
        commands = _workload(2, cross=0.25, seed=seed).commands(N_COMMANDS)
        with GroupedCluster(_config(2, fault_plans=plans)) as cluster:
            _drive(cluster, commands)
            assert cluster.wait_converged(N_COMMANDS, timeout=30.0), (
                cluster.total_executed())
            _assert_replicas_agree(cluster)

    def test_survives_one_replica_crash(self):
        commands = _workload(2, cross=0.25, seed=7).commands(N_COMMANDS)
        with GroupedCluster(_config(2)) as cluster:
            _drive(cluster, commands[:30])
            assert cluster.wait_converged(30, timeout=20.0)
            cluster.crash(2)
            _drive(cluster, commands[30:])
            assert cluster.wait_converged(N_COMMANDS, timeout=30.0,
                                          replicas=[0, 1]), (
                cluster.total_executed())
            positions = cluster.merged_positions()
            histories = cluster.class_histories()
            assert positions[1] == positions[0]
            assert histories[1] == histories[0]


class TestAgainstSingleGroupBaseline:
    def test_grouped_state_matches_single_group(self):
        # The add-only workload is order-insensitive at the state level,
        # so grouped and ungrouped deployments must end in the same
        # service state; this is the cheap cross-deployment differential
        # (order determinism itself is pinned replica-vs-replica above).
        commands = _workload(2, cross=0.25, seed=11).commands(N_COMMANDS)
        snapshots = []
        for n_groups in (1, 2):
            with GroupedCluster(_config(n_groups)) as cluster:
                _drive(cluster, commands)
                assert cluster.wait_converged(N_COMMANDS, timeout=20.0)
                snapshots.append(cluster.services()[0].snapshot())
        assert snapshots[0] == snapshots[1]

    def test_single_group_has_no_rendezvous_traffic(self):
        commands = _workload(2, cross=0.0, seed=13).commands(20)
        with GroupedCluster(_config(1)) as cluster:
            _drive(cluster, commands)
            assert cluster.wait_converged(20, timeout=20.0)
            for grouped in cluster.grouped:
                assert grouped.merger.emitted_cross == 0
