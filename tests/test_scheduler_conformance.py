"""One shared conformance contract over every COS scheduler.

Factored out of the per-scheduler assertions that used to be scattered
across ``test_cos_spec.py`` / ``test_cos_properties.py`` /
``test_class_based.py``: every scheduler — the paper's three graphs, the
indexed graph, the sequential baseline, class-based, and the early/static
schedulers — must satisfy the same externally observable contract,
regardless of how much scheduling *freedom* it offers internally
(freedom-specific tests stay in ``test_cos_spec.py``, which only the
DAG-grade schedulers can pass):

- basic lifecycle: ``insert`` → ``get`` → ``remove`` round-trips;
- FIFO for independent commands drained one at a time;
- **total order of writes**: all-write workloads execute in delivery
  order on real threads;
- **conflict ordering**: under the keyed relation, conflicting commands
  never overlap and execute in delivery order;
- **no lost or duplicated commands** across a threaded workload;
- **bounded size**: ``insert`` blocks at capacity and is released by
  ``remove``; invalid capacities are rejected;
- ``get`` blocks on an empty structure until an insert arrives.

The suite is parametrized over :data:`repro.core.COS_ALGORITHMS`, so a
new backend registered with ``make_cos`` gets the full battery by
construction — one fixture entry, nothing else.
"""

from __future__ import annotations

import threading

import pytest

from conftest import make_mixed_commands, make_threaded_cos, run_threaded_workload
from repro.core import COS_ALGORITHMS, ConflictRelation, ReadWriteConflicts
from repro.core.command import Command

#: Every registered scheduler, including the early/static ones.
SCHEDULERS = COS_ALGORITHMS


class SmallKeyedConflicts(ConflictRelation):
    """Keyed read/write conflicts over a finite key universe.

    Commands without a key (the workload driver's stop pills) write
    *every* class, so they conflict with everything and drain last — the
    property ``run_threaded_workload`` needs to terminate cleanly.  The
    finite universe also gives the footprint schedulers a compile-time
    class count (cross-class writes take early scheduling's worker-set
    barrier path).
    """

    supports_footprint = True

    def __init__(self, keys: int = 4):
        self._keys = keys

    def _key_of(self, cmd):
        return cmd.args[0] % self._keys if cmd.args else None

    def conflicts(self, a, b):
        if not (a.writes or b.writes):
            return False
        key_a, key_b = self._key_of(a), self._key_of(b)
        return key_a is None or key_b is None or key_a == key_b

    def footprint(self, cmd):
        key = self._key_of(cmd)
        if key is None:
            return tuple((k, True) for k in range(self._keys))
        return ((key, cmd.writes),)

    def class_universe(self):
        return self._keys


def read(key=0):
    return Command("contains", (key,), writes=False)


def write(key=0):
    return Command("add", (key,), writes=True)


@pytest.fixture(params=SCHEDULERS)
def scheduler(request):
    return request.param


@pytest.fixture
def cos(scheduler):
    return make_threaded_cos(scheduler, ReadWriteConflicts())


class TestLifecycle:
    def test_insert_get_remove(self, cos):
        cmd = read(1)
        cos.insert(cmd)
        handle = cos.get()
        assert cos.command_of(handle) is cmd
        cos.remove(handle)

    def test_fifo_for_independent_commands(self, cos):
        commands = [read(i) for i in range(5)]
        for cmd in commands:
            cos.insert(cmd)
        for expected in commands:
            handle = cos.get()
            assert cos.command_of(handle) is expected
            cos.remove(handle)


class TestThreadedContract:
    """Algorithm 1 on real threads: ordering and completeness."""

    def test_no_lost_or_duplicated_commands(self, scheduler):
        commands = make_mixed_commands(48, write_every=4, key_space=6)
        cos = make_threaded_cos(scheduler, ReadWriteConflicts())
        log = run_threaded_workload(cos, commands, n_workers=4)
        uids = [cmd.uid for cmd in commands]
        assert sorted(log.order) == sorted(uids), "lost or duplicated"
        assert len(set(log.order)) == len(log.order), "a command ran twice"

    def test_writes_execute_in_total_delivery_order(self, scheduler):
        # All-write workloads conflict pairwise under every relation any
        # scheduler here derives, so execution start order must equal
        # delivery order exactly.
        commands = [write(i % 3) for i in range(24)]
        cos = make_threaded_cos(scheduler, ReadWriteConflicts())
        log = run_threaded_workload(cos, commands, n_workers=4)
        assert log.order == [cmd.uid for cmd in commands]

    def test_conflicting_commands_never_overlap(self, scheduler):
        # Per-class (here: per-key) FIFO with read/write semantics: every
        # conflicting pair finishes-before-starts in delivery order.
        # Schedulers may be *more* conservative than the keyed relation
        # (class-based and sequential order more pairs); never less.
        conflicts = SmallKeyedConflicts(keys=4)
        commands = make_mixed_commands(48, write_every=3, key_space=4)
        cos = make_threaded_cos(scheduler, conflicts)
        log = run_threaded_workload(cos, commands, n_workers=4,
                                    execute_ns=20_000)
        log.assert_conflicts_ordered(commands, conflicts)

    def test_per_class_write_fifo(self, scheduler):
        # Within one conflict class, writes are FIFO in delivery order.
        conflicts = SmallKeyedConflicts(keys=3)
        commands = [write(i % 3) for i in range(18)]
        cos = make_threaded_cos(scheduler, conflicts)
        log = run_threaded_workload(cos, commands, n_workers=3)
        for key in range(3):
            per_class = [cmd.uid for cmd in commands if cmd.args[0] == key]
            started = [uid for uid in log.order if uid in set(per_class)]
            assert started == per_class, f"class {key} not FIFO"


class TestBoundedSize:
    def test_insert_blocks_when_full_and_remove_releases(self, scheduler):
        cos = make_threaded_cos(scheduler, ReadWriteConflicts(), max_size=3)
        for i in range(3):
            cos.insert(read(i))
        blocked = threading.Event()
        done = threading.Event()

        def inserter():
            blocked.set()
            cos.insert(read(99))
            done.set()

        thread = threading.Thread(target=inserter, daemon=True)
        thread.start()
        blocked.wait(timeout=5)
        assert not done.wait(timeout=0.2), "insert did not block on full graph"
        handle = cos.get()
        cos.remove(handle)
        assert done.wait(timeout=5), "insert not released by remove"
        # Drain what is left so worker threads cannot linger.
        for _ in range(3):
            cos.remove(cos.get())

    def test_invalid_max_size_rejected(self, scheduler):
        with pytest.raises(ValueError):
            make_threaded_cos(scheduler, ReadWriteConflicts(), max_size=0)


class TestBlockingGet:
    def test_get_blocks_until_insert(self, cos):
        got = []

        def getter():
            got.append(cos.command_of(cos.get()))

        thread = threading.Thread(target=getter, daemon=True)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "get returned from an empty structure"
        cmd = read(1)
        cos.insert(cmd)
        thread.join(timeout=5)
        assert got == [cmd]
