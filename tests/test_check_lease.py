"""Self-validation of the paxos-lease checking harness.

A harness that only ever passes on correct code proves nothing: the seeded
``lease-ignore-expiry`` mutant must be caught within a bounded schedule
budget, its counterexample must shrink, and the frozen replay file must
reproduce the violation deterministically (and dispatch correctly next to
COS replay files, which share the ``repro check --replay`` entry point).
"""

from __future__ import annotations

import json

import pytest

from repro.check.paxos_lease import (
    LEASE_MUTANTS,
    LeaseCheckConfig,
    LeaseHarness,
    load_lease_replay,
    replay_harness_kind,
    replay_lease,
    run_lease_check,
    run_lease_schedule,
    save_lease_replay,
    shrink_lease,
)
from repro.errors import SimulationError

BUDGET = 400


def caught_report(seed: int = 0):
    config = LeaseCheckConfig(mutant="lease-ignore-expiry")
    return config, run_lease_check(config, max_schedules=BUDGET, seed=seed)


class TestMutantCatching:
    def test_lease_ignore_expiry_is_caught_within_budget(self):
        _, report = caught_report()
        assert not report.ok, (
            f"lease-ignore-expiry escaped {BUDGET} schedules")
        assert report.violation.kind in ("lease-overlap", "stale-read")
        assert report.schedules_explored <= BUDGET

    def test_catch_is_seed_robust(self):
        for seed in (1, 2, 3):
            config = LeaseCheckConfig(mutant="lease-ignore-expiry")
            report = run_lease_check(config, max_schedules=BUDGET,
                                     seed=seed,
                                     shrink_counterexamples=False)
            assert not report.ok, f"mutant escaped under seed {seed}"

    def test_unknown_mutant_is_rejected(self):
        with pytest.raises(ValueError, match="unknown lease mutant"):
            run_lease_check(LeaseCheckConfig(mutant="nope"),
                            max_schedules=1)


class TestShrinking:
    def test_counterexample_shrinks(self):
        config, report = caught_report()
        assert report.shrunk_decisions is not None
        assert len(report.shrunk_decisions) < len(report.decisions)
        # The shrunk schedule still violates on its own.
        violation = run_lease_schedule(config, report.shrunk_decisions)
        assert violation is not None

    def test_shrink_requires_a_violating_schedule(self):
        config = LeaseCheckConfig()
        with pytest.raises(SimulationError):
            shrink_lease(config, ["tick:0.01"])


class TestReplay:
    def test_replay_reproduces_the_shrunk_violation(self, tmp_path):
        config, report = caught_report()
        path = str(tmp_path / "lease-ce.json")
        save_lease_replay(path, config, report.shrunk_decisions,
                          report.violation)
        assert replay_harness_kind(path) == "paxos-lease"
        reproduced = replay_lease(path)
        assert reproduced is not None
        assert reproduced.kind == report.violation.kind
        assert reproduced.step == report.violation.step

    def test_replay_roundtrips_config_and_decisions(self, tmp_path):
        config, report = caught_report()
        path = str(tmp_path / "lease-ce.json")
        save_lease_replay(path, config, report.shrunk_decisions,
                          report.violation)
        loaded_config, decisions, violation = load_lease_replay(path)
        assert loaded_config == config
        assert decisions == report.shrunk_decisions
        assert violation.kind == report.violation.kind

    def test_fixed_implementation_no_longer_violates(self, tmp_path):
        # Replaying a mutant counterexample against the *fixed* protocol
        # (mutant=None) must come back clean — the replay answers "is this
        # bug still there", not "was it ever".
        config, report = caught_report()
        fixed = LeaseCheckConfig()
        path = str(tmp_path / "lease-ce.json")
        save_lease_replay(path, fixed, report.shrunk_decisions,
                          report.violation)
        assert replay_lease(path) is None

    def test_cos_replay_files_are_not_claimed(self, tmp_path):
        path = str(tmp_path / "cos-ce.json")
        with open(path, "w") as handle:
            json.dump({"version": 1, "config": {}, "decisions": [],
                       "violation": {"kind": "double-get", "message": "x",
                                     "step": 1}}, handle)
        assert replay_harness_kind(path) is None
        with pytest.raises(SimulationError):
            load_lease_replay(path)


class TestHarnessDeterminism:
    def test_schedules_replay_bit_for_bit(self):
        config, report = caught_report()
        first = run_lease_schedule(config, report.decisions)
        second = run_lease_schedule(config, report.decisions)
        assert (first.kind, first.step) == (second.kind, second.step)

    def test_unknown_decisions_are_rejected(self):
        harness = LeaseHarness(LeaseCheckConfig())
        with pytest.raises(SimulationError):
            harness.apply("warp:3", step=0)

    def test_registry_is_disjoint_from_cos_mutants(self):
        from repro.check.mutants import MUTANTS

        assert not set(LEASE_MUTANTS) & set(MUTANTS)
