"""Tests for the application services (linked list, KV store, bank)."""

import pytest

from repro.apps import BankService, KVStoreService, LinkedListService
from repro.core.command import Command


def read(key):
    return Command("contains", (key,), writes=False)


def write(key):
    return Command("add", (key,), writes=True)


class TestLinkedList:
    def test_initial_population(self):
        service = LinkedListService(initial_size=100)
        assert len(service) == 100
        assert 0 in service
        assert 99 in service
        assert 100 not in service

    def test_contains(self):
        service = LinkedListService(initial_size=10)
        assert service.execute(read(5)) is True
        assert service.execute(read(50)) is False

    def test_add_new(self):
        service = LinkedListService(initial_size=3)
        assert service.execute(write(7)) is True
        assert service.execute(read(7)) is True
        assert len(service) == 4

    def test_add_duplicate(self):
        service = LinkedListService(initial_size=3)
        assert service.execute(write(1)) is False
        assert len(service) == 3

    def test_add_to_empty(self):
        service = LinkedListService()
        assert service.execute(write(5)) is True
        assert len(service) == 1

    def test_snapshot_restore_round_trip(self):
        service = LinkedListService(initial_size=5)
        service.execute(write(42))
        snapshot = service.snapshot()
        other = LinkedListService()
        other.restore(snapshot)
        assert other.snapshot() == snapshot
        assert 42 in other

    def test_snapshot_preserves_order(self):
        service = LinkedListService(initial_size=3)
        assert service.snapshot() == [0, 1, 2]
        service.execute(write(9))
        assert service.snapshot() == [0, 1, 2, 9]  # appended at the tail

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            LinkedListService().execute(Command("bogus", (1,)))

    def test_conflict_relation_is_read_write(self):
        service = LinkedListService()
        assert service.conflicts.conflicts(write(1), read(2))
        assert not service.conflicts.conflicts(read(1), read(1))

    def test_execution_cost_passthrough(self):
        assert LinkedListService(execution_cost=1e-6).execution_cost == 1e-6
        assert LinkedListService().execution_cost == 0.0


class TestKVStore:
    def test_put_get(self):
        service = KVStoreService()
        assert service.execute(KVStoreService.put("k", 1)) is None
        assert service.execute(KVStoreService.get("k")) == 1

    def test_put_returns_previous(self):
        service = KVStoreService()
        service.execute(KVStoreService.put("k", 1))
        assert service.execute(KVStoreService.put("k", 2)) == 1

    def test_delete(self):
        service = KVStoreService()
        service.execute(KVStoreService.put("k", 1))
        assert service.execute(KVStoreService.delete("k")) == 1
        assert service.execute(KVStoreService.get("k")) is None
        assert service.execute(KVStoreService.delete("k")) is None

    def test_cas(self):
        service = KVStoreService()
        service.execute(KVStoreService.put("k", 1))
        assert service.execute(KVStoreService.cas("k", 1, 2)) is True
        assert service.execute(KVStoreService.cas("k", 1, 3)) is False
        assert service.execute(KVStoreService.get("k")) == 2

    def test_keyed_conflicts(self):
        service = KVStoreService()
        put_a = KVStoreService.put("a", 1)
        put_b = KVStoreService.put("b", 1)
        get_a = KVStoreService.get("a")
        assert service.conflicts.conflicts(put_a, get_a)
        assert not service.conflicts.conflicts(put_a, put_b)

    def test_snapshot_restore(self):
        service = KVStoreService()
        service.execute(KVStoreService.put("k", 1))
        other = KVStoreService()
        other.restore(service.snapshot())
        assert other.execute(KVStoreService.get("k")) == 1

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            KVStoreService().execute(Command("incr", ("k",)))


class TestBank:
    def test_deposit_withdraw(self):
        service = BankService()
        assert service.execute(BankService.deposit("a", 100)) == 100
        assert service.execute(BankService.withdraw("a", 30)) == 70
        assert service.execute(BankService.balance("a")) == 70

    def test_overdraft_refused(self):
        service = BankService()
        service.execute(BankService.deposit("a", 10))
        assert service.execute(BankService.withdraw("a", 50)) is None
        assert service.execute(BankService.balance("a")) == 10

    def test_transfer(self):
        service = BankService()
        service.execute(BankService.deposit("a", 100))
        assert service.execute(BankService.transfer("a", "b", 40)) is True
        assert service.execute(BankService.balance("a")) == 60
        assert service.execute(BankService.balance("b")) == 40

    def test_transfer_insufficient(self):
        service = BankService()
        assert service.execute(BankService.transfer("a", "b", 1)) is False

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            BankService().execute(BankService.deposit("a", -5))

    def test_money_conservation(self):
        service = BankService()
        service.execute(BankService.deposit("a", 500))
        service.execute(BankService.deposit("b", 500))
        service.execute(BankService.transfer("a", "b", 123))
        service.execute(BankService.transfer("b", "a", 77))
        assert service.total_money() == 1000

    def test_conflict_scoping(self):
        relation = BankService().conflicts
        transfer_ab = BankService.transfer("a", "b", 1)
        transfer_cd = BankService.transfer("c", "d", 1)
        balance_a = BankService.balance("a")
        balance_c = BankService.balance("c")
        assert relation.conflicts(transfer_ab, balance_a)
        assert not relation.conflicts(transfer_ab, transfer_cd)
        assert not relation.conflicts(transfer_ab, balance_c)
        assert not relation.conflicts(balance_a, balance_a)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            BankService().execute(Command("audit", ("a",)))
