"""Tests of the Multi-Paxos fast path: cumulative acks, leases, linger.

Covers the three mechanisms of the ordering-layer overhaul
(docs/ordering.md):

- **cumulative acks**: ``Accepted.accepted_up_to`` and the ``commit_up_to``
  frontier replace the per-instance Decide round;
- **leader leases**: heartbeat-ack grants let the leader serve read-only
  payloads locally (``submit_read`` -> ``DeliverRead``), with recovery-debt
  and expiry guards;
- **batch linger**: a Nagle-style timer holds sub-full batches open while
  earlier instances are in flight.

Plus a seeded differential check that cumulative and per-instance modes
deliver identical histories under message loss/duplication/reordering, and
a clean sweep of the lease model-checking harness (repro.check.paxos_lease).
"""

from __future__ import annotations

import random
from typing import Any, List, Tuple

from repro.broadcast import (
    Accept,
    Accepted,
    Decide,
    Deliver,
    DeliverRead,
    Forward,
    Heartbeat,
    HeartbeatAck,
    MultiPaxos,
    Send,
    SetTimer,
)
from repro.broadcast.paxos import HEARTBEAT_TIMER, LINGER_TIMER
from repro.check.paxos_lease import LeaseCheckConfig, run_lease_check


def sends(actions, msg_type=None):
    picked = [a for a in actions if isinstance(a, Send)]
    if msg_type is not None:
        picked = [a for a in picked if isinstance(a.msg, msg_type)]
    return picked


def delivers(actions):
    return [(a.instance, a.payload) for a in actions if isinstance(a, Deliver)]


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def leased_pair() -> Tuple[MultiPaxos, MultiPaxos, ManualClock]:
    """Leader 0 + follower 1 of a trio sharing one manual clock."""
    clock = ManualClock()
    leader = MultiPaxos(0, 3, lease_duration=1.0, lease_margin=0.1,
                        clock=clock)
    follower = MultiPaxos(1, 3, lease_duration=1.0, lease_margin=0.1,
                          clock=clock)
    return leader, follower, clock


def grant_lease(leader: MultiPaxos, follower: MultiPaxos) -> None:
    """One heartbeat round-trip: follower grants, leader records."""
    (beat,) = [a for a in sends(leader.on_timer(HEARTBEAT_TIMER), Heartbeat)
               if a.dst == follower.node_id]
    (ack,) = sends(follower.on_message(leader.node_id, beat.msg),
                   HeartbeatAck)
    leader.on_message(follower.node_id, ack.msg)


class TestCumulativeAcks:
    def test_follower_learns_from_accept_commit_frontier(self):
        leader = MultiPaxos(0, 3, batch_size=1)
        follower = MultiPaxos(1, 3)
        first = sends(leader.submit("a"), Accept)[0].msg
        follower.on_message(0, first)
        leader.on_message(1, Accepted((0, 0), 0, 0))   # decides instance 0
        second = sends(leader.submit("b"), Accept)[0].msg
        assert second.commit_up_to == 0                # frontier piggybacked
        actions = follower.on_message(0, second)
        assert delivers(actions) == [(0, ("a",))]      # learned, no Decide

    def test_heartbeat_frontier_replaces_decide(self):
        leader = MultiPaxos(0, 3, batch_size=1)
        follower = MultiPaxos(1, 3)
        accept = sends(leader.submit("a"), Accept)[0].msg
        follower.on_message(0, accept)
        decide_actions = leader.on_message(1, Accepted((0, 0), 0, 0))
        assert sends(decide_actions, Decide) == []     # no Decide round
        (beat,) = [a for a in
                   sends(leader.on_timer(HEARTBEAT_TIMER), Heartbeat)
                   if a.dst == 1]
        assert beat.msg.decided_up_to == 1
        actions = follower.on_message(0, beat.msg)
        assert delivers(actions) == [(0, ("a",))]

    def test_one_ack_covers_a_prefix_of_instances(self):
        leader = MultiPaxos(0, 3, batch_size=1, pipeline=8)
        for token in "abcd":
            leader.submit(token)
        # A single cumulative ack from one follower decides all four.
        actions = leader.on_message(1, Accepted((0, 0), 3, 3))
        assert [inst for inst, _ in delivers(actions)] == [0, 1, 2, 3]

    def test_heartbeat_ack_doubles_as_cumulative_ack(self):
        # The Accepted reply was lost; the next heartbeat ack's
        # accepted_up_to must still decide the in-flight instance.
        leader, follower, _ = leased_pair()
        accept = sends(leader.submit("v"), Accept)[0].msg
        follower.on_message(0, accept)                 # reply dropped
        (beat,) = [a for a in
                   sends(leader.on_timer(HEARTBEAT_TIMER), Heartbeat)
                   if a.dst == 1]
        hb_actions = follower.on_message(0, beat.msg)
        (ack,) = sends(hb_actions, HeartbeatAck)
        assert ack.msg.accepted_up_to == 0
        actions = leader.on_message(1, ack.msg)
        assert delivers(actions) == [(0, ("v",))]


class TestLeaseReads:
    def test_read_served_locally_under_valid_lease(self):
        leader, follower, _ = leased_pair()
        grant_lease(leader, follower)
        actions = leader.submit_read("r")
        assert actions == [DeliverRead("r")]
        assert leader.lease_reads_served == 1

    def test_read_falls_back_without_quorum_of_grants(self):
        leader, _, _ = leased_pair()
        actions = leader.submit_read("r")              # no acks yet
        assert not any(isinstance(a, DeliverRead) for a in actions)
        assert sends(actions, Accept)                  # ordered path

    def test_read_falls_back_after_expiry(self):
        leader, follower, clock = leased_pair()
        grant_lease(leader, follower)
        clock.advance(5.0)                             # duration is 1.0
        actions = leader.submit_read("r")
        assert not any(isinstance(a, DeliverRead) for a in actions)

    def test_read_falls_back_on_follower(self):
        _, follower, _ = leased_pair()
        actions = follower.submit_read("r")
        assert sends(actions, Forward)                 # ordered path

    def test_recovery_debt_blocks_reads_until_delivered(self):
        # A freshly elected leader re-proposes a constrained value; until
        # that instance is delivered locally, an instance decided under the
        # old ballot may have executed elsewhere — reads must wait.
        clock = ManualClock()
        nodes = [MultiPaxos(i, 3, lease_duration=1.0, lease_margin=0.1,
                            clock=clock) for i in range(3)]
        nodes[2].on_message(0, Accept((0, 0), 0, ("old",)))
        candidate = nodes[1]
        candidate.start()
        candidate.on_timer("leader_check")             # grace
        campaign = candidate.on_timer("leader_check")
        prepare = [a for a in sends(campaign) if a.dst == 2][0].msg
        promise = sends(nodes[2].on_message(1, prepare))[0].msg
        actions = candidate.on_message(2, promise)
        assert candidate.is_leader
        assert candidate._recover_floor == 1
        # Grant the new leader a quorum lease; reads must STILL fall back.
        for action in sends(actions, Accept):
            if action.dst != 2:
                continue
            reply = sends(nodes[2].on_message(1, action.msg), Accepted)
        grant_lease(candidate, nodes[2])
        assert candidate._lease_valid()
        read = candidate.submit_read("r")
        served = any(isinstance(a, DeliverRead) for a in read)
        if candidate.next_deliver < candidate._recover_floor:
            assert not served, "read served with recovery debt outstanding"
        # Clear the debt: deliver the re-proposed instance, then serve.
        candidate.on_message(2, reply[0].msg)
        assert candidate.next_deliver >= candidate._recover_floor
        assert candidate.submit_read("r2") == [DeliverRead("r2")]

    def test_granted_follower_suppresses_campaign(self):
        leader, follower, clock = leased_pair()
        follower.start()
        grant_lease(leader, follower)                  # grant held
        follower.on_timer("leader_check")              # grace
        actions = follower.on_timer("leader_check")
        assert sends(actions) == [], "campaigned against an active grant"
        clock.advance(5.0)                             # grant expires
        follower.on_timer("leader_check")
        actions = follower.on_timer("leader_check")
        assert any(sends(actions)), "expiry must re-enable campaigning"


class TestBatchLinger:
    def _fills(self, node: MultiPaxos, actions) -> List[int]:
        return [len(a.msg.value) for a in sends(actions, Accept)
                if a.dst == 1]

    def test_linger_holds_subfull_batches_while_in_flight(self):
        clock = ManualClock()
        node = MultiPaxos(0, 3, batch_size=8, propose_linger=0.02,
                          lease_duration=0.0, clock=clock)
        fills = self._fills(node, node.submit("a"))    # idle: goes out now
        assert fills == [1]
        armed = []
        for token in "bcde":
            actions = node.submit(token)
            assert self._fills(node, actions) == []    # lingering
            armed += [a for a in actions if isinstance(a, SetTimer)
                      and a.name == LINGER_TIMER]
        assert len(armed) == 1, "linger timer must be armed exactly once"
        fills = self._fills(node, node.on_timer(LINGER_TIMER))
        assert fills == [4], "linger expiry must flush the held batch"

    def test_without_linger_every_submit_proposes(self):
        node = MultiPaxos(0, 3, batch_size=8, propose_linger=0.0,
                          lease_duration=0.0)
        fills = []
        for token in "abcde":
            fills += self._fills(node, node.submit(token))
        assert fills == [1, 1, 1, 1, 1]

    def test_full_batch_overrides_linger(self):
        node = MultiPaxos(0, 3, batch_size=2, propose_linger=0.02,
                          lease_duration=0.0)
        node.submit("a")
        node.submit("b")                               # 1 pending < batch
        fills = self._fills(node, node.submit("c"))    # 2 pending = batch
        assert fills == [2], "a full batch must not wait for the linger"


class _DiffDriver:
    """Seeded lossy-network driver for the mode-differential test."""

    def __init__(self, cumulative: bool, seed: int):
        self.nodes = [MultiPaxos(i, 3, batch_size=2, pipeline=4,
                                 lease_duration=0.0,
                                 cumulative_acks=cumulative)
                      for i in range(3)]
        self.rng = random.Random(seed)
        self.network: List[Tuple[int, int, Any]] = []
        self.delivered: List[List[Any]] = [[], [], []]
        self.submitted: List[str] = []
        for node_id, node in enumerate(self.nodes):
            self._absorb(node_id, node.start())

    def _absorb(self, node_id: int, actions) -> None:
        for action in actions:
            if isinstance(action, Send):
                self.network.append((node_id, action.dst, action.msg))
            elif isinstance(action, Deliver):
                self.delivered[node_id].extend(action.payload)

    def run(self, steps: int = 400) -> None:
        # Decisions are drawn from the rng *without* peeking at network
        # state, so both ack modes see the exact same decision stream (a
        # deliver/drop/dup against an empty queue is a no-op); they must
        # then produce identical delivered histories.
        for _ in range(steps):
            roll = self.rng.random()
            index = self.rng.randrange(512)
            if roll < 0.50:
                if self.network:
                    src, dst, msg = self.network.pop(
                        index % len(self.network))
                    self._absorb(dst, self.nodes[dst].on_message(src, msg))
            elif roll < 0.60:
                if self.network:
                    self.network.pop(index % len(self.network))
            elif roll < 0.65:
                if self.network and len(self.network) < 512:
                    self.network.append(
                        self.network[index % len(self.network)])
            elif roll < 0.80:
                self._absorb(0, self.nodes[0].on_timer(HEARTBEAT_TIMER))
            else:
                token = f"w{len(self.submitted)}"
                self.submitted.append(token)
                self._absorb(0, self.nodes[0].submit(token))

    def drain(self) -> None:
        """Heartbeat retransmission + full delivery until quiescent."""
        for _ in range(200):
            self._absorb(0, self.nodes[0].on_timer(HEARTBEAT_TIMER))
            while self.network:
                src, dst, msg = self.network.pop(0)
                self._absorb(dst, self.nodes[dst].on_message(src, msg))
            if all(len(seq) == len(self.submitted)
                   for seq in self.delivered):
                return
        raise AssertionError(
            f"drain did not converge: delivered "
            f"{[len(s) for s in self.delivered]} of {len(self.submitted)}")


class TestCumulativeDifferential:
    def test_modes_deliver_identical_histories_under_loss(self):
        for seed in range(8):
            histories = {}
            for cumulative in (True, False):
                driver = _DiffDriver(cumulative, seed)
                driver.run()
                driver.drain()
                for seq in driver.delivered[1:]:
                    assert seq == driver.delivered[0], (
                        f"replicas diverged (cumulative={cumulative}, "
                        f"seed={seed})")
                assert driver.delivered[0] == driver.submitted, (
                    f"history != submission order (cumulative={cumulative},"
                    f" seed={seed})")
                histories[cumulative] = driver.delivered[0]
            assert histories[True] == histories[False]

    def test_cumulative_mode_sends_fewer_messages(self):
        # Lossless sequential run: the Decide round is pure overhead.
        totals = {}
        for cumulative in (True, False):
            driver = _DiffDriver(cumulative, seed=99)
            for index in range(50):
                token = f"w{index}"
                driver.submitted.append(token)
                driver._absorb(0, driver.nodes[0].submit(token))
                while driver.network:
                    src, dst, msg = driver.network.pop(0)
                    driver._absorb(dst, driver.nodes[dst].on_message(src, msg))
            driver.drain()
            totals[cumulative] = sum(n.msgs_sent for n in driver.nodes)
        assert totals[True] < totals[False]


class TestLeaseHarnessCleanSweep:
    def test_no_violation_across_seeded_random_walks(self):
        # The lease-overlap / stale-read / divergence oracles must stay
        # silent on the real implementation (the lease-ignore-expiry
        # mutant run lives in tests/test_check_lease.py).
        report = run_lease_check(LeaseCheckConfig(), max_schedules=150,
                                 seed=11, shrink_counterexamples=False)
        assert report.ok, report.describe()

    def test_no_violation_with_linger_and_per_instance_acks(self):
        config = LeaseCheckConfig(propose_linger=0.005,
                                  cumulative_acks=False,
                                  schedule_length=200)
        report = run_lease_check(config, max_schedules=100, seed=12,
                                 shrink_counterexamples=False)
        assert report.ok, report.describe()
