"""Tests for the replica execution engines (parallel + sequential)."""

import threading
import time

import pytest

from repro.apps import KVStoreService, LinkedListService
from repro.core.command import Command
from repro.smr.replica import ParallelReplica, SequentialReplica


def read(key):
    return Command("contains", (key,), writes=False)


def write(key):
    return Command("add", (key,), writes=True)


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


@pytest.fixture
def responses():
    collected = []
    lock = threading.Lock()

    def callback(command, response, replica_id):
        with lock:
            collected.append((command, response, replica_id))

    callback.collected = collected
    return callback


class TestParallelReplica:
    def test_delivers_and_executes(self, responses):
        replica = ParallelReplica(
            0, LinkedListService(initial_size=10), workers=3,
            on_response=responses)
        replica.start()
        try:
            replica.on_deliver(0, (read(3), write(50), read(50)))
            assert wait_for(lambda: replica.executed == 3)
            assert replica.executed == 3
        finally:
            replica.stop()

    def test_nested_batches_flattened(self, responses):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=2, on_response=responses)
        replica.start()
        try:
            replica.on_deliver(0, ((read(1), read(2)), (read(3),)))
            assert wait_for(lambda: replica.executed == 3)
        finally:
            replica.stop()

    def test_single_command_payload(self, responses):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=1, on_response=responses)
        replica.start()
        try:
            replica.on_deliver(0, read(1))
            assert wait_for(lambda: replica.executed == 1)
        finally:
            replica.stop()

    def test_dedup_skips_duplicate_request(self, responses):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=2, on_response=responses)
        replica.start()
        try:
            command = Command("add", (7,), client_id="c1", request_id=1,
                              writes=True)
            replica.on_deliver(0, (command,))
            assert wait_for(lambda: replica.executed == 1)
            replica.on_deliver(1, (command,))
            time.sleep(0.1)
            assert replica.executed == 1  # not re-executed
            # But the cached response was resent.
            resent = [r for c, r, _ in responses.collected
                      if c.client_id == "c1"]
            assert len(resent) == 2
            assert resent[0] == resent[1] is True
        finally:
            replica.stop()

    def test_dedup_is_per_client(self, responses):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=2, on_response=responses)
        replica.start()
        try:
            a = Command("add", (1,), client_id="a", request_id=1, writes=True)
            b = Command("add", (2,), client_id="b", request_id=1, writes=True)
            replica.on_deliver(0, (a, b))
            assert wait_for(lambda: replica.executed == 2)
        finally:
            replica.stop()

    def test_cached_response_api(self, responses):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=1, on_response=responses)
        replica.start()
        try:
            command = Command("contains", (1,), client_id="c", request_id=3,
                              writes=False)
            replica.on_deliver(0, (command,))
            assert wait_for(
                lambda: replica.cached_response("c") is not None)
            assert replica.cached_response("c") == (3, True)
            assert replica.cached_response("nobody") is None
        finally:
            replica.stop()

    def test_stop_drains_workers(self):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=4)
        replica.start()
        replica.stop()
        assert all(not t.is_alive() for t in replica._threads)

    def test_stop_idempotent(self):
        replica = ParallelReplica(0, LinkedListService(), workers=2)
        replica.start()
        replica.stop()
        replica.stop()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelReplica(0, LinkedListService(), workers=0)

    def test_keyed_service_parallel_consistency(self, responses):
        replica = ParallelReplica(0, KVStoreService(), workers=4,
                                  on_response=responses)
        replica.start()
        try:
            commands = []
            for index in range(200):
                key = f"k{index % 5}"
                commands.append(Command("put", (key, index), writes=True))
            replica.on_deliver(0, tuple(commands))
            assert wait_for(lambda: replica.executed == 200)
            # Per-key writes are ordered, so the final value per key is the
            # last delivered write for that key.
            snapshot = replica.service.snapshot()
            assert snapshot == {f"k{i}": 195 + i for i in range(5)}
        finally:
            replica.stop()


class TestSequentialReplica:
    def test_executes_in_delivery_order(self, responses):
        replica = SequentialReplica(0, KVStoreService(),
                                    on_response=responses)
        replica.start()
        try:
            commands = tuple(
                Command("put", ("k", index), writes=True)
                for index in range(50)
            )
            replica.on_deliver(0, commands)
            assert wait_for(lambda: replica.executed == 50)
            assert replica.service.snapshot() == {"k": 49}
            order = [response for _, response, _ in responses.collected]
            # put returns the previous value: strict sequence 0..48.
            assert order == [None] + list(range(49))
        finally:
            replica.stop()

    def test_has_single_worker(self):
        replica = SequentialReplica(0, KVStoreService())
        assert replica.workers == 1


class _GatedWriteService(LinkedListService):
    """Writes block on an event so tests can hold the pipeline busy."""

    def __init__(self):
        super().__init__(initial_size=5)
        self.release = threading.Event()

    def execute(self, command):
        if command.writes:
            assert self.release.wait(5.0), "gated write never released"
        return super().execute(command)


class TestLocalReads:
    def test_idle_pipeline_executes_read_inline(self, responses):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=2, on_response=responses)
        replica.start()
        try:
            replica.on_local_read((read(1), read(99)))
            # Inline execution is synchronous: responses are already
            # delivered when the call returns, no worker handoff happened.
            assert [r for _, r, _ in responses.collected] == [True, False]
            assert replica.executed == 2
            # A local read has no position in the total order.
            assert replica.last_instance == -1
        finally:
            replica.stop()

    def test_busy_pipeline_orders_read_after_conflicting_write(
            self, responses):
        service = _GatedWriteService()
        replica = ParallelReplica(0, service, workers=2,
                                  on_response=responses)
        replica.start()
        try:
            replica.on_deliver(0, (write(50),))
            assert wait_for(lambda: replica._scheduled == 1)
            # The write is parked in a worker: the read must take the COS
            # path and wait behind it (contains/add conflict).
            replica.on_local_read((read(50),))
            time.sleep(0.05)
            assert responses.collected == []
            service.release.set()
            assert wait_for(lambda: len(responses.collected) == 2)
            # The read executed after the write it conflicts with.
            assert responses.collected[1][1] is True
        finally:
            service.release.set()
            replica.stop()

    def test_inline_read_fills_dedup_cache(self, responses):
        replica = ParallelReplica(0, LinkedListService(initial_size=5),
                                  workers=1, on_response=responses)
        replica.start()
        try:
            command = Command("contains", (2,), client_id="c", request_id=7,
                              writes=False)
            replica.on_local_read((command,))
            assert replica.cached_response("c") == (7, True)
            # Retransmission is answered from the cache, not re-executed.
            replica.on_local_read((command,))
            assert replica.executed == 1
            assert len(responses.collected) == 2
        finally:
            replica.stop()
