"""Differential fuzz: indexed / lock-free / early COS vs a spec model.

The indexed structure (repro.core.indexed) claims its per-class index
links the *transitive reduction* of the lock-free graph's "every live
conflicting predecessor" edge set, and that ready-sets are therefore
identical at every point.  These tests check both claims directly by
running the two graph layers in lockstep over seeded random schedules:

- one pseudo-random script of inserts and removals is generated against
  a pure-Python specification model (removals only ever target
  spec-ready commands, mirroring real execution where a command is
  removed after it executed, hence after its dependencies were removed);
- both implementations execute the *same* script (same ``Command``
  objects, same order) on the deterministic simulator, observing after
  every operation (a) how many commands the operation made ready and
  (b) the exact set of ready commands;
- both observation streams must equal the model's prediction — and
  hence each other.

The early/static scheduler (repro.core.early) joins as the third way,
with a *weaker* contract: early scheduling is conservative (commands of
different classes sharing a lane serialize), so its ready set must be a
**subset** of the spec model's at every step — never a superset, which
would mean a conflicting pair was left unordered.  Because removals must
target ready commands and early's ready set is the smallest, the script
is generated *online* against the early structure (every early-ready
command is spec-ready, so the spec and the exact schedulers can follow
the same script), then replayed through the spec model and the indexed
COS.  Draining to empty doubles as the deadlock-freedom check.

The edge-level claim is checked as a sandwich, per inserted command::

    direct index edges  ⊆  lock-free dependency set  ⊆
        closure of direct edges over live-at-insert nodes

The middle term is every live conflicting predecessor (what lfInsert's
full traversal records); the closure may legitimately contain extra
*non-conflicting* commands (a multi-class writer chains otherwise
unrelated classes together), which is harmless: those are ordered
anyway, and the ready-set equality above proves the reduction loses no
scheduling freedom.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Set, Tuple

import pytest

from repro.core.command import (
    Command,
    ConflictRelation,
    KeyedConflicts,
    ReadWriteConflicts,
)
from repro.core.indexed import IndexedCOS
from repro.core.lock_free import LockFreeCOS
from repro.core.node import READY
from repro.sim import SimRuntime, Simulator

MAX_SIZE = 5
STEPS = 150
KEY_SPACE = 4
SEEDS = range(8)

RELATIONS = {
    "keyed": KeyedConflicts,          # many classes, reads commute per key
    "read-write": ReadWriteConflicts,  # one class, reads commute globally
}


# ------------------------------------------------------------- spec model


class SpecModel:
    """Arrival-ordered pairwise-conflict DAG over live commands."""

    def __init__(self, conflicts: ConflictRelation):
        self._conflicts = conflicts
        self.live: List[Command] = []
        #: uid -> conflicting commands live at this command's insert (the
        #: dependency set the lock-free full traversal records).
        self.deps: Dict[int, Set[int]] = {}

    def ready_uids(self) -> FrozenSet[int]:
        live = {cmd.uid for cmd in self.live}
        return frozenset(cmd.uid for cmd in self.live
                         if not (self.deps[cmd.uid] & live))

    def insert(self, cmd: Command) -> int:
        before = self.ready_uids()
        self.deps[cmd.uid] = {
            live.uid for live in self.live
            if self._conflicts.conflicts(live, cmd)}
        self.live.append(cmd)
        return len(self.ready_uids() - before)

    def remove(self, uid: int) -> int:
        assert uid in self.ready_uids(), "script removes only ready commands"
        before = self.ready_uids() - {uid}
        self.live = [cmd for cmd in self.live if cmd.uid != uid]
        return len(self.ready_uids() - before)


def _make_script(seed: int, conflicts: ConflictRelation):
    """One insert/remove script plus the model's expected observations."""
    rng = random.Random(seed)
    model = SpecModel(conflicts)
    script: List[Tuple[str, object]] = []
    expected: List[Tuple[int, FrozenSet[int]]] = []
    while len(script) < STEPS:
        ready = sorted(model.ready_uids())
        can_insert = len(model.live) < MAX_SIZE
        if can_insert and (not ready or rng.random() < 0.55):
            writes = rng.random() < 0.4
            key = rng.randrange(KEY_SPACE)
            cmd = Command("add" if writes else "contains", (key,),
                          writes=writes)
            freed = model.insert(cmd)
            script.append(("insert", cmd))
        else:
            uid = rng.choice(ready)
            freed = model.remove(uid)
            script.append(("remove", uid))
        expected.append((freed, model.ready_uids()))
    # Drain: remove everything so the full lifecycle is exercised.
    while model.live:
        uid = rng.choice(sorted(model.ready_uids()))
        freed = model.remove(uid)
        script.append(("remove", uid))
        expected.append((freed, model.ready_uids()))
    return script, expected


# ------------------------------------------------------------ impl drivers


def _indexed_ready_uids(cos: IndexedCOS) -> FrozenSet[int]:
    """Unsynchronized walk of the ready FIFO (never dequeued here)."""
    out = set()
    node = cos._q_head.value.qnext.value
    while node is not None:
        if node.st.value == READY:
            out.add(node.cmd.uid)
        node = node.qnext.value
    return frozenset(out)


def _lock_free_ready_uids(cos: LockFreeCOS) -> FrozenSet[int]:
    out = set()
    node = cos._head.value
    while node is not None:
        if node.st.value == READY:
            out.add(node.cmd.uid)
        node = node.nxt.value
    return frozenset(out)


def _find_indexed_node(cos: IndexedCOS, cmd: Command):
    """Right after ``cmd``'s insert it sits in one of its class entries."""
    for class_key, _writes in cos._conflicts.footprint(cmd):
        writer, readers = cos._classes[class_key].value
        candidates = readers if writer is None else (writer,) + readers
        for node in candidates:
            if node.cmd.uid == cmd.uid:
                return node
    raise AssertionError(f"{cmd!r} not present in its own index entries")


def _find_lock_free_node(cos: LockFreeCOS, uid: int):
    node = cos._head.value
    while node is not None:
        if node.cmd.uid == uid:
            return node
        node = node.nxt.value
    raise AssertionError(f"uid {uid} not on the arrival list")


def _drive(cos, script, insert_op, remove_op, find_node, ready_uids,
           direct_edges=None):
    """Run the script to completion on the simulator; observe every op."""
    observed: List[Tuple[int, FrozenSet[int]]] = []
    by_uid = {}

    def program():
        for action, arg in script:
            if action == "insert":
                freed = yield from insert_op(arg)
                node = find_node(cos, arg)
                by_uid[arg.uid] = node
                if direct_edges is not None:
                    direct_edges[arg.uid] = {
                        pred.cmd.uid for pred in node.deps_dbg}
            else:
                freed = yield from remove_op(by_uid.pop(arg))
            observed.append((freed, ready_uids(cos)))

    sim = cos._runtime._sim if hasattr(cos._runtime, "_sim") else None
    cos._runtime.spawn(program(), "driver")
    sim.run()
    assert len(observed) == len(script), "driver deadlocked mid-script"
    return observed


def _run_indexed(script, conflicts, direct_edges=None):
    sim = Simulator()
    runtime = SimRuntime(sim)
    cos = IndexedCOS(runtime, conflicts, MAX_SIZE)
    return _drive(cos, script, cos._idx_insert, cos._idx_remove,
                  _find_indexed_node, _indexed_ready_uids,
                  direct_edges=direct_edges), cos


def _run_lock_free(script, conflicts):
    sim = Simulator()
    runtime = SimRuntime(sim)
    cos = LockFreeCOS(runtime, conflicts, MAX_SIZE)

    def find(cos_, arg):
        return _find_lock_free_node(cos_, arg.uid)

    return _drive(cos, script, cos._lf_insert, cos._lf_remove,
                  find, _lock_free_ready_uids), cos


# ------------------------------------------------------------------- tests


@pytest.mark.parametrize("relation", sorted(RELATIONS))
@pytest.mark.parametrize("seed", SEEDS)
def test_ready_sets_and_freed_counts_match(relation, seed):
    conflicts = RELATIONS[relation]()
    script, expected = _make_script(seed, conflicts)
    observed_indexed, _ = _run_indexed(script, conflicts)
    observed_lock_free, _ = _run_lock_free(script, conflicts)
    for step, (want, got_idx, got_lf) in enumerate(
            zip(expected, observed_indexed, observed_lock_free)):
        action, arg = script[step]
        label = f"step {step} ({action} {arg!r}) [{relation} seed {seed}]"
        assert got_idx == want, f"indexed diverged from spec at {label}"
        assert got_lf == want, f"lock-free diverged from spec at {label}"


@pytest.mark.parametrize("seed", SEEDS)
def test_index_edges_are_a_transitive_reduction(seed):
    """direct ⊆ lock-free deps ⊆ closure(direct) over live nodes."""
    conflicts = KeyedConflicts()
    script, _ = _make_script(seed, conflicts)
    direct_edges: Dict[int, Set[int]] = {}
    _run_indexed(script, conflicts, direct_edges=direct_edges)

    # Replay the model to recover, per insert, the live set and the
    # lock-free dependency set at that moment.
    model = SpecModel(conflicts)
    for action, arg in script:
        if action != "insert":
            model.remove(arg)
            continue
        live_before = {cmd.uid for cmd in model.live}
        model.insert(arg)
        lf_deps = model.deps[arg.uid]
        direct = direct_edges[arg.uid]
        assert direct <= lf_deps, (
            f"index linked a non-conflicting or dead predecessor for "
            f"{arg!r}: {direct - lf_deps}")
        # BFS closure of direct edges through nodes live at insert time.
        closure: Set[int] = set()
        frontier = list(direct & live_before)
        while frontier:
            uid = frontier.pop()
            if uid in closure:
                continue
            closure.add(uid)
            frontier.extend(direct_edges[uid] & live_before)
        assert lf_deps <= closure, (
            f"conflicting predecessor unordered for {arg!r}: "
            f"{lf_deps - closure} not reachable through the index edges")


# --------------------------------------------------- three-way: early COS


EARLY_WORKERS = 3


def _find_early_node(cos, uid):
    """A live early node sits in at least one of its lanes."""
    for queue in cos._lanes:
        for node in queue:
            if node.cmd.uid == uid:
                return node
    raise AssertionError(f"uid {uid} not in any lane")


def _drive_early_online(seed, conflicts, cos_cls):
    """Generate and run one script *against the early structure*.

    Removals are drawn from early's own ready set (the most conservative
    of the three, so the spec model and the exact schedulers can replay
    the identical script).  Returns the script plus early's ready set
    observed after every operation.
    """
    from repro.core.early import EarlyConfig

    sim = Simulator()
    runtime = SimRuntime(sim)
    cos = cos_cls(runtime, conflicts, MAX_SIZE,
                  config=EarlyConfig(workers=EARLY_WORKERS))
    rng = random.Random(seed)
    script: List[Tuple[str, object]] = []
    early_ready: List[FrozenSet[int]] = []

    def program():
        live = 0
        while len(script) < STEPS or live:
            ready = sorted(cos.ready_uids_unsafe())
            draining = len(script) >= STEPS
            can_insert = live < MAX_SIZE and not draining
            if can_insert and (not ready or rng.random() < 0.55):
                writes = rng.random() < 0.4
                key = rng.randrange(KEY_SPACE)
                cmd = Command("add" if writes else "contains", (key,),
                              writes=writes)
                yield from cos._early_insert(cmd)
                script.append(("insert", cmd))
                live += 1
            else:
                assert ready, "early COS deadlocked: live commands, none ready"
                uid = rng.choice(ready)
                yield from cos._early_remove(_find_early_node(cos, uid))
                script.append(("remove", uid))
                live -= 1
            early_ready.append(frozenset(cos.ready_uids_unsafe()))

    runtime.spawn(program(), "early-driver")
    sim.run()
    depths, ready_len = cos.lane_stats_unsafe()
    assert set(depths) == {0} and ready_len == 0, (
        "early structure not drained: the script lost a command")
    return script, early_ready


@pytest.mark.parametrize("relation", sorted(RELATIONS))
@pytest.mark.parametrize("seed", SEEDS)
def test_early_ready_sets_are_spec_subsets(relation, seed):
    """Three-way lockstep: early ⊆ spec, indexed == spec, same script."""
    from repro.core.early import EarlyCOS

    conflicts = RELATIONS[relation]()
    script, early_ready = _drive_early_online(seed, conflicts, EarlyCOS)

    # Replay on the spec model: early admits only spec-legal states.
    model = SpecModel(conflicts)
    expected: List[Tuple[int, FrozenSet[int]]] = []
    for step, ((action, arg), got_early) in enumerate(
            zip(script, early_ready)):
        label = f"step {step} ({action} {arg!r}) [{relation} seed {seed}]"
        if action == "insert":
            freed = model.insert(arg)
        else:
            assert arg in model.ready_uids(), (
                f"early handed out a command the spec had not "
                f"released at {label}")
            freed = model.remove(arg)
        expected.append((freed, model.ready_uids()))
        assert got_early <= model.ready_uids(), (
            f"early ready set is not a spec subset at {label}: "
            f"{set(got_early) - model.ready_uids()} released too soon")
    assert not model.live, "script did not drain the spec model"

    # Replay on the exact indexed scheduler: full equality with the spec.
    observed_indexed, _ = _run_indexed(script, conflicts)
    for step, (want, got_idx) in enumerate(zip(expected, observed_indexed)):
        action, arg = script[step]
        assert got_idx == want, (
            f"indexed diverged from spec at step {step} "
            f"({action} {arg!r}) [{relation} seed {seed}]")


def test_skip_barrier_mutant_breaks_the_subset_invariant():
    """EarlySkipBarrierCOS releases commands the spec still orders.

    Under the read/write relation every class spreads over all lanes, so
    writes must barrier; the mutant enqueues them in one lane only and
    its ready set stops being a subset of the spec's — exactly the
    violation repro.check pins as conflict-order.
    """
    from repro.check.mutants import EarlySkipBarrierCOS

    conflicts_cls = ReadWriteConflicts
    diverged = 0
    for seed in SEEDS:
        script, early_ready = _drive_early_online(
            seed, conflicts_cls(), EarlySkipBarrierCOS)
        model = SpecModel(conflicts_cls())
        for (action, arg), got_early in zip(script, early_ready):
            if action == "insert":
                model.insert(arg)
            else:
                if arg not in model.ready_uids():
                    diverged += 1  # mutant released it before the spec did
                    break
                model.remove(arg)
            if not got_early <= model.ready_uids():
                diverged += 1
                break
    assert diverged > 0, (
        "skip-barrier mutant indistinguishable from spec; "
        "the subset check has no teeth")


def test_mutant_breaks_the_differential_lockstep():
    """The seeded checker mutant also fails this harness (cross-check)."""
    from repro.check.mutants import IndexedSkipReaderTrackingCOS

    conflicts = KeyedConflicts()
    diverged = 0
    for seed in SEEDS:
        script, expected = _make_script(seed, conflicts)
        sim = Simulator()
        runtime = SimRuntime(sim)
        cos = IndexedSkipReaderTrackingCOS(runtime, conflicts, MAX_SIZE)
        observed = _drive(cos, script, cos._idx_insert, cos._idx_remove,
                          _find_indexed_node, _indexed_ready_uids)
        if observed != expected:
            diverged += 1
    assert diverged > 0, (
        "skip-reader-tracking mutant indistinguishable from spec; "
        "the differential harness has no teeth")
