"""Mutation-detection smoke tests: the checker must catch seeded bugs.

Each mutant in :mod:`repro.check.mutants` reintroduces a concurrency bug
the paper's lock-free design rules out.  For every one, the checker must
find a violation of the expected kind within a bounded budget, shrink it,
and the shrunk decision sequence must replay — strictly, twice — to the
same violation kind.  The same budget on the *real* implementation stays
clean, so detection is signal, not noise.
"""

import pytest

from repro.check import CheckConfig, run_check, run_with_decisions
from repro.check.mutants import MUTANTS, make_mutant

#: Per-mutant workload making its bug reachable (see repro.check.mutants):
#: skip-cas-retry needs two *simultaneously ready* commands, so an all-reads
#: workload; drop-helped-remove leaks on any workload with removals;
#: premature-publish needs a remover racing a dependency-collecting insert,
#: so a conflict-heavy all-writes workload with a spare capacity token.
MUTANT_CASES = {
    "skip-cas-retry": (
        CheckConfig(workers=2, commands=2, max_size=2, write_every=0,
                    mutant="skip-cas-retry"),
        "double-get",
    ),
    "drop-helped-remove": (
        CheckConfig(workers=2, commands=3, max_size=2, write_every=1,
                    mutant="drop-helped-remove"),
        "graph-leak",
    ),
    "premature-publish": (
        CheckConfig(workers=2, commands=3, max_size=3, write_every=1,
                    mutant="premature-publish"),
        "conflict-order",
    ),
    # write / read / write on one conflict class: once the first write is
    # removed the index entry is (None, (reader,)), so the second write's
    # entire ordering obligation IS the reader the mutant drops.
    "indexed-skip-reader-tracking": (
        CheckConfig(algorithm="indexed", workers=2, commands=3, max_size=2,
                    write_every=2, mutant="indexed-skip-reader-tracking"),
        "conflict-order",
    ),
    # Under the read/write relation with 2 workers the early scheduler
    # spreads reads round-robin over both lanes and barriers writes across
    # them.  The mutant enqueues the leading write in lane 0 only, so the
    # second read lands in an *empty* lane 1 and is gettable while the
    # conflicting write still executes.
    "early-skip-barrier": (
        CheckConfig(algorithm="early", workers=2, commands=4, max_size=4,
                    write_every=3, mutant="early-skip-barrier"),
        "conflict-order",
    ),
}

BUDGET = dict(max_schedules=2_000, max_steps=2_000)


def test_every_mutant_has_a_case():
    assert set(MUTANT_CASES) == set(MUTANTS)


@pytest.mark.parametrize("name", sorted(MUTANT_CASES))
def test_mutant_is_caught_and_counterexample_replays(name):
    config, expected_kind = MUTANT_CASES[name]
    report = run_check(config, **BUDGET)
    violation = report.result.violation
    assert violation is not None, f"{name} escaped the exploration budget"
    assert violation.kind == expected_kind
    assert report.result.counterexample, "violation without a schedule"

    shrunk = report.shrunk
    assert shrunk is not None
    assert shrunk.violation.kind == expected_kind
    assert len(shrunk.decisions) <= len(report.result.counterexample)

    # Deterministic replay: the shrunk schedule reproduces the same
    # violation kind on two fresh executions, with strict name matching.
    for _ in range(2):
        exe = run_with_decisions(config, shrunk.decisions, strict=True,
                                 max_steps=BUDGET["max_steps"])
        replayed = exe.violation or exe.terminal_violation()
        assert replayed is not None, "shrunk schedule no longer fails"
        assert replayed.kind == expected_kind


@pytest.mark.parametrize("name", sorted(MUTANT_CASES))
def test_same_budget_is_clean_on_the_real_implementation(name):
    config, _ = MUTANT_CASES[name]
    clean = CheckConfig(**{**config.as_dict(), "mutant": None})
    report = run_check(clean, **BUDGET)
    assert report.ok, (
        f"false positive on the real implementation: "
        f"{report.result.violation}")


def test_unknown_mutant_is_rejected():
    from repro.core import ReadWriteConflicts
    from repro.sim import SimRuntime, Simulator

    runtime = SimRuntime(Simulator(), preemption="controlled")
    with pytest.raises(ValueError, match="unknown mutant"):
        make_mutant("no-such-bug", runtime, ReadWriteConflicts(), 2)
