"""Unit tests for ``SimRuntime``'s ``"controlled"`` preemption mode.

Controlled mode is the model checker's substrate: every runnable process
holds exactly one pending effect, and nothing happens until the driver
fires it with ``controlled_step``.  These tests pin the mode's contract —
spawn-order enumeration, effect visibility, blocking/retry semantics, and
full determinism — independently of the explorer built on top of it.
"""

import pytest

from repro.core.effects import Acquire, Down, Load, Release, Store, Up, Work
from repro.errors import SimulationError
from repro.sim import SimRuntime, Simulator


def controlled_runtime() -> SimRuntime:
    return SimRuntime(Simulator(), preemption="controlled")


def test_unknown_mode_error_lists_valid_modes():
    with pytest.raises(SimulationError) as err:
        SimRuntime(Simulator(), preemption="chaos")
    message = str(err.value)
    for mode in ("quantum", "effect", "fuzz", "controlled"):
        assert mode in message, f"error should name mode {mode!r}"


def test_runnable_processes_in_spawn_order():
    runtime = controlled_runtime()

    def proc():
        yield Work(0)

    for name in ("c", "a", "b"):
        runtime.spawn(proc(), name)
    assert [p.name for p in runtime.runnable_processes()] == ["c", "a", "b"]


def test_pending_effect_is_visible_and_steps_fire_it():
    runtime = controlled_runtime()
    cell = runtime.atomic(0)
    seen = {}

    def proc():
        yield Store(cell, 41)
        seen["load"] = yield Load(cell)
        return "done"

    process = runtime.spawn(proc(), "p")
    assert isinstance(runtime.pending_effect(process), Store)
    assert cell.value == 0, "spawning must not execute anything"
    runtime.controlled_step(process)
    assert cell.value == 41
    assert isinstance(runtime.pending_effect(process), Load)
    # The step that fires the last effect also observes StopIteration: the
    # process finishes immediately, with no separate "return" step.
    runtime.controlled_step(process)
    assert seen["load"] == 41
    assert process.done and process.result == "done"
    assert runtime.runnable_processes() == []


def test_acquire_blocks_until_release():
    runtime = controlled_runtime()
    mutex = runtime.mutex()
    order = []

    def holder():
        yield Acquire(mutex)
        order.append("holder-in")
        yield Work(0)
        yield Release(mutex)

    def waiter():
        yield Acquire(mutex)
        order.append("waiter-in")
        yield Release(mutex)

    a = runtime.spawn(holder(), "holder")
    b = runtime.spawn(waiter(), "waiter")
    runtime.controlled_step(a)                       # holder takes the lock
    runtime.controlled_step(b)                       # waiter parks
    assert b in runtime.blocked_processes()
    assert isinstance(runtime.blocking_effect(b), Acquire)
    assert [p.name for p in runtime.runnable_processes()] == ["holder"]
    runtime.controlled_step(a)                       # Work
    runtime.controlled_step(a)                       # Release -> waiter wakes
    assert b in runtime.runnable_processes()
    while runtime.runnable_processes():
        runtime.controlled_step(runtime.runnable_processes()[0])
    assert order == ["holder-in", "waiter-in"]


def test_semaphore_down_blocks_until_up():
    runtime = controlled_runtime()
    sem = runtime.semaphore(0)

    def consumer():
        yield Down(sem)

    def producer():
        yield Up(sem)

    c = runtime.spawn(consumer(), "consumer")
    p = runtime.spawn(producer(), "producer")
    runtime.controlled_step(c)
    assert c in runtime.blocked_processes()
    runtime.controlled_step(p)
    # Down was the consumer's last effect: waking re-polls it and it ends.
    assert c.done


def test_controlled_mode_replays_deterministically():
    def build():
        runtime = controlled_runtime()
        cell = runtime.atomic(0)

        def writer(value):
            current = yield Load(cell)
            yield Store(cell, current + value)

        runtime.spawn(writer(1), "w1")
        runtime.spawn(writer(2), "w2")
        return runtime, cell

    def drive(decisions):
        runtime, cell = build()
        for name in decisions:
            by_name = {p.name: p for p in runtime.runnable_processes()}
            runtime.controlled_step(by_name[name])
        return cell.value

    # The lost-update race: both interleavings are reachable and chosen
    # purely by the decision sequence, never by runtime-internal state.
    sequential = ["w1", "w1", "w2", "w2"]
    assert drive(sequential) == drive(sequential) == 3
    racy = ["w1", "w2", "w1", "w2"]
    assert drive(racy) == drive(racy)
    assert drive(sequential) != drive(racy), (
        "interleaving choice must be observable (lost update)")
