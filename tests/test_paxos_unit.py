"""Unit tests of the Multi-Paxos state machine (no network)."""

import pytest

from repro.broadcast import (
    Accept,
    Accepted,
    CatchupReply,
    CatchupRequest,
    Decide,
    Deliver,
    Forward,
    Heartbeat,
    MultiPaxos,
    Nack,
    Prepare,
    Promise,
    Send,
    SetTimer,
)
from repro.broadcast.paxos import HEARTBEAT_TIMER, LEADER_TIMER, NOOP
from repro.errors import ConfigurationError


def sends(actions, msg_type=None):
    picked = [a for a in actions if isinstance(a, Send)]
    if msg_type is not None:
        picked = [a for a in picked if isinstance(a.msg, msg_type)]
    return picked


def delivers(actions):
    return [(a.instance, a.payload) for a in actions if isinstance(a, Deliver)]


def timers(actions):
    return [a.name for a in actions if isinstance(a, SetTimer)]


def make_trio():
    return [MultiPaxos(i, 3) for i in range(3)]


class TestBasics:
    def test_node_zero_starts_leader(self):
        nodes = make_trio()
        assert nodes[0].is_leader
        assert not nodes[1].is_leader

    def test_start_arms_timers(self):
        nodes = make_trio()
        assert set(timers(nodes[0].start())) == {LEADER_TIMER, HEARTBEAT_TIMER}
        assert timers(nodes[1].start()) == [LEADER_TIMER]

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            MultiPaxos(0, 2)  # even n
        with pytest.raises(ConfigurationError):
            MultiPaxos(5, 3)  # id out of range
        with pytest.raises(ConfigurationError):
            MultiPaxos(0, 3, batch_size=0)

    def test_single_node_decides_immediately(self):
        node = MultiPaxos(0, 1)
        actions = node.submit("v")
        assert delivers(actions) == [(0, ("v",))]


class TestNormalCase:
    def test_leader_proposes_accept(self):
        leader = make_trio()[0]
        actions = leader.submit("payload")
        accepts = sends(actions, Accept)
        assert {a.dst for a in accepts} == {1, 2}
        assert accepts[0].msg.value == ("payload",)
        assert accepts[0].msg.instance == 0

    def test_acceptor_accepts_and_replies(self):
        follower = make_trio()[1]
        actions = follower.on_message(0, Accept((0, 0), 0, ("v",)))
        (reply,) = sends(actions, Accepted)
        assert reply.dst == 0
        assert reply.msg.instance == 0

    def test_quorum_decides_and_delivers(self):
        leader = make_trio()[0]
        leader.submit("v")
        actions = leader.on_message(1, Accepted((0, 0), 0))
        assert delivers(actions) == [(0, ("v",))]
        # Cumulative-ack mode (the default) replaces the Decide round with
        # the commit_up_to frontier piggybacked on later Accepts/heartbeats.
        assert sends(actions, Decide) == []

    def test_per_instance_mode_broadcasts_decide(self):
        leader = MultiPaxos(0, 3, cumulative_acks=False)
        leader.submit("v")
        actions = leader.on_message(1, Accepted((0, 0), 0))
        assert delivers(actions) == [(0, ("v",))]
        decides = sends(actions, Decide)
        assert {d.dst for d in decides} == {1, 2}

    def test_duplicate_accepted_ignored(self):
        leader = make_trio()[0]
        leader.submit("v")
        leader.on_message(1, Accepted((0, 0), 0))
        again = leader.on_message(2, Accepted((0, 0), 0))
        assert delivers(again) == []

    def test_follower_learns_from_decide(self):
        follower = make_trio()[1]
        actions = follower.on_message(0, Decide(0, ("v",)))
        assert delivers(actions) == [(0, ("v",))]

    def test_in_order_delivery_with_gap(self):
        follower = make_trio()[1]
        actions = follower.on_message(0, Decide(1, ("b",)))
        assert delivers(actions) == []  # instance 0 missing
        assert sends(actions, CatchupRequest)  # asks for the gap
        actions = follower.on_message(0, Decide(0, ("a",)))
        assert delivers(actions) == [(0, ("a",)), (1, ("b",))]

    def test_batching(self):
        leader = MultiPaxos(0, 3, batch_size=3, pipeline=1)
        leader.submit("a")
        # pipeline=1: b and c stay pending until instance 0 decides
        leader.submit("b")
        leader.submit("c")
        actions = leader.on_message(1, Accepted((0, 0), 0))
        accepts = sends(actions, Accept)
        assert accepts and accepts[0].msg.value == ("b", "c")

    def test_forward_reaches_leader(self):
        leader, follower, _ = make_trio()
        actions = follower.submit("v")
        (fwd,) = sends(actions, Forward)
        assert fwd.dst == 0
        actions = leader.on_message(1, fwd.msg)
        assert sends(actions, Accept)


class TestLeaderChange:
    def _campaign(self, node):
        """Force a campaign via two quiet leader-timer periods."""
        node.start()
        node.on_timer(LEADER_TIMER)  # grace period
        return node.on_timer(LEADER_TIMER)

    def test_campaign_sends_prepare(self):
        follower = make_trio()[1]
        actions = self._campaign(follower)
        prepares = sends(actions, Prepare)
        assert {p.dst for p in prepares} == {0, 2}
        assert follower.preparing == (1, 1)

    def test_heartbeat_suppresses_campaign(self):
        follower = make_trio()[1]
        follower.start()
        follower.on_timer(LEADER_TIMER)
        follower.on_message(0, Heartbeat((0, 0)))
        actions = follower.on_timer(LEADER_TIMER)
        assert not sends(actions, Prepare)

    def test_promise_quorum_elects(self):
        follower = make_trio()[1]
        self._campaign(follower)
        actions = follower.on_message(0, Promise((1, 1), {}))
        assert follower.is_leader
        assert HEARTBEAT_TIMER in timers(actions)

    def test_new_leader_reproposes_accepted_values(self):
        nodes = make_trio()
        # Old leader got instance 0 accepted at node 2 only.
        nodes[2].on_message(0, Accept((0, 0), 0, ("old",)))
        self._campaign(nodes[1])
        promise_from_2 = sends(nodes[2].on_message(1, Prepare((1, 1))), Promise)
        actions = nodes[1].on_message(2, promise_from_2[0].msg)
        accepts = sends(actions, Accept)
        assert any(a.msg.instance == 0 and a.msg.value == ("old",)
                   for a in accepts)

    def test_promise_reports_decided_suffix(self):
        """Regression: a decided instance known only to one promiser (its
        accepted entry is pruned on learn) must still constrain the new
        leader, or it would re-propose a fresh value at a decided slot."""
        nodes = make_trio()
        nodes[1].on_message(0, Accept((0, 0), 0, ("w",)))
        nodes[1].on_message(0, Decide(0, ("w",)))  # pruned from accepted
        assert 0 not in nodes[1].accepted
        self._campaign(nodes[2])
        reply = sends(nodes[1].on_message(2, Prepare((1, 2), 0)), Promise)
        assert reply[0].msg.accepted[0] == ((1, 2), ("w",))
        actions = nodes[2].on_message(1, reply[0].msg)
        accepts = sends(actions, Accept)
        assert any(a.msg.instance == 0 and a.msg.value == ("w",)
                   for a in accepts)

    def test_gap_filled_with_noop(self):
        nodes = make_trio()
        # Node 2 accepted instance 1 but nobody saw instance 0.
        nodes[2].on_message(0, Accept((0, 0), 1, ("later",)))
        self._campaign(nodes[1])
        promise = sends(nodes[2].on_message(1, Prepare((1, 1))), Promise)[0].msg
        actions = nodes[1].on_message(2, promise)
        accepts = sends(actions, Accept)
        noop_accepts = [a for a in accepts if a.msg.value == NOOP]
        assert any(a.msg.instance == 0 for a in noop_accepts)

    def test_noop_never_delivered(self):
        follower = make_trio()[1]
        actions = []
        actions.extend(follower.on_message(0, Decide(0, NOOP)))
        actions.extend(follower.on_message(0, Decide(1, ("real",))))
        assert delivers(actions) == [(1, ("real",))]

    def test_old_ballot_prepare_nacked(self):
        follower = make_trio()[1]
        follower.on_message(2, Prepare((5, 2)))
        actions = follower.on_message(0, Prepare((1, 0)))
        nacks = sends(actions, Nack)
        assert nacks and nacks[0].msg.promised == (5, 2)

    def test_nack_steps_leader_down(self):
        leader = make_trio()[0]
        leader.submit("v")
        leader.on_message(1, Nack((0, 0), (3, 1)))
        assert not leader.is_leader
        assert leader.ballot == (3, 1)

    def test_higher_accept_steps_down(self):
        leader = make_trio()[0]
        leader.on_message(1, Accept((2, 1), 0, ("x",)))
        assert not leader.is_leader
        assert leader.leader_hint() == 1

    def test_stale_heartbeat_ignored(self):
        follower = make_trio()[1]
        follower.on_message(2, Prepare((5, 2)))  # promised (5, 2)
        follower._leader_tracker.record_activity()
        follower._leader_tracker.expired()  # reset window
        follower.on_message(0, Heartbeat((0, 0)))
        # Old leader's heartbeat must not count as activity for ballot (5,2).
        assert follower._leader_tracker.expired()


class TestCatchup:
    def test_catchup_round_trip(self):
        leader, follower, _ = make_trio()
        leader.submit("a")
        leader.on_message(1, Accepted((0, 0), 0))
        request = CatchupRequest(0)
        (reply,) = sends(leader.on_message(1, request), CatchupReply)
        actions = follower.on_message(0, reply.msg)
        assert delivers(actions) == [(0, ("a",))]

    def test_catchup_with_nothing_known(self):
        follower = make_trio()[1]
        assert follower.on_message(2, CatchupRequest(5)) == []


class TestRetransmission:
    def test_heartbeat_retransmits_in_flight_accepts(self):
        """Regression: a lost Accept must not wedge its instance — the
        leader re-sends in-flight proposals with its heartbeats."""
        leader = make_trio()[0]
        leader.submit("v")  # instance 0 in flight, no Accepted yet
        actions = leader.on_timer(HEARTBEAT_TIMER)
        repeats = [a for a in sends(actions, Accept)]
        assert {a.dst for a in repeats} == {1, 2}
        assert all(a.msg.instance == 0 and a.msg.value == ("v",)
                   for a in repeats)

    def test_retransmit_skips_acked_peers(self):
        leader = make_trio()[0]
        leader.submit("v")
        leader.on_message(1, Accepted((0, 0), 0))  # decided (quorum of 2)
        actions = leader.on_timer(HEARTBEAT_TIMER)
        assert not sends(actions, Accept)  # nothing left in flight

    def test_acceptor_idempotent_on_repeat(self):
        follower = make_trio()[1]
        first = follower.on_message(0, Accept((0, 0), 0, ("v",)))
        second = follower.on_message(0, Accept((0, 0), 0, ("v",)))
        assert sends(first, Accepted) and sends(second, Accepted)
        assert follower.accepted[0] == ((0, 0), ("v",))
