"""Public-API surface tests: exports resolve, errors form one hierarchy."""

import importlib

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SchedulerError,
    ShutdownError,
    SimulationError,
)

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.broadcast",
    "repro.smr",
    "repro.apps",
    "repro.workload",
    "repro.bench",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_paper_algorithms_constructible(self):
        from repro import (COS_ALGORITHMS, ReadWriteConflicts,
                           ThreadedRuntime, make_cos)
        runtime = ThreadedRuntime()
        for name in COS_ALGORITHMS:
            assert make_cos(name, runtime, ReadWriteConflicts()) is not None

    def test_unknown_algorithm_rejected(self):
        from repro import ReadWriteConflicts, ThreadedRuntime, make_cos
        with pytest.raises(ValueError, match="unknown COS algorithm"):
            make_cos("optimistic", ThreadedRuntime(), ReadWriteConflicts())


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_type", [
        ConfigurationError, ProtocolError, SimulationError,
        SchedulerError, ShutdownError,
    ])
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        assert issubclass(error_type, Exception)

    def test_domain_errors_catchable_at_base(self):
        from repro.smr.checkpoint import CheckpointError
        from repro.core.history import HistoryViolation
        from repro.smr.client import ClientTimeout
        for error_type in (CheckpointError, HistoryViolation, ClientTimeout):
            assert issubclass(error_type, ReproError)


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_packages_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_classes_documented(self):
        from repro import (COS, CoarseGrainedCOS, FineGrainedCOS,
                           LockFreeCOS, SequentialCOS)
        for cls in (COS, CoarseGrainedCOS, FineGrainedCOS, LockFreeCOS,
                    SequentialCOS):
            assert cls.__doc__ and cls.__doc__.strip()
