"""repro — reproduction of "Boosting concurrency in Parallel State Machine
Replication" (Middleware '19).

The package implements the paper's Conflict-Ordered Set (COS) schedulers, a
from-scratch SMR stack (atomic broadcast, replicas, clients), the paper's
linked-list application, and a deterministic discrete-event simulator used to
regenerate every figure of the paper's evaluation.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.core import (
    COS,
    COS_ALGORITHMS,
    DEFAULT_MAX_SIZE,
    AlwaysConflicts,
    CoarseGrainedCOS,
    Command,
    ConflictRelation,
    EarlyCOS,
    EarlyConfig,
    FineGrainedCOS,
    KeyedConflicts,
    MultiKeyedConflicts,
    LockFreeCOS,
    NeverConflicts,
    PredicateConflicts,
    ReadWriteConflicts,
    SequentialCOS,
    StructureCosts,
    ThreadedCOS,
    ThreadedRuntime,
    make_cos,
)
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SchedulerError,
    ShutdownError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Command",
    "ConflictRelation",
    "ReadWriteConflicts",
    "KeyedConflicts",
    "MultiKeyedConflicts",
    "NeverConflicts",
    "AlwaysConflicts",
    "PredicateConflicts",
    "COS",
    "COS_ALGORITHMS",
    "StructureCosts",
    "DEFAULT_MAX_SIZE",
    "CoarseGrainedCOS",
    "EarlyCOS",
    "EarlyConfig",
    "FineGrainedCOS",
    "LockFreeCOS",
    "SequentialCOS",
    "ThreadedCOS",
    "ThreadedRuntime",
    "make_cos",
    # errors
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "SimulationError",
    "SchedulerError",
    "ShutdownError",
]
