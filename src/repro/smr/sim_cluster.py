"""Simulated SMR cluster (paper §7.4 environment).

Runs the *real* Multi-Paxos state machines of :mod:`repro.broadcast.paxos`
over the discrete-event simulator, with simulated replicas (COS + scheduler
+ workers on :class:`~repro.sim.runtime.SimRuntime`) and closed-loop
clients.  This is the environment that regenerates Figs. 4-6: the ordering
protocol adds both latency (consensus round trips on a simulated LAN) and
CPU overhead (per-command ordering work on the scheduler path), which is
exactly why the SMR numbers sit below the standalone numbers in the paper.

Clients stamp requests, submit batches to the leader replica, and block on
a semaphore until the first replica response arrives; latency is measured
at the client (paper §7.2), throughput at replica 0.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.broadcast.messages import (
    Deliver,
    DeliverOptimistic,
    DeliverRead,
    Send,
    SetTimer,
)
from repro.broadcast.paxos import MultiPaxos
from repro.core import make_cos
from repro.core.command import Command
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.core.effects import Down, Up, Work
from repro.core.runtime import EffectGen
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.smr.replica import _flatten_commands
from repro.sim import (
    ExecutionProfile,
    Metrics,
    SimRuntime,
    Simulator,
    SyncCosts,
    structure_costs,
)
from repro.workload import WorkloadGenerator

__all__ = ["SimClusterConfig", "SimClusterResult", "run_sim_cluster"]

_US = 1e-6


@dataclass(frozen=True)
class SimClusterConfig:
    """Parameters of one simulated SMR run (one point of Figs. 4-6)."""

    algorithm: str                      # COS algorithm or "sequential"
    workers: int
    profile: ExecutionProfile
    write_pct: float = 0.0
    n_replicas: int = 3
    n_clients: int = 200
    client_batch: int = 20              # commands per client request (§7.1)
    max_graph_size: int = DEFAULT_MAX_SIZE
    batch_size: int = 16                # consensus batch (client payloads)
    ordering_cpu: float = 1.3 * _US     # per-command protocol CPU at replicas
    net_min: float = 40 * _US           # one-way LAN latency range
    net_max: float = 120 * _US
    execute_replicas: int = 1           # how many replicas run execution
    class_shards: int = 1               # shards for the class-based scheduler
    seed: int = 1
    warm_ops: int = 800
    measure_ops: int = 6_000
    max_virtual_time: float = 60.0
    sync_costs: SyncCosts = field(default_factory=SyncCosts.default)


@dataclass(frozen=True)
class SimClusterResult:
    """Outcome of one simulated SMR run."""

    config: SimClusterConfig
    throughput: float       # commands per virtual second at replica 0
    latency_mean: float     # client-side seconds per request batch
    latency_median: float
    latency_p99: float
    executed: int
    virtual_time: float
    events: int

    @property
    def kops(self) -> float:
        return self.throughput / 1e3

    @property
    def latency_ms(self) -> float:
        return self.latency_mean * 1e3


class _SimProtocolNode:
    """Drives one protocol state machine on the virtual clock."""

    def __init__(
        self,
        node_id: int,
        protocol: MultiPaxos,
        sim: Simulator,
        rng: random.Random,
        net_min: float,
        net_max: float,
        on_deliver: Callable[[Any], None],
    ):
        self.node_id = node_id
        self.protocol = protocol
        self._sim = sim
        self._rng = rng
        self._net_min = net_min
        self._net_max = net_max
        self._on_deliver = on_deliver
        self.peers: List["_SimProtocolNode"] = []

    def start(self) -> None:
        self._perform(self.protocol.start())

    def submit(self, payload: Any) -> None:
        self._perform(self.protocol.submit(payload))

    def on_message(self, src: int, msg: Any) -> None:
        self._perform(self.protocol.on_message(src, msg))

    def _perform(self, actions: List[Any]) -> None:
        for action in actions:
            kind = type(action)
            if kind is Send:
                delay = self._rng.uniform(self._net_min, self._net_max)
                peer = self.peers[action.dst]
                self._sim.schedule(
                    delay, lambda p=peer, m=action.msg: p.on_message(self.node_id, m)
                )
            elif kind is Deliver:
                self._on_deliver(action.payload)
            elif kind is DeliverRead:
                # The sim drives only the ordered path today; a lease read
                # is simply a local delivery without an instance number.
                self._on_deliver(action.payload)
            elif kind is DeliverOptimistic:
                # Advisory; this cluster executes conservatively only
                # (repro.spec.sim models the speculative pipeline).
                pass
            elif kind is SetTimer:
                self._sim.schedule(
                    action.delay,
                    lambda n=action.name: self._perform(self.protocol.on_timer(n)),
                )
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown action {action!r}")


def run_sim_cluster(config: SimClusterConfig,
                    registry: Optional[MetricsRegistry] = None,
                    ) -> SimClusterResult:
    """Simulate one SMR configuration and return throughput and latency.

    ``registry`` optionally records the run through the unified
    observability layer (docs/observability.md): its clock is bound to the
    virtual clock, COS structures emit occupancy/wait metrics into it, and
    client latencies mirror into the ``latency_seconds`` histogram.
    Instrumentation adds no simulation events, so results are identical
    with or without it.
    """
    if config.workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {config.workers}")
    if not 1 <= config.execute_replicas <= config.n_replicas:
        raise ConfigurationError("execute_replicas out of range")
    sim = Simulator()
    if registry is not None:
        registry.bind_clock(lambda: sim.now)
    runtime = SimRuntime(sim, costs=config.sync_costs)
    metrics = Metrics(sim, registry=registry)
    rng = random.Random(config.seed * 6151 + 7)
    profile = config.profile
    total_target = config.warm_ops + config.measure_ops

    from repro.core.command import ReadWriteConflicts

    conflicts = ReadWriteConflicts()

    # ------------------------------------------------- response bookkeeping
    # Per client: a semaphore the client blocks on and the request id it is
    # waiting for; the first executing replica to answer releases it.
    client_sems = [runtime.semaphore(0) for _ in range(config.n_clients)]
    waiting_for: List[Optional[int]] = [None] * config.n_clients
    outstanding: List[int] = [0] * config.n_clients

    def respond(command: Command) -> None:
        index = int(command.client_id)
        if waiting_for[index] != command.request_id:
            return  # duplicate response from another replica
        outstanding[index] -= 1
        if outstanding[index] == 0:
            waiting_for[index] = None
            client_sems[index].up()

    # ------------------------------------------------------------- replicas
    nodes: List[_SimProtocolNode] = []
    for replica_id in range(config.n_replicas):
        executes = replica_id < config.execute_replicas
        if executes:
            on_deliver = _build_executor(
                replica_id, config, runtime, conflicts, metrics,
                rng, respond, measure=replica_id == 0,
                registry=registry if replica_id == 0 else None,
            )
        else:
            on_deliver = lambda payload: None
        protocol = MultiPaxos(
            replica_id,
            config.n_replicas,
            batch_size=config.batch_size,
            heartbeat_interval=0.05,
            leader_timeout=0.2 * (1 + 0.35 * replica_id),
            clock=lambda: sim.now,  # leases measured in simulated time
        )
        nodes.append(
            _SimProtocolNode(
                replica_id, protocol, sim, rng,
                config.net_min, config.net_max, on_deliver,
            )
        )
    for node in nodes:
        node.peers = nodes
        node.start()

    # -------------------------------------------------------------- clients
    leader = nodes[0]

    def client_proc(index: int) -> EffectGen:
        workload = WorkloadGenerator(
            config.write_pct,
            seed=config.seed * 100_003 + index,
            client_id=str(index),
        )
        request_id = 0
        sem = client_sems[index]
        # Stagger arrivals so 200 clients do not fire at the same instant.
        yield Work(rng.uniform(0.0, 500e-6))
        while True:
            request_id += 1
            batch = []
            for _ in range(config.client_batch):
                cmd = workload.next_command()
                batch.append(
                    Command(cmd.op, cmd.args, str(index), request_id,
                            writes=cmd.writes)
                )
            waiting_for[index] = request_id
            outstanding[index] = len(batch)
            sent_at = sim.now
            delay = rng.uniform(config.net_min, config.net_max)
            sim.schedule(delay, lambda b=tuple(batch): leader.submit(b))
            yield Down(sem)
            metrics.record_latency(sim.now - sent_at)

    for index in range(config.n_clients):
        runtime.spawn(client_proc(index), f"client-{index}")

    sim.run(
        until=config.max_virtual_time,
        stop_when=lambda: metrics.count("executed") >= total_target,
    )
    mean, median, p99 = metrics.latency_stats()
    return SimClusterResult(
        config=config,
        throughput=metrics.throughput("executed"),
        latency_mean=mean,
        latency_median=median,
        latency_p99=p99,
        executed=metrics.warm_count("executed"),
        virtual_time=sim.now,
        events=sim.events_processed,
    )


def _build_executor(
    replica_id: int,
    config: SimClusterConfig,
    runtime: SimRuntime,
    conflicts: Any,
    metrics: Metrics,
    rng: random.Random,
    respond: Callable[[Command], None],
    measure: bool,
    registry: Optional[MetricsRegistry] = None,
) -> Callable[[Any], None]:
    """Create one replica's execution engine; returns its deliver callback."""
    sim = runtime.simulator
    profile = config.profile
    classes_of = None
    if config.algorithm == "class-based":
        from repro.core import read_write_classes

        classes_of = read_write_classes(config.class_shards)
    cos = make_cos(
        config.algorithm,
        runtime,
        conflicts,
        max_size=config.max_graph_size,
        costs=structure_costs(),
        classes_of=classes_of,
        obs=registry,
        workers=config.workers,
    )
    in_queue: Deque[Command] = deque()
    queued = runtime.semaphore(0)

    def on_deliver(payload: Any) -> None:
        commands = list(_flatten_commands(payload))
        in_queue.extend(commands)
        queued.up(len(commands))

    def scheduler() -> EffectGen:
        while True:
            yield Down(queued)
            command = in_queue.popleft()
            # Per-command protocol CPU (decode, MAC-equivalent, bookkeeping)
            # plus the scheduler-side insert cost.
            cost = (config.ordering_cpu + profile.insert_base)
            yield Work(cost * (0.8 + 0.4 * rng.random()))
            yield from cos.insert(command)

    def worker(index: int) -> EffectGen:
        while True:
            yield Work(profile.get_base)
            handle = yield from cos.get()
            command = cos.command_of(handle)
            yield Work(profile.execute_cost * (0.5 + rng.random()))
            yield from cos.remove(handle)
            yield Work(profile.remove_base)
            if measure:
                metrics.incr("executed")
                if (not metrics.warm_started
                        and metrics.count("executed") >= config.warm_ops):
                    metrics.mark_warm()
            delay = rng.uniform(config.net_min, config.net_max)
            sim.schedule(delay, lambda c=command: respond(c))

    runtime.spawn(scheduler(), f"replica-{replica_id}-scheduler")
    for index in range(config.workers):
        runtime.spawn(worker(index), f"replica-{replica_id}-worker-{index}")
    return on_deliver


