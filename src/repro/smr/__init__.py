"""State machine replication layer: services, replicas, clients, clusters."""

from repro.smr.checkpoint import Checkpoint, CheckpointError
from repro.smr.client import Client, ClientTimeout
from repro.smr.cluster import ClusterConfig, ThreadedCluster
from repro.smr.replica import STOP_OP, ParallelReplica, SequentialReplica
from repro.smr.service import Service

__all__ = [
    "Service",
    "ParallelReplica",
    "SequentialReplica",
    "STOP_OP",
    "Client",
    "ClientTimeout",
    "ClusterConfig",
    "ThreadedCluster",
    "Checkpoint",
    "CheckpointError",
]
