"""Application service interface for state machine replication.

A service is a deterministic state machine (paper §3.1): ``execute`` must
be a pure function of the current state and the command.  The service also
owns the application's conflict knowledge: the scheduler asks it which
commands conflict, and the COS serializes exactly those.

Thread-safety contract: the replica guarantees that two commands execute
concurrently only if the service declared them non-conflicting, so
``execute`` needs no internal locking as long as the conflict relation is
sound (e.g. read-only commands may overlap).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Sequence, Tuple

from repro.core.command import Command, ConflictRelation

__all__ = ["Service", "ShardableService", "ALL_SHARDS"]

#: Sentinel returned by :meth:`ShardableService.shards_of` for commands that
#: touch every shard (global reads, administrative operations).
ALL_SHARDS: Tuple[int, ...] = ()


class Service(ABC):
    """Deterministic, conflict-aware application state machine."""

    @abstractmethod
    def execute(self, command: Command) -> Any:
        """Apply ``command`` and return its response.  Must be deterministic."""

    @property
    @abstractmethod
    def conflicts(self) -> ConflictRelation:
        """The service's conflict relation, used by the scheduler."""

    @property
    def execution_cost(self) -> float:
        """Mean virtual-seconds per command for simulation runs.

        Threaded replicas ignore this (real execution takes real time);
        the simulated cluster charges it per command.
        """
        return 0.0

    def snapshot(self) -> Any:
        """Serializable copy of the full service state (checkpointing,
        replica consistency checks).  Override for efficiency."""
        raise NotImplementedError(f"{type(self).__name__} does not snapshot")

    def restore(self, snapshot: Any) -> None:
        """Replace the service state with a snapshot from a peer."""
        raise NotImplementedError(f"{type(self).__name__} does not restore")


class ShardableService(Service):
    """A service whose state partitions into key-disjoint shards.

    This is the contract behind the multiprocess execution engine
    (:mod:`repro.par`, docs/parallel_execution.md): each worker process owns
    one shard of the state, single-shard commands run truly in parallel, and
    commands spanning several shards execute under a barrier round.  It is
    the state-partitioning move of P-SMR (Marandi & Pedone) applied to this
    codebase's services.

    Contract:

    - :meth:`shards_of` must be a pure function of the command (no state),
      identical in every process — use a *stable* hash, never the builtin
      ``hash`` (``PYTHONHASHSEED`` varies across interpreters).
    - A command's read/write footprint must be contained in the union of the
      shards it reports; the conflict relation must remain sound regardless
      of sharding.
    - Shard fragments use the *same encoding* as full snapshots (a subset of
      the state), so ``restore`` of a fragment yields a correct shard-local
      instance and :meth:`recompose_snapshots` of all fragments equals the
      unsharded :meth:`snapshot`.
    """

    @abstractmethod
    def shards_of(self, command: Command, n_shards: int) -> Tuple[int, ...]:
        """Shard indices ``command`` touches, or :data:`ALL_SHARDS`.

        A one-element tuple marks a single-shard command (the common, fully
        parallel case); more elements — or the empty :data:`ALL_SHARDS`
        sentinel — route the command through a barrier round.
        """

    @abstractmethod
    def snapshot_shard(self, shard: int, n_shards: int) -> Any:
        """Snapshot of the state owned by ``shard`` (full-snapshot encoding)."""

    def restore_shard(self, shard: int, n_shards: int, fragment: Any) -> None:
        """Adopt ``fragment`` as this instance's (shard-local) state.

        Fragments share the full-snapshot encoding, so the default simply
        restores; services with shard-indexed internal layouts may override.
        """
        self.restore(fragment)

    @abstractmethod
    def recompose_snapshots(self, fragments: Sequence[Any]) -> Any:
        """Merge per-shard fragments back into one canonical full snapshot.

        ``recompose_snapshots([snapshot_shard(s, n) for s in range(n)])``
        must equal :meth:`snapshot` of the unsharded service.
        """

    def split_snapshot(self, snapshot: Any, n_shards: int) -> List[Any]:
        """Partition a full snapshot into per-shard fragments.

        Default implementation: restore the snapshot into this instance and
        carve it with :meth:`snapshot_shard`.  Intended for template
        instances (it overwrites state).
        """
        self.restore(snapshot)
        return [self.snapshot_shard(shard, n_shards)
                for shard in range(n_shards)]
