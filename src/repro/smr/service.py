"""Application service interface for state machine replication.

A service is a deterministic state machine (paper §3.1): ``execute`` must
be a pure function of the current state and the command.  The service also
owns the application's conflict knowledge: the scheduler asks it which
commands conflict, and the COS serializes exactly those.

Thread-safety contract: the replica guarantees that two commands execute
concurrently only if the service declared them non-conflicting, so
``execute`` needs no internal locking as long as the conflict relation is
sound (e.g. read-only commands may overlap).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.core.command import Command, ConflictRelation

__all__ = ["Service"]


class Service(ABC):
    """Deterministic, conflict-aware application state machine."""

    @abstractmethod
    def execute(self, command: Command) -> Any:
        """Apply ``command`` and return its response.  Must be deterministic."""

    @property
    @abstractmethod
    def conflicts(self) -> ConflictRelation:
        """The service's conflict relation, used by the scheduler."""

    @property
    def execution_cost(self) -> float:
        """Mean virtual-seconds per command for simulation runs.

        Threaded replicas ignore this (real execution takes real time);
        the simulated cluster charges it per command.
        """
        return 0.0

    def snapshot(self) -> Any:
        """Serializable copy of the full service state (checkpointing,
        replica consistency checks).  Override for efficiency."""
        raise NotImplementedError(f"{type(self).__name__} does not snapshot")

    def restore(self, snapshot: Any) -> None:
        """Replace the service state with a snapshot from a peer."""
        raise NotImplementedError(f"{type(self).__name__} does not restore")
