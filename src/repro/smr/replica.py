"""Replica execution engines (paper Fig. 1 and Algorithm 1).

A :class:`ParallelReplica` is the paper's scheduler/worker architecture:
the atomic-broadcast delivery callback plays the *parallelizer* role and
inserts delivered commands into a COS in total order; a pool of worker
threads repeatedly gets an independent command, executes it against the
service, responds to the client, and removes it from the COS.

A :class:`SequentialReplica` is classic SMR — the same machinery over the
FIFO :class:`~repro.core.sequential.SequentialCOS` with a single worker.

Replicas deduplicate commands by ``(client_id, request_id)`` at delivery
time.  Delivery order is identical at all replicas, so the dedup decision
is deterministic; duplicates of already-executed commands are answered from
the response cache, which makes client retransmission safe.

With a single total order, tracking only each client's *latest* request id
suffices.  Partitioned ordering (:mod:`repro.groups`) merges several
consensus streams, so one client's requests may arrive out of request-id
order when a batch spans groups; ``dedup_window > 0`` switches the cache to
a bounded per-client window of recent request ids, which accepts fresh
requests in any order (see docs/partitioning.md).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import time

from repro.core import ThreadedCOS, ThreadedRuntime, make_cos
from repro.core.command import Command
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.errors import ShutdownError
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.spans import span_key
from repro.smr.checkpoint import Checkpoint, CheckpointError
from repro.smr.service import Service

__all__ = ["ParallelReplica", "SequentialReplica", "STOP_OP"]

#: Poison-pill operation used to shut worker threads down.
STOP_OP = "__replica_stop__"

# Called with (command, response, replica_id) after execution.
ResponseCallback = Callable[[Command, Any, int], None]


def _flatten_commands(payload: Any) -> Iterable[Command]:
    """Yield commands from an arbitrarily nested batch, in order.

    Only :class:`Command` leaves are valid.  Strings (and bytes) are
    iterables whose items are themselves strings, so recursing into them
    never terminates — and any other non-``Command`` leaf is a caller bug —
    so both are rejected with ``TypeError`` instead of ``RecursionError``.
    """
    if isinstance(payload, Command):
        yield payload
        return
    if isinstance(payload, (str, bytes, bytearray)):
        raise TypeError(
            f"batch leaves must be Command instances, got {type(payload).__name__}: "
            f"{payload!r:.80}")
    try:
        items = iter(payload)
    except TypeError:
        raise TypeError(
            f"batch leaves must be Command instances, got "
            f"{type(payload).__name__}: {payload!r:.80}") from None
    for item in items:
        yield from _flatten_commands(item)


class ParallelReplica:
    """Scheduler + worker-pool replica over a Conflict-Ordered Set."""

    def __init__(
        self,
        replica_id: int,
        service: Service,
        cos_algorithm: str = "lock-free",
        workers: int = 4,
        max_graph_size: int = DEFAULT_MAX_SIZE,
        on_response: Optional[ResponseCallback] = None,
        registry: Optional[MetricsRegistry] = None,
        dispatch_batch: Optional[int] = None,
        dedup_window: int = 0,
    ):
        """``dispatch_batch`` caps how many simultaneously-ready commands
        one worker drains from the COS and hands to the service in a
        single ``execute_many`` call (engines that implement it — the mp
        engine moves the whole batch over one queue hop).  ``None`` picks
        16 when the service supports batching, else 1; services without
        ``execute_many`` always run command-at-a-time.

        ``dedup_window``: 0 (default) keeps the classic latest-request-id
        dedup cache, which is exact under a single total order.  A positive
        value keeps the last that many request ids *per client* instead,
        tolerating out-of-request-id-order arrival across merged ordering
        streams (repro.groups); it must comfortably exceed any client's
        in-flight request count."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if dispatch_batch is not None and dispatch_batch < 1:
            raise ValueError(
                f"dispatch_batch must be >= 1, got {dispatch_batch}")
        if dedup_window < 0:
            raise ValueError(
                f"dedup_window must be >= 0, got {dedup_window}")
        # An engine-backed service (repro.par.MpService) wants more worker
        # threads than CPU-bound execution would: its threads spend their
        # time blocked on shard queues (GIL released) and must outnumber the
        # shards to keep them pipelined.  The hint only ever raises the pool
        # size, so plain services are unaffected.
        hint = getattr(service, "dispatch_parallelism", None)
        if hint is not None:
            workers = max(workers, int(hint))
        self.replica_id = replica_id
        self.service = service
        self.workers = workers
        self._execute_many = getattr(service, "execute_many", None)
        if self._execute_many is None:
            self.dispatch_batch = 1
        else:
            self.dispatch_batch = (16 if dispatch_batch is None
                                   else dispatch_batch)
        self._on_response = on_response
        self.registry = registry if registry is not None else NULL_REGISTRY
        obs = self.registry
        self._obs_on = obs.enabled
        self._m_scheduled = obs.counter("replica_scheduled_total")
        self._m_executed = obs.counter("replica_executed_total")
        self._m_insert_latency = obs.histogram("replica_insert_seconds")
        self._runtime = ThreadedRuntime()
        self._cos = ThreadedCOS(
            make_cos(cos_algorithm, self._runtime, service.conflicts,
                     max_size=max_graph_size, obs=obs, workers=workers),
            self._runtime,
        )
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._state_lock = threading.Lock()
        self._deliver_lock = threading.Lock()
        self._executed = 0
        self._scheduled = 0
        self._last_instance = -1
        self._dedup_window = dedup_window
        # Response cache.  Latest-only mode (dedup_window == 0):
        # client_id -> (request_id, response or _PENDING).  Window mode:
        # client_id -> OrderedDict[request_id, response or _PENDING] in
        # insertion order, trimmed to the window size.
        self._dedup: Dict[str, Any] = {}

    _PENDING = object()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._started:
            raise ShutdownError("replica already started")
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"replica-{self.replica_id}-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain workers with poison pills and join them.  Idempotent."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        for _ in range(self.workers):
            self._cos.insert(Command(op=STOP_OP, writes=True))
        for thread in self._threads:
            thread.join(timeout)

    def resize_workers(self, workers: int) -> None:
        """Reconfigure the worker pool at runtime.

        Growing spawns threads immediately; shrinking inserts poison pills
        that retire one worker each once they reach the head of the conflict
        order (cf. the reconfigurable parallel SMR line the paper cites
        [Alchieri et al., SRDS'17]).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not self._started or self._stopping:
            raise ShutdownError("resize requires a running replica")
        delta = workers - self.workers
        if delta > 0:
            for index in range(delta):
                worker_index = len(self._threads) + index
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(worker_index,),
                    name=(f"replica-{self.replica_id}-worker-"
                          f"{worker_index}"),
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        else:
            for _ in range(-delta):
                self._cos.insert(Command(op=STOP_OP, writes=True))
        self.workers = workers

    # --------------------------------------------------------- SMR plumbing

    def on_deliver(self, instance: int, payload: Any) -> None:
        """Atomic-broadcast delivery: schedule a batch of commands.

        This is the parallelizer (scheduler) role of Algorithm 1 — it runs
        on the broadcast node's event-loop thread, which makes inserts
        naturally sequential in delivery order.  ``payload`` may be a single
        command, a client batch, or a protocol batch of client batches; the
        nesting is flattened in order.
        """
        with self._deliver_lock:
            self._schedule_payload(payload)
            self._last_instance = max(self._last_instance, instance)

    def on_local_read(self, payload: Any) -> None:
        """Leaseholder-local read delivery (no consensus instance).

        Scheduled through the same conflict-ordered set as ordered
        commands, so a read is executed after every conflicting write
        already delivered here — which, at a valid leaseholder, is every
        write completed anywhere (see docs/ordering.md).  The read never
        advances ``last_instance``: it has no position in the total order.

        When the execution pipeline is idle the read skips the COS and
        executes inline on the delivering thread.  The idle check and the
        ``_scheduled`` claim happen in *one* ``_state_lock`` critical
        section (:meth:`_claim_idle_inline`): there is no window between
        "observed idle" and "claimed the inline slots" in which another
        thread could read a half-claimed counter pair.  Admission of new
        work cannot race the check at all — every path that inserts into
        the COS (``on_deliver``, this method) holds ``_deliver_lock``,
        which the read holds until it completes — so the read is still
        serialized after every conflicting write, without paying two
        worker handoffs.
        """
        with self._deliver_lock:
            commands = [command for command in _flatten_commands(payload)
                        if not self._is_duplicate(command)]
            if not commands:
                return
            if self._claim_idle_inline(len(commands)):
                self._execute_inline(commands)
            else:
                self._schedule_commands(commands)

    def _pipeline_idle_locked(self) -> bool:
        """Pipeline idleness predicate; ``_state_lock`` held by caller.

        ``executed == scheduled`` means every admitted command has
        finished executing — workers bump ``_executed`` only after the
        service call returns.  Subclasses with additional in-flight work
        outside these counters (speculation) strengthen the outer
        :meth:`_pipeline_idle` instead, to keep their own locks out of
        ``_state_lock``'s shadow.
        """
        return self._executed >= self._scheduled

    def _pipeline_idle(self) -> bool:
        """True iff every admitted command has finished executing."""
        with self._state_lock:
            return self._pipeline_idle_locked()

    def _claim_idle_inline(self, count: int) -> bool:
        """Atomically check idleness and claim ``count`` inline slots."""
        with self._state_lock:
            if not self._pipeline_idle_locked():
                return False
            self._scheduled += count
            return True

    def _schedule_payload(self, payload: Any) -> None:
        self._schedule_commands(
            command for command in _flatten_commands(payload)
            if not self._is_duplicate(command))

    def _schedule_commands(self, commands: Iterable[Command]) -> None:
        obs_on = self._obs_on
        obs = self.registry
        for command in commands:
            self._scheduled += 1
            if obs_on:
                obs.span(span_key(command), "delivered")
                entered = obs.clock()
            self._cos.insert(command)
            if obs_on:
                self._m_insert_latency.observe(obs.clock() - entered)
                self._m_scheduled.inc()
                obs.span(span_key(command), "scheduled")

    def _execute_inline(self, commands: List[Command]) -> None:
        """Execute an idle-pipeline read batch on the calling thread."""
        obs = self.registry
        obs_on = self._obs_on
        if obs_on:
            started = obs.clock()
            for command in commands:
                obs.span(span_key(command), "delivered")
                obs.span(span_key(command), "executing")
        responses = [self.service.execute(command) for command in commands]
        if obs_on:
            self._m_executed.inc(len(commands))
            self._m_scheduled.inc(len(commands))
            self._m_insert_latency.observe(obs.clock() - started)
            for command in commands:
                obs.span(span_key(command), "responded")
        with self._state_lock:
            self._executed += len(commands)
            for command, response in zip(commands, responses):
                self._fill_response(command, response)
        if self._on_response is not None:
            for command, response in zip(commands, responses):
                self._on_response(command, response, self.replica_id)

    def _is_duplicate(self, command: Command) -> bool:
        if command.client_id is None:
            return False
        if self._dedup_window:
            return self._is_duplicate_windowed(command)
        with self._state_lock:
            cached = self._dedup.get(command.client_id)
            if cached is not None and command.request_id <= cached[0]:
                duplicate_of_latest = command.request_id == cached[0]
                response = cached[1]
            else:
                self._dedup[command.client_id] = (
                    command.request_id, self._PENDING,
                )
                return False
        if (duplicate_of_latest and response is not self._PENDING
                and self._on_response is not None):
            # Retransmission of the latest executed command: re-answer.
            self._on_response(command, response, self.replica_id)
        return True

    def _is_duplicate_windowed(self, command: Command) -> bool:
        """Window-mode dedup: fresh request ids are accepted in any order.

        A request is a duplicate iff its id is still in the client's
        window.  The window only forgets a request once ``dedup_window``
        *newer* requests from the same client were delivered, so as long as
        a client's in-flight requests never exceed the window, every
        retransmission is recognized — without assuming ids arrive in
        order, which merged group streams do not guarantee.
        """
        with self._state_lock:
            window = self._dedup.get(command.client_id)
            if window is None:
                window = self._dedup[command.client_id] = OrderedDict()
            response = window.get(command.request_id, self._PENDING)
            duplicate = command.request_id in window
            if not duplicate:
                window[command.request_id] = self._PENDING
                while len(window) > self._dedup_window:
                    window.popitem(last=False)
        if (duplicate and response is not self._PENDING
                and self._on_response is not None):
            self._on_response(command, response, self.replica_id)
        return duplicate

    def _fill_response(self, command: Command, response: Any) -> None:
        """Record an executed command's response (``_state_lock`` held)."""
        if command.client_id is None:
            return
        cached = self._dedup.get(command.client_id)
        if cached is None:
            return
        if self._dedup_window:
            if command.request_id in cached:
                cached[command.request_id] = response
        # Only fill the slot this command reserved: in latest-only mode a
        # newer request from the same client may own it by now.
        elif cached[0] == command.request_id:
            self._dedup[command.client_id] = (command.request_id, response)

    # -------------------------------------------------------------- workers

    def _worker_loop(self, index: int = 0) -> None:
        cos = self._cos
        obs = self.registry
        obs_on = self._obs_on
        batch_limit = self.dispatch_batch
        if obs_on:
            worker = str(index)
            m_busy = obs.histogram("worker_busy_seconds", worker=worker)
            m_commands = obs.counter("worker_commands_total", worker=worker)
        while True:
            handle = cos.get()
            command = cos.command_of(handle)
            if command.op == STOP_OP:
                cos.remove(handle)
                return
            batch = [(handle, command)]
            stop_handle = None
            while stop_handle is None and len(batch) < batch_limit:
                # Drain whatever else is ready right now: simultaneously
                # ready commands are pairwise non-conflicting, so they can
                # ride to the engine in one execute_many batch.
                extra = cos.try_get()
                if extra is None:
                    break
                extra_command = cos.command_of(extra)
                if extra_command.op == STOP_OP:
                    # A stop pill conflicts with everything, so it cannot
                    # normally be ready alongside live work; handle it
                    # anyway — finish the batch, then retire.
                    stop_handle = extra
                else:
                    batch.append((extra, extra_command))
            if obs_on:
                started = obs.clock()
                for _, cmd in batch:
                    obs.span(span_key(cmd), "executing")
            self._run_batch([cmd for _, cmd in batch])
            if obs_on:
                m_busy.observe(obs.clock() - started)
                m_commands.inc(len(batch))
                self._m_executed.inc(len(batch))
                for _, cmd in batch:
                    obs.span(span_key(cmd), "responded")
            for h, _ in batch:
                cos.remove(h)
            if stop_handle is not None:
                cos.remove(stop_handle)
                return

    def _run_batch(self, commands: List[Command]) -> List[Any]:
        """Execute one ready batch and publish its results (worker hook).

        The commands are pairwise non-conflicting and simultaneously
        ready, so ``execute_many``-capable services may run them as one
        engine dispatch.  Publishing — the ``_executed`` bump, response
        caching, and client callbacks — happens here so subclasses can
        reroute the whole execution path
        (:class:`~repro.spec.replica.SpeculativeReplica` captures undo
        records and *withholds* responses until commit instead).
        """
        if self._execute_many is not None and len(commands) > 1:
            responses = self._execute_many(commands)
        else:
            responses = [self.service.execute(cmd) for cmd in commands]
        with self._state_lock:
            self._executed += len(commands)
            for command, response in zip(commands, responses):
                self._fill_response(command, response)
        if self._on_response is not None:
            for command, response in zip(commands, responses):
                self._on_response(command, response, self.replica_id)
        return responses

    # ------------------------------------------------------------ inspection

    @property
    def executed(self) -> int:
        """Commands executed so far."""
        with self._state_lock:
            return self._executed

    @property
    def last_instance(self) -> int:
        """Highest atomic-broadcast instance delivered so far (-1 if none)."""
        return self._last_instance

    def take_checkpoint(self, timeout: float = 5.0) -> Checkpoint:
        """Quiesce and snapshot a consistent cut (see smr/checkpoint.py).

        Delivery is blocked while in-flight commands drain; on success the
        returned checkpoint reflects every command of every instance up to
        :attr:`last_instance`.
        """
        with self._deliver_lock:
            # monotonic, not wall clock: an NTP step while quiescing must
            # not fire the deadline early (or postpone it forever).
            deadline = time.monotonic() + timeout
            while True:
                if self._pipeline_idle():
                    break
                if time.monotonic() > deadline:
                    raise CheckpointError(
                        f"replica {self.replica_id} did not quiesce within "
                        f"{timeout}s")
                time.sleep(0.001)
            with self._state_lock:
                if self._dedup_window:
                    dedup = {
                        client: OrderedDict(
                            (rid, response)
                            for rid, response in window.items()
                            if response is not self._PENDING)
                        for client, window in self._dedup.items()
                    }
                else:
                    dedup = {
                        client: entry
                        for client, entry in self._dedup.items()
                        if entry[1] is not self._PENDING
                    }
            return Checkpoint(self._last_instance, self.service.snapshot(),
                              dedup)

    def install_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Adopt a peer's checkpoint.  Only valid before :meth:`start`."""
        if self._started:
            raise CheckpointError("cannot install a checkpoint while running")
        self.service.restore(checkpoint.state)
        if self._dedup_window:
            self._dedup = {client: OrderedDict(window)
                           for client, window in checkpoint.dedup.items()}
        else:
            self._dedup = dict(checkpoint.dedup)
        self._last_instance = checkpoint.instance

    def cached_response(self, client_id: str) -> Optional[Tuple[int, Any]]:
        """Last (request_id, response) executed for ``client_id``, if any."""
        cached = self._dedup.get(client_id)
        if cached is None:
            return None
        if self._dedup_window:
            for request_id in reversed(cached):
                if cached[request_id] is not self._PENDING:
                    return (request_id, cached[request_id])
            return None
        if cached[1] is self._PENDING:
            return None
        return cached


class SequentialReplica(ParallelReplica):
    """Classic SMR: strict delivery-order execution on one worker."""

    def __init__(
        self,
        replica_id: int,
        service: Service,
        max_queue_size: int = DEFAULT_MAX_SIZE,
        on_response: Optional[ResponseCallback] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(
            replica_id,
            service,
            cos_algorithm="sequential",
            workers=1,
            max_graph_size=max_queue_size,
            on_response=on_response,
            registry=registry,
            # Strict delivery order: the FIFO's queued commands may
            # conflict, so draining several at once is never legal here.
            dispatch_batch=1,
        )
