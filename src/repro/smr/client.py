"""Closed-loop SMR clients.

A client stamps each command with its ``client_id`` and a monotonically
increasing ``request_id``, atomically broadcasts it through a contact
replica, and blocks until the first replica response arrives (crash model:
any single response is correct).  On timeout it retransmits through another
contact; replica-side deduplication makes retransmission safe.

``execute_batch`` sends several commands in one broadcast payload — the
client-side batching interface the paper added to BFT-SMaRt (§7.1).
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.command import Command
from repro.errors import ShutdownError

__all__ = ["Client", "ClientTimeout"]

# submit(payload, contact_replica) — provided by the cluster.
SubmitFn = Callable[[Tuple[Command, ...], int], None]


class ClientTimeout(ShutdownError):
    """No replica answered within the retry budget."""


class Client:
    """Blocking, closed-loop client with retransmission."""

    def __init__(
        self,
        client_id: str,
        submit: SubmitFn,
        n_replicas: int,
        contact: int = 0,
        timeout: float = 1.0,
        max_retries: int = 5,
    ):
        self.client_id = client_id
        self._submit = submit
        self._n_replicas = n_replicas
        self._contact = contact % n_replicas
        self._timeout = timeout
        self._max_retries = max_retries
        self._next_request_id = 1
        self._responses: "queue.Queue[Tuple[int, Any]]" = queue.Queue()
        self._lock = threading.Lock()

    # ------------------------------------------------------------- plumbing

    def deliver_response(self, command: Command, response: Any) -> None:
        """Called by the cluster when any replica answers this client."""
        self._responses.put((command.request_id, response))

    # ------------------------------------------------------------------ API

    def execute(self, command: Command) -> Any:
        """Broadcast one command and return its response."""
        return self.execute_batch([command])[0]

    def execute_batch(self, commands: Sequence[Command]) -> List[Any]:
        """Broadcast ``commands`` as one payload; return their responses.

        Responses come back in command order.  All commands of the batch
        share one payload, so the ordering protocol handles them in a
        single consensus instance when they fit the leader's batch.
        """
        if not commands:
            return []
        with self._lock:
            stamped = []
            for command in commands:
                stamped.append(
                    dataclasses.replace(
                        command,
                        client_id=self.client_id,
                        request_id=self._next_request_id,
                    )
                )
                self._next_request_id += 1
            return self._roundtrip(tuple(stamped))

    # ------------------------------------------------------------- internals

    def _roundtrip(self, payload: Tuple[Command, ...]) -> List[Any]:
        wanted = {cmd.request_id for cmd in payload}
        responses = {}
        contact = self._contact
        for attempt in range(self._max_retries + 1):
            try:
                self._submit(payload, contact)
            except ShutdownError:
                # Contact gone (crashed/stopped): count as a failed attempt
                # and try the next replica.
                contact = (contact + 1) % self._n_replicas
                continue
            # One deadline per attempt: every ``get`` below is budgeted the
            # *remaining* time, so a batch of k commands cannot stretch the
            # attempt to k * timeout while a slow replica drips responses.
            deadline = time.monotonic() + self._timeout
            try:
                while wanted - responses.keys():
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise queue.Empty
                    request_id, response = self._responses.get(timeout=remaining)
                    if request_id in wanted:
                        # Keep the first response per request; replicas all
                        # answer, later ones are redundant in crash mode.
                        responses.setdefault(request_id, response)
                return [responses[cmd.request_id] for cmd in payload]
            except queue.Empty:
                contact = (contact + 1) % self._n_replicas  # try elsewhere
        raise ClientTimeout(
            f"client {self.client_id}: no response after "
            f"{self._max_retries + 1} attempts"
        )

    @property
    def requests_issued(self) -> int:
        """Request ids consumed so far."""
        return self._next_request_id - 1
