"""Checkpointing and state transfer for replica recovery.

A checkpoint is a consistent cut of a replica: the service snapshot, the
dedup/response cache, and the atomic-broadcast instance up to which the
snapshot reflects every delivered command.  Because workers execute out of
delivery order, a consistent cut requires *quiescence*: delivery is briefly
blocked while the in-flight commands drain, then the state is copied.

A recovering replica installs a peer's checkpoint and rejoins the broadcast
group with ``first_instance = checkpoint.instance + 1``; the heartbeat
anti-entropy of :class:`~repro.broadcast.paxos.MultiPaxos` then pulls any
instances decided between the checkpoint and the present.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.errors import ReproError

__all__ = ["Checkpoint", "CheckpointError"]


class CheckpointError(ReproError):
    """Quiescence could not be reached or a checkpoint is unusable."""


@dataclass(frozen=True)
class Checkpoint:
    """A consistent replica cut.

    Attributes:
        instance: Highest atomic-broadcast instance whose commands are all
            reflected in ``state`` (-1 when nothing was delivered yet).
        state: The service snapshot.
        dedup: Per-client ``(request_id, response)`` cache, so a recovered
            replica keeps exactly-once semantics across its restart.
    """

    instance: int
    state: Any
    dedup: Dict[str, Tuple[int, Any]] = field(default_factory=dict)
