"""Threaded SMR cluster: wiring for a full in-process deployment.

Assembles transport + atomic broadcast nodes + replicas + clients into a
running replicated service, the in-process equivalent of the paper's
3-machine BFT-SMaRt deployment (§7.1):

- every replica runs a broadcast protocol node (Multi-Paxos by default) and
  an execution engine (parallel scheduler/workers or sequential);
- clients submit batches through a contact replica and wait for the first
  response;
- :meth:`ThreadedCluster.crash` kills a replica (crash-stop) to exercise
  fault tolerance with ``f = 1`` out of ``n = 3``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.broadcast import (
    FaultPlan,
    MultiPaxos,
    SequencerBroadcast,
    ThreadedNode,
    ThreadedTransport,
)
from repro.broadcast.storage import InMemoryStableStore
from repro.core.command import Command
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.errors import ConfigurationError, ShutdownError
from repro.smr.client import Client
from repro.smr.replica import ParallelReplica, SequentialReplica
from repro.smr.service import Service

__all__ = ["ClusterConfig", "ThreadedCluster"]

ServiceFactory = Callable[[], Service]


@dataclass
class ClusterConfig:
    """Parameters of a threaded cluster deployment."""

    service_factory: Optional[ServiceFactory] = None
    n_replicas: int = 3
    protocol: str = "paxos"            # "paxos" | "sequencer"
    cos_algorithm: str = "lock-free"   # any of COS_ALGORITHMS, or "sequential"
    workers: int = 4
    #: Execution engine per replica: "threaded" (worker threads call the
    #: service directly) or "mp" (repro.par shard worker processes).
    engine: str = "threaded"
    #: Shard worker processes per replica when ``engine == "mp"``.
    mp_workers: int = 2
    #: Registered service name (repro.apps.SERVICES) + factory kwargs.
    #: Required for the mp engine — worker processes rebuild the service
    #: from this spec, live instances don't cross process boundaries.
    #: For the threaded engine it is an alternative to ``service_factory``.
    service: Optional[str] = None
    service_kwargs: Dict[str, Any] = field(default_factory=dict)
    max_graph_size: int = DEFAULT_MAX_SIZE
    batch_size: int = 64
    heartbeat_interval: float = 0.05
    leader_timeout: float = 0.25
    #: Nagle-style proposer linger (paxos only).  ``None`` picks a tenth of
    #: the heartbeat interval; 0 proposes immediately.
    propose_linger: Optional[float] = None
    #: One cumulative ack per batch window instead of Decide broadcasts.
    cumulative_acks: bool = True
    #: Leader-lease window (paxos only).  ``None`` picks 0.8x the leader
    #: timeout; 0 disables leases (and with them local lease reads).
    lease_duration: Optional[float] = None
    lease_margin: Optional[float] = None
    #: Serve all-read batches at the leaseholder without a consensus round.
    lease_reads: bool = True
    client_timeout: float = 2.0
    #: Optimistic (speculative) execution over the sequencer fast path:
    #: replicas execute on optimistic delivery and withhold responses
    #: until the conservative order confirms (repro.spec,
    #: docs/speculation.md).  Requires ``protocol="sequencer"`` and the
    #: threaded engine.
    speculative: bool = False
    #: Persist acceptor state per node so crashed replicas can rejoin
    #: safely (see repro.broadcast.storage).
    stable_storage: bool = False
    fault_plan: FaultPlan = field(default_factory=lambda: FaultPlan(
        min_delay=0.0, max_delay=0.0))

    def validate(self) -> None:
        if self.protocol not in ("paxos", "sequencer"):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.protocol == "paxos" and self.n_replicas % 2 == 0:
            raise ConfigurationError(
                f"paxos needs an odd replica count, got {self.n_replicas}"
            )
        if self.n_replicas < 1:
            raise ConfigurationError("need at least one replica")
        if self.engine not in ("threaded", "mp"):
            raise ConfigurationError(f"unknown engine {self.engine!r}")
        if self.engine == "mp":
            if self.service is None:
                raise ConfigurationError(
                    "engine='mp' requires a service name (service=...): "
                    "shard worker processes rebuild the service from its "
                    "spec, a live service_factory instance cannot cross "
                    "process boundaries")
            if self.mp_workers < 1:
                raise ConfigurationError(
                    f"mp_workers must be >= 1, got {self.mp_workers}")
        if self.service_factory is None and self.service is None:
            raise ConfigurationError(
                "need a service_factory or a service name")
        if self.speculative:
            if self.protocol != "sequencer":
                raise ConfigurationError(
                    "speculative execution rides the sequencer's optimistic "
                    "delivery; use protocol='sequencer'")
            if self.engine != "threaded":
                raise ConfigurationError(
                    "speculative execution requires the threaded engine "
                    "(undo capture is not plumbed through shard processes)")


class ThreadedCluster:
    """A running in-process replicated service."""

    def __init__(self, config: ClusterConfig):
        config.validate()
        self.config = config
        self._transport = ThreadedTransport(config.n_replicas, config.fault_plan)
        self._stores: Dict[int, Dict[Any, Any]] = {}
        self._clients: Dict[str, Client] = {}
        self._clients_lock = threading.Lock()
        self._client_counter = itertools.count(1)
        self.replicas: List[ParallelReplica] = []
        self.nodes: List[ThreadedNode] = []
        #: replica_id -> MpService when config.engine == "mp" (the engines
        #: need lifecycle calls the Service interface doesn't have).
        self._engines: Dict[int, Any] = {}
        for replica_id in range(config.n_replicas):
            replica = self._build_replica(replica_id)
            self.replicas.append(replica)
            self.nodes.append(
                ThreadedNode(
                    replica_id,
                    self._build_protocol(replica_id),
                    self._transport,
                    replica.on_deliver,
                    on_read=replica.on_local_read,
                    on_optimistic=getattr(replica, "on_optimistic", None),
                )
            )
        self._started = False

    # --------------------------------------------------------------- builders

    def _build_service(self, replica_id: int) -> Service:
        if self.config.engine == "mp":
            # Lazy import: only mp clusters pull in multiprocessing plumbing.
            from repro.par import MpService

            engine = MpService(
                self.config.service,
                self.config.service_kwargs,
                workers=self.config.mp_workers,
            )
            self._engines[replica_id] = engine
            return engine
        if self.config.service_factory is not None:
            return self.config.service_factory()
        from repro.apps import build_service

        return build_service(self.config.service, **self.config.service_kwargs)

    def _build_replica(self, replica_id: int) -> ParallelReplica:
        service = self._build_service(replica_id)
        if self.config.cos_algorithm == "sequential":
            return SequentialReplica(
                replica_id,
                service,
                max_queue_size=self.config.max_graph_size,
                on_response=self._route_response,
            )
        if self.config.speculative:
            # Imported here: repro.spec pulls in repro.groups (command
            # identity), which imports repro.smr right back.
            from repro.spec.replica import SpeculativeReplica

            return SpeculativeReplica(
                replica_id,
                service,
                cos_algorithm=self.config.cos_algorithm,
                workers=self.config.workers,
                max_graph_size=self.config.max_graph_size,
                on_response=self._route_response,
            )
        return ParallelReplica(
            replica_id,
            service,
            cos_algorithm=self.config.cos_algorithm,
            workers=self.config.workers,
            max_graph_size=self.config.max_graph_size,
            on_response=self._route_response,
        )

    def _build_protocol(self, replica_id: int, first_instance: int = 0) -> Any:
        if self.config.protocol == "sequencer":
            return SequencerBroadcast(replica_id, self.config.n_replicas,
                                      optimistic=self.config.speculative)
        store = None
        if self.config.stable_storage:
            store = InMemoryStableStore(
                self._stores.setdefault(replica_id, {}))
        # Stagger leader timeouts so campaigns rarely collide.
        linger = self.config.propose_linger
        if linger is None:
            linger = self.config.heartbeat_interval / 10
        return MultiPaxos(
            replica_id,
            self.config.n_replicas,
            batch_size=self.config.batch_size,
            heartbeat_interval=self.config.heartbeat_interval,
            leader_timeout=self.config.leader_timeout * (1 + 0.35 * replica_id),
            first_instance=first_instance,
            stable_store=store,
            propose_linger=linger,
            cumulative_acks=self.config.cumulative_acks,
            lease_duration=self.config.lease_duration,
            lease_margin=self.config.lease_margin,
            lease_reads=self.config.lease_reads,
        )

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "ThreadedCluster":
        if self._started:
            raise ShutdownError("cluster already started")
        self._started = True
        # Engines first: with the fork start method the shard processes
        # should multiply the process before replica/node threads exist.
        for engine in self._engines.values():
            engine.start()
        for replica in self.replicas:
            replica.start()
        for node in self.nodes:
            node.start()
        return self

    def stop(self) -> None:
        for node in self.nodes:
            node.stop()
        self._transport.close()
        for replica in self.replicas:
            replica.stop()
        for engine in self._engines.values():
            engine.stop()  # idempotent; after replicas so drains complete

    def __enter__(self) -> "ThreadedCluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ client

    def client(self, client_id: Optional[str] = None, contact: int = 0,
               timeout: Optional[float] = None) -> Client:
        """Create (and register) a client of this cluster."""
        if client_id is None:
            client_id = f"client-{next(self._client_counter)}"
        client = Client(
            client_id,
            self._submit,
            self.config.n_replicas,
            contact=contact,
            timeout=timeout if timeout is not None else self.config.client_timeout,
        )
        with self._clients_lock:
            if client_id in self._clients:
                raise ConfigurationError(f"duplicate client id {client_id!r}")
            self._clients[client_id] = client
        return client

    def _submit(self, payload: Tuple[Command, ...], contact: int) -> None:
        node = self.nodes[contact % len(self.nodes)]
        if not node.running:
            node = next((n for n in self.nodes if n.running), None)
            if node is None:
                raise ShutdownError("no replica is running")
        if (self.config.lease_reads and payload
                and all(not c.writes for c in payload)):
            # All-read batches may be served locally by a leaseholder; any
            # non-leaseholder falls back to the ordered path transparently.
            node.submit_read(payload)
        else:
            node.submit(payload)

    def _route_response(self, command: Command, response: Any,
                        replica_id: int) -> None:
        with self._clients_lock:
            client = self._clients.get(command.client_id)
        if client is not None:
            client.deliver_response(command, response)

    # ------------------------------------------------------------------ faults

    def crash(self, replica_id: int) -> None:
        """Crash-stop one replica: no more messages in or out, no execution."""
        self._transport.crash(replica_id)
        self.nodes[replica_id].stop()
        self.replicas[replica_id].stop(timeout=1.0)
        engine = self._engines.get(replica_id)
        if engine is not None:
            engine.stop()

    def restart_replica(self, replica_id: int,
                        from_peer: Optional[int] = None) -> None:
        """Rebuild a crashed replica from a live peer's checkpoint.

        The peer briefly quiesces to produce a consistent cut; the new
        replica installs it and rejoins the broadcast group at
        ``checkpoint.instance + 1``.  Heartbeat anti-entropy pulls any
        instances decided since the checkpoint.  With
        ``config.stable_storage`` the rebuilt protocol node also recovers
        its acceptor promises, so rejoining cannot violate agreement.
        """
        if self.nodes[replica_id].running:
            raise ConfigurationError(
                f"replica {replica_id} is still running; crash it first")
        if from_peer is None:
            candidates = [
                index for index, node in enumerate(self.nodes)
                if index != replica_id and node.running
            ]
            if not candidates:
                raise ShutdownError("no live peer to recover from")
            from_peer = candidates[0]
        checkpoint = self.replicas[from_peer].take_checkpoint()
        self._transport.reset_inbox(replica_id)
        self._transport.recover(replica_id)
        replica = self._build_replica(replica_id)
        replica.install_checkpoint(checkpoint)
        self.replicas[replica_id] = replica
        protocol = self._build_protocol(
            replica_id, first_instance=checkpoint.instance + 1)
        node = ThreadedNode(replica_id, protocol, self._transport,
                            replica.on_deliver,
                            on_read=replica.on_local_read,
                            on_optimistic=getattr(
                                replica, "on_optimistic", None))
        self.nodes[replica_id] = node
        engine = self._engines.get(replica_id)
        if engine is not None:
            # _build_replica registered a fresh engine for this id; starting
            # it installs the checkpoint state stashed by install_checkpoint.
            engine.start()
        replica.start()
        node.start()

    # --------------------------------------------------------------- helpers

    def services(self) -> List[Service]:
        """The replicas' service instances (for consistency checks)."""
        return [replica.service for replica in self.replicas]

    def total_executed(self) -> List[int]:
        return [replica.executed for replica in self.replicas]
