"""Keyed key-value store service (extension application).

Demonstrates a richer conflict relation than the paper's readers/writers
list: commands on *different keys* never conflict, so even write-heavy
workloads parallelize as long as they spread across keys.  This is the
"application knowledge" class of parallel SMR (paper §8.2) taken one step
further, and is used by the keyed-conflicts ablation benchmark.

Operations: ``get(k)``, ``put(k, v)``, ``delete(k)``, ``cas(k, old, new)``.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.core.command import (
    Command,
    ConflictRelation,
    KeyedConflicts,
    stable_hash,
)
from repro.smr.service import ShardableService

__all__ = ["KVStoreService", "canonical_key_order"]


def canonical_key_order(key: Any) -> Tuple[str, str]:
    """Total order over mixed-type keys, identical in every process.

    Snapshots are sorted with this so their serialized form is canonical:
    two replicas that reached the same state through different interleavings
    of non-conflicting commands produce byte-identical encodings
    (DESIGN.md §"determinism" — dict insertion order is execution order,
    which legitimately differs across processes).
    """
    return (type(key).__name__, repr(key))


class KVStoreService(ShardableService):
    """In-memory dictionary with per-key conflict granularity."""

    READ_OPS = frozenset({"get"})
    WRITE_OPS = frozenset({"put", "delete", "cas"})

    def __init__(self, execution_cost: float = 0.0):
        self._data: Dict[Any, Any] = {}
        self._conflicts = KeyedConflicts()
        self._execution_cost = execution_cost

    # -------------------------------------------------------------- service

    def execute(self, command: Command) -> Any:
        op = command.op
        if op == "get":
            return self._data.get(command.args[0])
        if op == "put":
            key, value = command.args
            previous = self._data.get(key)
            self._data[key] = value
            return previous
        if op == "delete":
            return self._data.pop(command.args[0], None)
        if op == "cas":
            key, expected, new = command.args
            if self._data.get(key) == expected:
                self._data[key] = new
                return True
            return False
        raise ValueError(f"unknown kv operation {op!r}")

    @property
    def conflicts(self) -> ConflictRelation:
        return self._conflicts

    @property
    def execution_cost(self) -> float:
        return self._execution_cost

    def snapshot(self) -> Dict[Any, Any]:
        # Canonical encoding: sorted by key so serialization is identical
        # across processes regardless of insertion (execution) order.
        return dict(sorted(self._data.items(),
                           key=lambda item: canonical_key_order(item[0])))

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        self._data = dict(snapshot)

    # ----------------------------------------------------------- speculation

    def capture_undo(self, command: Command) -> Any:
        """Inverse record for speculative execution (repro.spec).

        Every write touches exactly one key, so ``(key, had, previous)``
        restores it precisely; reads need nothing.
        """
        if not command.writes:
            return None
        key = command.args[0]
        return (key, key in self._data, self._data.get(key))

    def apply_undo(self, record: Any) -> None:
        if record is None:
            return
        key, had, previous = record
        if had:
            self._data[key] = previous
        else:
            self._data.pop(key, None)

    # ------------------------------------------------------------- sharding

    def shards_of(self, command: Command, n_shards: int) -> Tuple[int, ...]:
        return (stable_hash(command.args[0]) % n_shards,)

    def snapshot_shard(self, shard: int, n_shards: int) -> Dict[Any, Any]:
        return {
            key: value for key, value in self.snapshot().items()
            if stable_hash(key) % n_shards == shard
        }

    def recompose_snapshots(self, fragments: Sequence[Dict[Any, Any]]) -> Dict[Any, Any]:
        merged: Dict[Any, Any] = {}
        for fragment in fragments:
            merged.update(fragment)
        return dict(sorted(merged.items(),
                           key=lambda item: canonical_key_order(item[0])))

    # ----------------------------------------------------- command builders

    @staticmethod
    def get(key: Any, client_id: str = None, request_id: int = 0) -> Command:
        return Command("get", (key,), client_id, request_id, writes=False)

    @staticmethod
    def put(key: Any, value: Any, client_id: str = None,
            request_id: int = 0) -> Command:
        return Command("put", (key, value), client_id, request_id, writes=True)

    @staticmethod
    def delete(key: Any, client_id: str = None, request_id: int = 0) -> Command:
        return Command("delete", (key,), client_id, request_id, writes=True)

    @staticmethod
    def cas(key: Any, expected: Any, new: Any, client_id: str = None,
            request_id: int = 0) -> Command:
        return Command("cas", (key, expected, new), client_id, request_id,
                       writes=True)

    def __len__(self) -> int:
        return len(self._data)
