"""Replicated bank service (example application).

Accounts with deposits, withdrawals, transfers and balance queries.  The
conflict relation is account-scoped: two commands conflict iff they touch a
common account and at least one writes, so a transfer conflicts with
anything touching either endpoint.  Used by the ``bank_transfers`` example
to show invariant preservation (money conservation) under parallel
execution across replicas.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.core.command import (
    Command,
    ConflictRelation,
    PredicateConflicts,
    stable_hash,
)
from repro.smr.service import ShardableService

__all__ = ["BankService"]


def _accounts_of(command: Command) -> FrozenSet[str]:
    if command.op == "transfer":
        return frozenset(command.args[:2])
    return frozenset(command.args[:1])


def _bank_conflict(a: Command, b: Command) -> bool:
    if not (a.writes or b.writes):
        return False
    return bool(_accounts_of(a) & _accounts_of(b))


class BankService(ShardableService):
    """Account ledger with account-scoped conflicts."""

    def __init__(self, execution_cost: float = 0.0):
        self._balances: Dict[str, int] = {}
        self._conflicts = PredicateConflicts(_bank_conflict)
        self._execution_cost = execution_cost

    # -------------------------------------------------------------- service

    def execute(self, command: Command) -> Any:
        op = command.op
        if op == "balance":
            return self._balances.get(command.args[0], 0)
        if op == "deposit":
            account, amount = command.args
            self._check_amount(amount)
            self._balances[account] = self._balances.get(account, 0) + amount
            return self._balances[account]
        if op == "withdraw":
            account, amount = command.args
            self._check_amount(amount)
            balance = self._balances.get(account, 0)
            if balance < amount:
                return None  # insufficient funds
            self._balances[account] = balance - amount
            return self._balances[account]
        if op == "transfer":
            src, dst, amount = command.args
            self._check_amount(amount)
            balance = self._balances.get(src, 0)
            if balance < amount:
                return False
            self._balances[src] = balance - amount
            self._balances[dst] = self._balances.get(dst, 0) + amount
            return True
        raise ValueError(f"unknown bank operation {op!r}")

    @staticmethod
    def _check_amount(amount: int) -> None:
        if amount < 0:
            raise ValueError(f"negative amount {amount}")

    @property
    def conflicts(self) -> ConflictRelation:
        return self._conflicts

    @property
    def execution_cost(self) -> float:
        return self._execution_cost

    def snapshot(self) -> Dict[str, int]:
        # Sorted by account: canonical serialization across processes (the
        # insertion order of non-conflicting deposits is schedule-dependent).
        return dict(sorted(self._balances.items()))

    def restore(self, snapshot: Dict[str, int]) -> None:
        self._balances = dict(snapshot)

    # ----------------------------------------------------------- speculation

    def capture_undo(self, command: Command) -> Any:
        """Inverse record for speculative execution (repro.spec).

        One ``(account, had, previous_balance)`` triple per touched
        account; applying them in any order restores the pre-state, since
        the accounts of one command are distinct dictionary slots.
        """
        if not command.writes:
            return None
        return tuple(
            (account, account in self._balances,
             self._balances.get(account, 0))
            for account in sorted(_accounts_of(command))
        )

    def apply_undo(self, record: Any) -> None:
        if record is None:
            return
        for account, had, previous in record:
            if had:
                self._balances[account] = previous
            else:
                self._balances.pop(account, None)

    # ------------------------------------------------------------- sharding

    def shards_of(self, command: Command, n_shards: int) -> Tuple[int, ...]:
        """Shards of the touched accounts; a cross-shard transfer spans two."""
        return tuple(sorted({
            stable_hash(account) % n_shards
            for account in _accounts_of(command)
        }))

    def snapshot_shard(self, shard: int, n_shards: int) -> Dict[str, int]:
        return {
            account: balance
            for account, balance in sorted(self._balances.items())
            if stable_hash(account) % n_shards == shard
        }

    def recompose_snapshots(self, fragments: Sequence[Dict[str, int]]) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for fragment in fragments:
            merged.update(fragment)
        return dict(sorted(merged.items()))

    def total_money(self) -> int:
        """Sum over all balances (conserved by transfers)."""
        return sum(self._balances.values())

    # ----------------------------------------------------- command builders

    @staticmethod
    def balance(account: str, client_id: Optional[str] = None,
                request_id: int = 0) -> Command:
        return Command("balance", (account,), client_id, request_id, writes=False)

    @staticmethod
    def deposit(account: str, amount: int, client_id: Optional[str] = None,
                request_id: int = 0) -> Command:
        return Command("deposit", (account, amount), client_id, request_id,
                       writes=True)

    @staticmethod
    def withdraw(account: str, amount: int, client_id: Optional[str] = None,
                 request_id: int = 0) -> Command:
        return Command("withdraw", (account, amount), client_id, request_id,
                       writes=True)

    @staticmethod
    def transfer(src: str, dst: str, amount: int,
                 client_id: Optional[str] = None, request_id: int = 0) -> Command:
        return Command("transfer", (src, dst, amount), client_id, request_id,
                       writes=True)
