"""The paper's linked-list application (§7.2).

A readers-and-writers service over a singly linked list of integers:

- ``contains(i)`` — true iff ``i`` is in the list (read);
- ``add(i)`` — insert ``i`` if absent, returning whether it was inserted
  (write);
- ``contains-all(i, j, ...)`` / ``add-all(i, j, ...)`` — the multi-key
  forms, one membership test / insert per argument (used as the
  partition-crossing commands of :mod:`repro.groups` experiments).

Conflict model: ``contains`` commands do not conflict with each other but
conflict with ``add`` commands, which conflict with everything —
:class:`~repro.core.command.ReadWriteConflicts`.  Because the observable
state is a *set* (operations on different values commute), the service
also supports the finer per-key relation
(:class:`~repro.core.command.MultiKeyedConflicts`) via
``keyed_conflicts=True`` — the mode partitioned ordering requires, since a
single global conflict class cannot be split across groups
(docs/partitioning.md).

The list is a real pointer-chained structure and operations walk it node by
node, so execution cost genuinely scales with the initial population (1k /
10k / 100k entries for light / moderate / heavy), mirroring the paper's
cost classes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.command import (
    Command,
    ConflictRelation,
    MultiKeyedConflicts,
    ReadWriteConflicts,
    stable_hash,
)
from repro.smr.service import ShardableService
from repro.workload.generator import (
    MULTI_READ_OP,
    MULTI_WRITE_OP,
    READ_OP,
    WRITE_OP,
)

__all__ = ["LinkedListService"]


class _ListNode:
    __slots__ = ("value", "nxt")

    def __init__(self, value: int, nxt: Optional["_ListNode"] = None):
        self.value = value
        self.nxt = nxt


class LinkedListService(ShardableService):
    """Singly linked list with ``contains``/``add`` commands."""

    def __init__(self, initial_size: int = 0, execution_cost: float = 0.0,
                 keyed_conflicts: bool = False):
        """Initialize with entries ``0 .. initial_size - 1`` (paper §7.2).

        Args:
            initial_size: Pre-populated entries.
            execution_cost: Mean per-command cost charged in simulation runs.
            keyed_conflicts: Use the per-key conflict relation (sound for
                the set semantics; required by partitioned ordering)
                instead of the paper's coarse readers/writers relation.
        """
        self._head: Optional[_ListNode] = None
        self._size = 0
        self._conflicts: ConflictRelation = (
            MultiKeyedConflicts() if keyed_conflicts
            else ReadWriteConflicts())
        self._execution_cost = execution_cost
        # Build back-to-front so the list reads 0, 1, 2, ...
        for value in range(initial_size - 1, -1, -1):
            self._head = _ListNode(value, self._head)
            self._size += 1

    # -------------------------------------------------------------- service

    def execute(self, command: Command) -> Any:
        if command.op == READ_OP:
            return self._contains(command.args[0])
        if command.op == WRITE_OP:
            return self._add(command.args[0])
        if command.op == MULTI_READ_OP:
            return tuple(self._contains(value) for value in command.args)
        if command.op == MULTI_WRITE_OP:
            return tuple(self._add(value) for value in command.args)
        raise ValueError(f"unknown linked-list operation {command.op!r}")

    @property
    def conflicts(self) -> ConflictRelation:
        return self._conflicts

    @property
    def execution_cost(self) -> float:
        return self._execution_cost

    def snapshot(self) -> List[int]:
        # Canonical encoding: sorted values.  The observable state is a set
        # (``contains``/``add`` are order-blind), and the internal chain
        # order is an execution artifact — sorting makes the serialized form
        # identical across processes and lets per-shard fragments recompose
        # to exactly the unsharded snapshot (docs/parallel_execution.md).
        return sorted(self._iter_values())

    def restore(self, snapshot: List[int]) -> None:
        self._head = None
        self._size = 0
        for value in reversed(snapshot):
            self._head = _ListNode(value, self._head)
            self._size += 1

    # ------------------------------------------------------------- sharding

    def shards_of(self, command: Command, n_shards: int) -> Tuple[int, ...]:
        """Every operation touches exactly its argument keys' shards.

        Under the default coarse relation an ``add`` still *schedules*
        against everything, but the state footprint is per-key, so the
        multiprocess engine never needs a barrier for this service; the
        multi-key forms span one shard per distinct argument.
        """
        return tuple(sorted({stable_hash(value) % n_shards
                             for value in command.args}))

    def snapshot_shard(self, shard: int, n_shards: int) -> List[int]:
        return sorted(value for value in self._iter_values()
                      if stable_hash(value) % n_shards == shard)

    def recompose_snapshots(self, fragments: Sequence[List[int]]) -> List[int]:
        merged: List[int] = []
        for fragment in fragments:
            merged.extend(fragment)
        return sorted(merged)

    # ------------------------------------------------------------ operations

    def _contains(self, value: int) -> bool:
        node = self._head
        while node is not None:
            if node.value == value:
                return True
            node = node.nxt
        return False

    def _add(self, value: int) -> bool:
        """Append ``value`` at the tail if absent (walks the whole list)."""
        if self._head is None:
            self._head = _ListNode(value)
            self._size += 1
            return True
        node = self._head
        while True:
            if node.value == value:
                return False
            if node.nxt is None:
                node.nxt = _ListNode(value)
                self._size += 1
                return True
            node = node.nxt

    def _remove(self, value: int) -> bool:
        """Unlink ``value`` if present (speculative rollback only).

        The replicated command set is insert-only; removal exists solely
        so an optimistic ``add`` can be undone (repro.spec).
        """
        node = self._head
        previous: Optional[_ListNode] = None
        while node is not None:
            if node.value == value:
                if previous is None:
                    self._head = node.nxt
                else:
                    previous.nxt = node.nxt
                self._size -= 1
                return True
            previous = node
            node = node.nxt
        return False

    # ----------------------------------------------------------- speculation

    def capture_undo(self, command: Command) -> Any:
        """Inverse record for speculative execution (repro.spec).

        One ``(value, was_present)`` pair per argument, read against the
        pre-state: rollback removes exactly the values the command
        inserted.  Duplicate arguments in ``add-all`` are safe — both
        pairs say "absent", and ``_remove`` of an already-removed value
        is a no-op.
        """
        if not command.writes:
            return None
        return tuple(
            (value, self._contains(value)) for value in command.args
        )

    def apply_undo(self, record: Any) -> None:
        if record is None:
            return
        for value, was_present in reversed(record):
            if not was_present:
                self._remove(value)

    # ------------------------------------------------------------ inspection

    def _iter_values(self):
        node = self._head
        while node is not None:
            yield node.value
            node = node.nxt

    def __len__(self) -> int:
        return self._size

    def __contains__(self, value: int) -> bool:
        return self._contains(value)
