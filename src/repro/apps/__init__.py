"""Application services for the replicated state machine.

Also hosts the process-deployment service registry: worker processes (both
``repro.net`` replicas and ``repro.par`` shard workers) reconstruct their
service from a name + kwargs spec, because live service instances do not
cross process boundaries.
"""

from typing import Any, Callable, Dict, Tuple

from repro.apps.bank import BankService
from repro.apps.kvstore import KVStoreService
from repro.apps.linked_list import LinkedListService
from repro.errors import ConfigurationError
from repro.smr.service import Service

__all__ = [
    "LinkedListService",
    "KVStoreService",
    "BankService",
    "SERVICES",
    "build_service",
]

_SERVICE_FACTORIES: Dict[str, Callable[..., Service]] = {
    # The linked list pre-populates a small working set so reads have
    # something to scan (the historical `repro.net` default).
    "linked-list": lambda **kwargs: LinkedListService(
        **{"initial_size": 50, **kwargs}),
    # Per-key conflict relation: the variant partitioned ordering
    # (repro.groups) deploys, since its conflict classes can be split
    # across consensus groups (docs/partitioning.md).
    "linked-list-keyed": lambda **kwargs: LinkedListService(
        **{"initial_size": 50, "keyed_conflicts": True, **kwargs}),
    "kv": lambda **kwargs: KVStoreService(**kwargs),
    "bank": lambda **kwargs: BankService(**kwargs),
}

#: Deployable service names (``repro.net`` configs, ``repro.par`` specs).
SERVICES: Tuple[str, ...] = tuple(_SERVICE_FACTORIES)


def build_service(name: str, **kwargs: Any) -> Service:
    """Construct a registered service by name, overriding its defaults."""
    try:
        factory = _SERVICE_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown service {name!r}; choose from "
            f"{sorted(_SERVICE_FACTORIES)}") from None
    return factory(**kwargs)
