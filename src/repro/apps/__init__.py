"""Application services for the replicated state machine."""

from repro.apps.bank import BankService
from repro.apps.kvstore import KVStoreService
from repro.apps.linked_list import LinkedListService

__all__ = ["LinkedListService", "KVStoreService", "BankService"]
