"""``python -m repro net <replica|client|bench|supervise|group-*>``.

Subcommands:

- ``replica --id I --config FILE`` — run one replica process (the unit the
  supervisor spawns); blocks until SIGTERM/SIGINT.  A config with
  ``n_groups > 1`` boots the partitioned server (docs/partitioning.md).
- ``supervise --replicas N [...]`` — spawn a local process-per-replica
  cluster and keep it up until interrupted; prints the config file path so
  clients can join.
- ``client --config FILE --ops N [...]`` — run a closed-loop client batch
  workload against a running cluster and print throughput.
- ``group-supervise --groups G [...]`` — spawn a partitioned deployment:
  the same process-per-replica fleet, each process hosting one protocol
  node per consensus group.
- ``group-client --config FILE --cross F [...]`` — closed-loop client with
  a partition-crossing workload against a partitioned cluster.
- ``bench [...] --out FILE`` — full loopback benchmark: spawn processes,
  drive clients, optionally crash/recover one replica, write the JSON
  artifact (see :mod:`repro.net.bench`).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import time
from typing import List, Optional

from repro.core import COS_ALGORITHMS
from repro.net.bench import NetBenchConfig, run_net_bench
from repro.net.codec import WIRE_NAMES
from repro.net.client import NetClient
from repro.net.config import SERVICES, NetConfig, loopback_config
from repro.net.replica import ReplicaServer
from repro.net.supervisor import Supervisor
from repro.smr.client import ClientTimeout
from repro.workload import WorkloadGenerator

__all__ = ["add_net_parser", "run_net"]


def _add_cluster_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--service", default="linked-list", choices=SERVICES)
    parser.add_argument("--protocol", default="paxos",
                        choices=("paxos", "sequencer"))
    parser.add_argument("--algorithm", "--scheduler", default="lock-free",
                        choices=COS_ALGORITHMS)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--engine", default="threaded",
                        choices=("threaded", "mp"),
                        help="execution engine: worker threads, or shard "
                             "worker processes (docs/parallel_execution.md)")
    parser.add_argument("--mp-workers", type=int, default=2,
                        help="shard processes per replica with --engine mp")
    parser.add_argument("--wire", default="json", choices=WIRE_NAMES,
                        help="wire codec on every TCP connection "
                             "(docs/wire.md)")
    parser.add_argument("--propose-linger", type=float, default=None,
                        help="Nagle-style proposer linger in seconds; "
                             "default is a tenth of the heartbeat interval "
                             "(docs/ordering.md)")
    parser.add_argument("--lease-duration", type=float, default=None,
                        help="leader-lease window in seconds; default is "
                             "0.8x the leader timeout, 0 disables leases "
                             "(docs/ordering.md)")
    parser.add_argument("--lease-margin", type=float, default=None,
                        help="clock-skew safety margin subtracted from "
                             "each lease grant (docs/ordering.md)")
    parser.add_argument("--no-lease-reads", action="store_true",
                        help="order read-only batches instead of serving "
                             "them locally at the leaseholder")
    parser.add_argument("--no-cumulative-acks", action="store_true",
                        help="broadcast a Decide per instance instead of "
                             "piggybacking cumulative acks")


def add_net_parser(sub: argparse._SubParsersAction) -> None:
    net = sub.add_parser(
        "net", help="TCP deployment: replica/client processes, supervisor, "
                    "loopback bench (docs/deployment.md)")
    net_sub = net.add_subparsers(dest="net_command", required=True)

    replica = net_sub.add_parser("replica", help="run one replica process")
    replica.add_argument("--id", type=int, required=True, dest="replica_id")
    replica.add_argument("--config", required=True,
                         help="deployment JSON written by the supervisor")

    supervise = net_sub.add_parser(
        "supervise", help="spawn a local process-per-replica cluster")
    _add_cluster_options(supervise)
    supervise.add_argument("--config-out", default="repro-net-cluster.json",
                           help="where to write the deployment JSON")
    supervise.add_argument("--metrics", action="store_true",
                           help="serve /metrics from every replica "
                                "(docs/observability.md)")

    client = net_sub.add_parser(
        "client", help="closed-loop client against a running cluster")
    client.add_argument("--config", required=True)
    client.add_argument("--ops", type=int, default=200)
    client.add_argument("--batch", type=int, default=8)
    client.add_argument("--write-pct", type=float, default=30.0)
    client.add_argument("--contact", type=int, default=0)
    client.add_argument("--seed", type=int, default=1)

    group_supervise = net_sub.add_parser(
        "group-supervise",
        help="spawn a partitioned process-per-replica cluster "
             "(docs/partitioning.md)")
    _add_cluster_options(group_supervise)
    group_supervise.add_argument(
        "--groups", type=int, default=2,
        help="consensus groups (state partitions) per replica")
    group_supervise.add_argument(
        "--config-out", default="repro-net-groups.json",
        help="where to write the deployment JSON")
    group_supervise.add_argument(
        "--metrics", action="store_true",
        help="serve /metrics from every replica (docs/observability.md)")

    group_client = net_sub.add_parser(
        "group-client",
        help="closed-loop client with a partition-crossing workload")
    group_client.add_argument("--config", required=True)
    group_client.add_argument("--ops", type=int, default=200)
    group_client.add_argument("--batch", type=int, default=8)
    group_client.add_argument("--write-pct", type=float, default=30.0)
    group_client.add_argument(
        "--cross", type=float, default=0.0,
        help="fraction of commands spanning >= 2 partitions (in [0, 1])")
    group_client.add_argument(
        "--keys-per-cross", type=int, default=2,
        help="keys (and distinct partitions) per cross-partition command")
    group_client.add_argument("--contact", type=int, default=0)
    group_client.add_argument("--seed", type=int, default=1)

    bench = net_sub.add_parser(
        "bench", help="loopback throughput/latency benchmark -> JSON")
    _add_cluster_options(bench)
    bench.add_argument("--clients", type=int, default=4)
    bench.add_argument("--ops", type=int, default=400)
    bench.add_argument("--batch", type=int, default=8)
    bench.add_argument("--write-pct", type=float, default=30.0)
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--crash", action="store_true",
                       help="crash-stop replica n-1 mid-run and recover it")
    bench.add_argument("--out", default="repro-net-bench.json",
                       help="JSON artifact path")
    bench.add_argument("--trace", action="store_true",
                       help="record client-side per-command spans "
                            "(docs/observability.md)")
    bench.add_argument("--trace-out", default="repro-net-trace.jsonl",
                       help="span log path (JSONL) when --trace is on")


def _wait_for_signal() -> None:
    stop = threading.Event()

    def _handler(signum, frame):  # noqa: ANN001 - signal signature
        stop.set()

    signal.signal(signal.SIGTERM, _handler)
    signal.signal(signal.SIGINT, _handler)
    while not stop.is_set():
        stop.wait(0.5)


def _cmd_replica(args: argparse.Namespace) -> int:
    with open(args.config) as handle:
        config = NetConfig.from_json(handle.read())
    if config.n_groups > 1:
        from repro.groups.net import GroupedReplicaServer

        server = GroupedReplicaServer(args.replica_id, config)
    else:
        server = ReplicaServer(args.replica_id, config)
    server.start()
    host, port = config.addresses[args.replica_id]
    print(f"replica {args.replica_id} listening on {host}:{port}", flush=True)
    try:
        _wait_for_signal()
    finally:
        server.stop()
    return 0


def _cmd_supervise(args: argparse.Namespace) -> int:
    config = loopback_config(
        n_replicas=args.replicas,
        metrics=args.metrics,
        service=args.service,
        protocol=args.protocol,
        cos_algorithm=args.algorithm,
        workers=args.workers,
        engine=args.engine,
        mp_workers=args.mp_workers,
        wire=args.wire,
        propose_linger=args.propose_linger,
        cumulative_acks=not args.no_cumulative_acks,
        lease_duration=args.lease_duration,
        lease_margin=args.lease_margin,
        lease_reads=not args.no_lease_reads,
    )
    with open(args.config_out, "w") as handle:
        handle.write(config.to_json())
    with Supervisor(config) as supervisor:
        supervisor.wait_ready()
        print(f"{args.replicas} replica processes up; deployment config at "
              f"{args.config_out}", flush=True)
        if config.metrics_addresses:
            for replica_id, (host, port) in enumerate(
                    config.metrics_addresses):
                print(f"replica {replica_id} metrics at "
                      f"http://{host}:{port}/metrics", flush=True)
        print("run a workload with: python -m repro net client "
              f"--config {args.config_out}", flush=True)
        _wait_for_signal()
    return 0


def _cmd_group_supervise(args: argparse.Namespace) -> int:
    config = loopback_config(
        n_replicas=args.replicas,
        metrics=args.metrics,
        n_groups=args.groups,
        service=args.service,
        protocol=args.protocol,
        cos_algorithm=args.algorithm,
        workers=args.workers,
        engine=args.engine,
        mp_workers=args.mp_workers,
        wire=args.wire,
        propose_linger=args.propose_linger,
        cumulative_acks=not args.no_cumulative_acks,
        lease_duration=args.lease_duration,
        lease_margin=args.lease_margin,
        lease_reads=not args.no_lease_reads,
    )
    with open(args.config_out, "w") as handle:
        handle.write(config.to_json())
    with Supervisor(config) as supervisor:
        supervisor.wait_ready()
        print(f"{args.replicas} replica processes up, each hosting "
              f"{args.groups} consensus groups; deployment config at "
              f"{args.config_out}", flush=True)
        if config.metrics_addresses:
            for replica_id, (host, port) in enumerate(
                    config.metrics_addresses):
                print(f"replica {replica_id} metrics at "
                      f"http://{host}:{port}/metrics", flush=True)
        print("run a workload with: python -m repro net group-client "
              f"--config {args.config_out} --cross 0.1", flush=True)
        _wait_for_signal()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    with open(args.config) as handle:
        config = NetConfig.from_json(handle.read())
    workload = WorkloadGenerator(args.write_pct, key_space=500,
                                 seed=args.seed)
    client = NetClient("cli-client", config, contact=args.contact)
    executed = 0
    errors = 0
    started = time.monotonic()
    try:
        while executed < args.ops:
            commands = workload.commands(min(args.batch,
                                             args.ops - executed))
            try:
                client.execute_batch(commands)
                executed += len(commands)
            except ClientTimeout:
                errors += len(commands)
    finally:
        client.close()
    elapsed = time.monotonic() - started
    rate = executed / elapsed if elapsed > 0 else 0.0
    print(f"executed {executed} commands in {elapsed:.2f}s "
          f"({rate:.0f} cmds/s), {errors} timed out")
    return 0 if errors == 0 else 1


def _cmd_group_client(args: argparse.Namespace) -> int:
    with open(args.config) as handle:
        config = NetConfig.from_json(handle.read())
    if config.n_groups < 2 and args.cross > 0:
        print(f"config {args.config} has n_groups={config.n_groups}; "
              f"--cross needs a partitioned deployment", file=sys.stderr)
        return 2
    workload = WorkloadGenerator(
        args.write_pct, key_space=500, seed=args.seed,
        cross_partition_fraction=args.cross,
        n_partitions=config.n_groups if args.cross > 0 else None,
        keys_per_cross=args.keys_per_cross,
    )
    client = NetClient("cli-group-client", config, contact=args.contact)
    executed = 0
    cross_sent = 0
    errors = 0
    started = time.monotonic()
    try:
        while executed < args.ops:
            commands = workload.commands(min(args.batch,
                                             args.ops - executed))
            cross_sent += sum(1 for c in commands if len(c.args) > 1)
            try:
                client.execute_batch(commands)
                executed += len(commands)
            except ClientTimeout:
                errors += len(commands)
    finally:
        client.close()
    elapsed = time.monotonic() - started
    rate = executed / elapsed if elapsed > 0 else 0.0
    print(f"executed {executed} commands in {elapsed:.2f}s "
          f"({rate:.0f} cmds/s), {cross_sent} cross-partition, "
          f"{errors} timed out")
    return 0 if errors == 0 else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    config = NetBenchConfig(
        n_replicas=args.replicas,
        n_clients=args.clients,
        batch=args.batch,
        ops=args.ops,
        write_pct=args.write_pct,
        service=args.service,
        cos_algorithm=args.algorithm,
        workers=args.workers,
        engine=args.engine,
        mp_workers=args.mp_workers,
        wire=args.wire,
        propose_linger=args.propose_linger,
        cumulative_acks=not args.no_cumulative_acks,
        lease_duration=args.lease_duration,
        lease_margin=args.lease_margin,
        lease_reads=not args.no_lease_reads,
        seed=args.seed,
        crash_replica=args.replicas - 1 if args.crash else None,
        trace=args.trace,
        trace_path=args.trace_out if args.trace else None,
    )
    result = run_net_bench(config, out_path=args.out)
    print(f"replicas={args.replicas} clients={args.clients} "
          f"algorithm={args.algorithm} service={args.service}")
    print(f"throughput: {result.throughput:.0f} cmds/s over "
          f"{result.duration:.2f}s ({result.executed} executed, "
          f"{result.errors} timed out)")
    print(f"batch latency: mean {result.latency_mean * 1e3:.1f} ms / "
          f"p50 {result.latency_p50 * 1e3:.1f} ms / "
          f"p99 {result.latency_p99 * 1e3:.1f} ms")
    print(f"fig6 point: {result.fig6_point['throughput_kops']:.2f} kops/s "
          f"at {result.fig6_point['latency_ms']:.1f} ms")
    if result.crash_injected:
        print(f"crash injected: replica {config.crash_replica} "
              f"({'recovered' if result.recovered else 'not recovered'})")
    if config.trace:
        print(f"{result.trace_events} span events written to "
              f"{config.trace_path}")
    print(f"artifact written to {args.out}")
    return 0


def run_net(args: argparse.Namespace) -> int:
    handlers = {
        "replica": _cmd_replica,
        "supervise": _cmd_supervise,
        "client": _cmd_client,
        "group-supervise": _cmd_group_supervise,
        "group-client": _cmd_group_client,
        "bench": _cmd_bench,
    }
    return handlers[args.net_command](args)
