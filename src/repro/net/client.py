"""Closed-loop SMR client over TCP.

A :class:`NetClient` owns a small :class:`~repro.net.transport.TcpTransport`
of its own (clients listen too — replicas dial back with responses) and
wraps the unchanged :class:`~repro.smr.client.Client` retry/batching logic:
``submit`` becomes a :class:`~repro.net.messages.ClientRequest` frame to the
contact replica, and received :class:`~repro.net.messages.ClientResponse`
frames feed ``deliver_response``.

Client transport node ids live above the replica id range; pick them with
:meth:`NetClient.next_node_id` (one process) or hand them out explicitly
(many processes).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.command import Command
from repro.net.config import NetConfig, free_port
from repro.net.messages import ClientRequest, ClientResponse
from repro.net.transport import TcpTransport
from repro.smr.client import Client

__all__ = ["NetClient"]

#: Client node ids start well above any realistic replica count.
CLIENT_ID_BASE = 1_000

_client_node_ids = itertools.count(CLIENT_ID_BASE)
_client_node_lock = threading.Lock()


class NetClient:
    """Blocking client of a TCP cluster."""

    def __init__(
        self,
        client_id: str,
        config: NetConfig,
        node_id: Optional[int] = None,
        contact: int = 0,
        timeout: Optional[float] = None,
        max_retries: int = 5,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
    ):
        self.client_id = client_id
        self.config = config
        self.node_id = self.next_node_id() if node_id is None else node_id
        self._host = host
        self._port = free_port(host) if port is None else port
        addresses = config.address_map()
        addresses[self.node_id] = (self._host, self._port)
        self.transport = TcpTransport(
            self.node_id, addresses, interceptor=self._on_message,
            seed=self.node_id, wire=config.wire,
        ).start()
        self._client = Client(
            client_id,
            self._submit,
            config.n_replicas,
            contact=contact,
            timeout=config.client_timeout if timeout is None else timeout,
            max_retries=max_retries,
        )

    @staticmethod
    def next_node_id() -> int:
        with _client_node_lock:
            return next(_client_node_ids)

    # ------------------------------------------------------------------ API

    def execute(self, command: Command) -> Any:
        return self._client.execute(command)

    def execute_batch(self, commands: Sequence[Command]) -> List[Any]:
        return self._client.execute_batch(commands)

    @property
    def requests_issued(self) -> int:
        return self._client.requests_issued

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------- plumbing

    def _submit(self, payload: Tuple[Command, ...], contact: int) -> None:
        request = ClientRequest(
            payload=payload,
            reply_to=self.node_id,
            reply_host=self._host,
            reply_port=self._port,
            client_id=self.client_id,
            read_only=bool(payload) and all(not c.writes for c in payload),
        )
        self.transport.send(
            self.node_id, contact % self.config.n_replicas, request)

    def _on_message(self, src: int, msg: Any) -> bool:
        if isinstance(msg, ClientResponse):
            self._client.deliver_response(msg.command, msg.response)
        return True  # a client consumes everything; nothing feeds an inbox
