"""Multi-process cluster launcher.

:class:`Supervisor` spawns one OS process per replica (``python -m repro
net replica --id I --config FILE``), waits until every replica's TCP
endpoint accepts connections, and tears the fleet down cleanly.  Each
replica process has its own interpreter — under CPython this is the only
way replicas stop sharing one GIL (DESIGN.md §2), which is why the
ROADMAP's production path runs process-per-replica.

The process-management machinery lives in :class:`ProcessGroup` — a named
subset of the fleet with its own spawn/ready/kill/restart lifecycle.  A
supervisor manages one group (``"replicas"``) by default; callers can
carve the fleet into several named groups (``groups={"left": [0],
"right": [1, 2]}``) and bounce one group without disturbing the others'
processes — the deployment shape partitioned experiments want
(docs/partitioning.md).

Crash/recovery: :meth:`kill` delivers SIGKILL (crash-stop, nothing flushed)
and :meth:`restart` re-spawns the same replica id on the same endpoint.  A
restarted replica boots with empty learner state and catches up through the
protocol's anti-entropy (heartbeat frontier + catch-up requests), re-executing
the decided prefix to rebuild its service state.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, ShutdownError
from repro.net.config import NetConfig

__all__ = ["ProcessGroup", "Supervisor"]


def _repro_pythonpath() -> str:
    """PYTHONPATH entry that makes ``import repro`` work in children."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


def _port_open(host: str, port: int, timeout: float = 0.25) -> bool:
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False


class ProcessGroup:
    """A named set of replica subprocesses of one deployment.

    Owns the full lifecycle of its members — spawn, readiness wait,
    SIGKILL crash, restart, teardown — and nothing of any other group's:
    restarting this group never touches processes it does not own.  The
    config file is shared deployment-wide and owned by the caller
    (normally :class:`Supervisor`).
    """

    def __init__(self, name: str, config: NetConfig, config_path: str,
                 members: Sequence[int], python: Optional[str] = None,
                 log_dir: Optional[str] = None):
        if not members:
            raise ConfigurationError(f"process group {name!r} is empty")
        for replica_id in members:
            if not 0 <= replica_id < config.n_replicas:
                raise ConfigurationError(
                    f"process group {name!r}: replica {replica_id} out of "
                    f"range for {config.n_replicas} replicas")
        if len(set(members)) != len(members):
            raise ConfigurationError(
                f"process group {name!r} lists a replica twice: {members}")
        self.name = name
        self.config = config
        self.members = tuple(sorted(members))
        self._config_path = config_path
        self._python = python or sys.executable
        self._log_dir = log_dir
        self._procs: Dict[int, subprocess.Popen] = {}
        self._logs: List[Any] = []

    # -------------------------------------------------------------- lifecycle

    def spawn(self) -> "ProcessGroup":
        if self._procs:
            raise ShutdownError(f"process group {self.name!r} already spawned")
        for replica_id in self.members:
            self._spawn(replica_id)
        return self

    def _spawn(self, replica_id: int) -> None:
        env = dict(os.environ)
        src_root = _repro_pythonpath()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_root if not existing
                             else src_root + os.pathsep + existing)
        stdout: Any = subprocess.DEVNULL
        if self._log_dir is not None:
            log = open(Path(self._log_dir) / f"replica-{replica_id}.log", "ab")
            self._logs.append(log)
            stdout = log
        self._procs[replica_id] = subprocess.Popen(
            [self._python, "-m", "repro", "net", "replica",
             "--id", str(replica_id), "--config", self._config_path],
            env=env,
            stdout=stdout,
            stderr=subprocess.STDOUT,
        )

    def wait_ready(self, timeout: float = 15.0) -> None:
        """Block until every live member's endpoint accepts connections."""
        deadline = time.monotonic() + timeout
        pending = set(self._procs)
        while pending and time.monotonic() < deadline:
            for replica_id in sorted(pending):
                proc = self._procs[replica_id]
                if proc.poll() is not None:
                    raise ConfigurationError(
                        f"replica {replica_id} exited with "
                        f"{proc.returncode} during startup")
                host, port = self.config.addresses[replica_id]
                if _port_open(host, port):
                    pending.discard(replica_id)
            if pending:
                time.sleep(0.05)
        if pending:
            raise ConfigurationError(
                f"replicas {sorted(pending)} not ready within {timeout}s")

    def stop(self) -> None:
        """Terminate every member process.  Idempotent."""
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self._procs.clear()
        for log in self._logs:
            log.close()
        self._logs.clear()

    # ------------------------------------------------------------------ faults

    def kill(self, replica_id: int) -> None:
        """Crash-stop a member process (SIGKILL; nothing gets flushed)."""
        proc = self._procs.get(replica_id)
        if proc is None:
            raise ConfigurationError(
                f"replica {replica_id} is not a member of group "
                f"{self.name!r}")
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=5)

    def restart(self, replica_id: int, timeout: float = 15.0) -> None:
        """Re-spawn a crashed member on its original endpoint."""
        proc = self._procs.get(replica_id)
        if replica_id not in self.members:
            raise ConfigurationError(
                f"replica {replica_id} is not a member of group "
                f"{self.name!r}")
        if proc is not None and proc.poll() is None:
            raise ConfigurationError(
                f"replica {replica_id} is still running; kill it first")
        self._spawn(replica_id)
        host, port = self.config.addresses[replica_id]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if _port_open(host, port):
                return
            if self._procs[replica_id].poll() is not None:
                break
            time.sleep(0.05)
        raise ConfigurationError(
            f"replica {replica_id} did not come back within {timeout}s")

    def restart_all(self, timeout: float = 15.0) -> None:
        """Bounce the whole group: kill every member, re-spawn, wait ready."""
        for replica_id in self.members:
            if replica_id in self._procs:
                self.kill(replica_id)
        for replica_id in self.members:
            proc = self._procs.pop(replica_id, None)
            if proc is not None:
                proc.wait(timeout=5)
            self._spawn(replica_id)
        self.wait_ready(timeout=timeout)

    def alive(self) -> List[int]:
        return [replica_id for replica_id, proc in self._procs.items()
                if proc.poll() is None]

    def pids(self) -> Dict[int, int]:
        """replica id -> OS pid of its current process (live or not)."""
        return {replica_id: proc.pid
                for replica_id, proc in self._procs.items()}


class Supervisor:
    """Spawns and manages one replica subprocess per cluster member."""

    def __init__(self, config: NetConfig, python: Optional[str] = None,
                 log_dir: Optional[str] = None,
                 groups: Optional[Dict[str, Sequence[int]]] = None):
        config.validate()
        self.config = config
        self._python = python or sys.executable
        self._log_dir = log_dir
        self._config_path: Optional[str] = None
        if groups is None:
            groups = {"replicas": list(range(config.n_replicas))}
        seen: Dict[int, str] = {}
        for name, members in groups.items():
            for replica_id in members:
                if replica_id in seen:
                    raise ConfigurationError(
                        f"replica {replica_id} is in groups "
                        f"{seen[replica_id]!r} and {name!r}")
                seen[replica_id] = name
        missing = sorted(set(range(config.n_replicas)) - set(seen))
        if missing:
            raise ConfigurationError(
                f"replicas {missing} belong to no process group")
        self._group_spec = {name: tuple(members)
                            for name, members in groups.items()}
        self._groups: Dict[str, ProcessGroup] = {}

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "Supervisor":
        if self._groups:
            raise ShutdownError("supervisor already started")
        fd, self._config_path = tempfile.mkstemp(
            prefix="repro-net-", suffix=".json")
        with os.fdopen(fd, "w") as handle:
            handle.write(self.config.to_json())
        for name, members in self._group_spec.items():
            self._groups[name] = ProcessGroup(
                name, self.config, self._config_path, members,
                python=self._python, log_dir=self._log_dir).spawn()
        return self

    def wait_ready(self, timeout: float = 15.0) -> None:
        """Block until every live replica's endpoint accepts connections."""
        deadline = time.monotonic() + timeout
        for group in self._groups.values():
            group.wait_ready(
                timeout=max(0.1, deadline - time.monotonic()))

    def stop(self) -> None:
        """Terminate every replica process and clean up.  Idempotent."""
        for group in self._groups.values():
            group.stop()
        self._groups.clear()
        if self._config_path is not None:
            try:
                os.unlink(self._config_path)
            except OSError:
                pass
            self._config_path = None

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ groups

    def group(self, name: str) -> ProcessGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown process group {name!r}; have "
                f"{sorted(self._groups)}") from None

    def group_names(self) -> List[str]:
        return sorted(self._groups)

    def restart_group(self, name: str, timeout: float = 15.0) -> None:
        """Bounce one named group; other groups' processes are untouched."""
        self.group(name).restart_all(timeout=timeout)

    def _owning_group(self, replica_id: int) -> ProcessGroup:
        for group in self._groups.values():
            if replica_id in group.members:
                return group
        raise ConfigurationError(f"unknown replica {replica_id}")

    # ------------------------------------------------------------------ faults

    def kill(self, replica_id: int) -> None:
        """Crash-stop a replica process (SIGKILL; nothing gets flushed)."""
        self._owning_group(replica_id).kill(replica_id)

    def restart(self, replica_id: int, timeout: float = 15.0) -> None:
        """Re-spawn a crashed replica on its original endpoint."""
        self._owning_group(replica_id).restart(replica_id, timeout=timeout)

    def alive(self) -> List[int]:
        live: List[int] = []
        for group in self._groups.values():
            live.extend(group.alive())
        return sorted(live)
