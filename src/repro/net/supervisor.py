"""Multi-process cluster launcher.

:class:`Supervisor` spawns one OS process per replica (``python -m repro
net replica --id I --config FILE``), waits until every replica's TCP
endpoint accepts connections, and tears the fleet down cleanly.  Each
replica process has its own interpreter — under CPython this is the only
way replicas stop sharing one GIL (DESIGN.md §2), which is why the
ROADMAP's production path runs process-per-replica.

Crash/recovery: :meth:`kill` delivers SIGKILL (crash-stop, nothing flushed)
and :meth:`restart` re-spawns the same replica id on the same endpoint.  A
restarted replica boots with empty learner state and catches up through the
protocol's anti-entropy (heartbeat frontier + catch-up requests), re-executing
the decided prefix to rebuild its service state.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError, ShutdownError
from repro.net.config import NetConfig

__all__ = ["Supervisor"]


def _repro_pythonpath() -> str:
    """PYTHONPATH entry that makes ``import repro`` work in children."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


def _port_open(host: str, port: int, timeout: float = 0.25) -> bool:
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False


class Supervisor:
    """Spawns and manages one replica subprocess per cluster member."""

    def __init__(self, config: NetConfig, python: Optional[str] = None,
                 log_dir: Optional[str] = None):
        config.validate()
        self.config = config
        self._python = python or sys.executable
        self._procs: Dict[int, subprocess.Popen] = {}
        self._config_path: Optional[str] = None
        self._log_dir = log_dir
        self._logs: List[Any] = []

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "Supervisor":
        if self._procs:
            raise ShutdownError("supervisor already started")
        fd, self._config_path = tempfile.mkstemp(
            prefix="repro-net-", suffix=".json")
        with os.fdopen(fd, "w") as handle:
            handle.write(self.config.to_json())
        for replica_id in range(self.config.n_replicas):
            self._spawn(replica_id)
        return self

    def _spawn(self, replica_id: int) -> None:
        env = dict(os.environ)
        src_root = _repro_pythonpath()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_root if not existing
                             else src_root + os.pathsep + existing)
        stdout: Any = subprocess.DEVNULL
        if self._log_dir is not None:
            log = open(Path(self._log_dir) / f"replica-{replica_id}.log", "ab")
            self._logs.append(log)
            stdout = log
        self._procs[replica_id] = subprocess.Popen(
            [self._python, "-m", "repro", "net", "replica",
             "--id", str(replica_id), "--config", self._config_path],
            env=env,
            stdout=stdout,
            stderr=subprocess.STDOUT,
        )

    def wait_ready(self, timeout: float = 15.0) -> None:
        """Block until every live replica's endpoint accepts connections."""
        deadline = time.monotonic() + timeout
        pending = set(self._procs)
        while pending and time.monotonic() < deadline:
            for replica_id in sorted(pending):
                proc = self._procs[replica_id]
                if proc.poll() is not None:
                    raise ConfigurationError(
                        f"replica {replica_id} exited with "
                        f"{proc.returncode} during startup")
                host, port = self.config.addresses[replica_id]
                if _port_open(host, port):
                    pending.discard(replica_id)
            if pending:
                time.sleep(0.05)
        if pending:
            raise ConfigurationError(
                f"replicas {sorted(pending)} not ready within {timeout}s")

    def stop(self) -> None:
        """Terminate every replica process and clean up.  Idempotent."""
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self._procs.clear()
        for log in self._logs:
            log.close()
        self._logs.clear()
        if self._config_path is not None:
            try:
                os.unlink(self._config_path)
            except OSError:
                pass
            self._config_path = None

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ faults

    def kill(self, replica_id: int) -> None:
        """Crash-stop a replica process (SIGKILL; nothing gets flushed)."""
        proc = self._procs.get(replica_id)
        if proc is None:
            raise ConfigurationError(f"unknown replica {replica_id}")
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=5)

    def restart(self, replica_id: int, timeout: float = 15.0) -> None:
        """Re-spawn a crashed replica on its original endpoint."""
        proc = self._procs.get(replica_id)
        if proc is not None and proc.poll() is None:
            raise ConfigurationError(
                f"replica {replica_id} is still running; kill it first")
        self._spawn(replica_id)
        host, port = self.config.addresses[replica_id]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if _port_open(host, port):
                return
            if self._procs[replica_id].poll() is not None:
                break
            time.sleep(0.05)
        raise ConfigurationError(
            f"replica {replica_id} did not come back within {timeout}s")

    def alive(self) -> List[int]:
        return [replica_id for replica_id, proc in self._procs.items()
                if proc.poll() is None]
