"""Wire-only messages for the TCP deployment.

The broadcast protocols never see these: the replica's transport layer
intercepts :class:`ClientRequest` before the protocol node's inbox (turning
it into a ``submit``), and :class:`ClientResponse` travels straight from a
replica to the issuing client's transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.core.command import Command

__all__ = ["ClientRequest", "ClientResponse", "GroupEnvelope"]


@dataclass(frozen=True)
class ClientRequest:
    """A client batch submitted to a contact replica over TCP.

    Attributes:
        payload: The stamped command batch (tuple of :class:`Command`).
        reply_to: The client's transport node id.
        reply_host / reply_port: Where the client listens for responses;
            the replica registers this endpoint as a dynamic peer.
        client_id: The submitting client's identifier (response routing).
        read_only: True when every command in the batch is a read — the
            contact replica may then serve the batch locally under a leader
            lease instead of ordering it (docs/ordering.md).
    """

    payload: Tuple[Command, ...]
    reply_to: int
    reply_host: str
    reply_port: int
    client_id: str
    read_only: bool = False


@dataclass(frozen=True)
class ClientResponse:
    """One executed command's response, sent replica -> client."""

    command: Command
    response: Any
    replica_id: int


@dataclass(frozen=True)
class GroupEnvelope:
    """A consensus-group protocol message in a partitioned deployment.

    Replica processes of a grouped deployment (``NetConfig.n_groups > 1``)
    host one protocol node *per group* behind a single TCP endpoint; every
    protocol message travels wrapped in this envelope so the receiving
    process can demultiplex it to the right group's node
    (docs/partitioning.md).
    """

    group: int
    msg: Any
