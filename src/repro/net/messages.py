"""Wire-only messages for the TCP deployment.

The broadcast protocols never see these: the replica's transport layer
intercepts :class:`ClientRequest` before the protocol node's inbox (turning
it into a ``submit``), and :class:`ClientResponse` travels straight from a
replica to the issuing client's transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.core.command import Command

__all__ = ["ClientRequest", "ClientResponse"]


@dataclass(frozen=True)
class ClientRequest:
    """A client batch submitted to a contact replica over TCP.

    Attributes:
        payload: The stamped command batch (tuple of :class:`Command`).
        reply_to: The client's transport node id.
        reply_host / reply_port: Where the client listens for responses;
            the replica registers this endpoint as a dynamic peer.
        client_id: The submitting client's identifier (response routing).
        read_only: True when every command in the batch is a read — the
            contact replica may then serve the batch locally under a leader
            lease instead of ordering it (docs/ordering.md).
    """

    payload: Tuple[Command, ...]
    reply_to: int
    reply_host: str
    reply_port: int
    client_id: str
    read_only: bool = False


@dataclass(frozen=True)
class ClientResponse:
    """One executed command's response, sent replica -> client."""

    command: Command
    response: Any
    replica_id: int
