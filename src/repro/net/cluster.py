"""In-process loopback TCP cluster.

:class:`TcpCluster` mirrors :class:`~repro.smr.cluster.ThreadedCluster`'s
API — ``client()``, ``crash()``, ``restart_replica()``, ``services()``,
``total_executed()`` — but every replica is a :class:`ReplicaServer` with
its own real localhost socket, and clients talk TCP.  All of it lives in one
process, which is what the test suite wants: the crash-and-recover
scenarios that run against the threaded cluster run here unchanged over
real sockets, without the cost of spawning interpreters.

(The genuinely multi-process deployment — one interpreter and GIL per
replica — is :class:`repro.net.supervisor.Supervisor`.)

With ``n_groups > 1`` every replica is a
:class:`~repro.groups.net.GroupedReplicaServer` instead — the partitioned
deployment of docs/partitioning.md — and the same client/crash API applies.
(Checkpoint-based ``restart_replica`` is single-group only for now.)
"""

from __future__ import annotations

import itertools
import time
from typing import Any, List, Optional

from repro.errors import ConfigurationError, ShutdownError
from repro.net.client import NetClient
from repro.net.config import NetConfig, loopback_config
from repro.net.replica import ReplicaServer
from repro.smr.service import Service

__all__ = ["TcpCluster"]


class TcpCluster:
    """A running replicated service over localhost TCP, in one process."""

    def __init__(self, config: Optional[NetConfig] = None, **overrides):
        self.config = config or loopback_config(**overrides)
        self.config.validate()
        if self.config.n_groups > 1:
            from repro.groups.net import GroupedReplicaServer

            server_cls: Any = GroupedReplicaServer
        else:
            server_cls = ReplicaServer
        self.servers: List[Any] = [
            server_cls(replica_id, self.config)
            for replica_id in range(self.config.n_replicas)
        ]
        self._clients: List[NetClient] = []
        self._client_counter = itertools.count(1)
        self._started = False

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "TcpCluster":
        if self._started:
            raise ShutdownError("cluster already started")
        self._started = True
        for server in self.servers:
            server.start()
        return self

    def stop(self) -> None:
        for client in self._clients:
            client.close()
        for server in self.servers:
            server.stop()

    def __enter__(self) -> "TcpCluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ client

    def client(self, client_id: Optional[str] = None, contact: int = 0,
               timeout: Optional[float] = None) -> NetClient:
        if client_id is None:
            client_id = f"net-client-{next(self._client_counter)}"
        client = NetClient(client_id, self.config, contact=contact,
                           timeout=timeout)
        self._clients.append(client)
        return client

    # ------------------------------------------------------------------ faults

    def crash(self, replica_id: int) -> None:
        """Crash-stop one replica: close its sockets, node, and workers."""
        self.servers[replica_id].stop()

    def restart_replica(self, replica_id: int,
                        from_peer: Optional[int] = None) -> None:
        """Rebuild a crashed replica from a live peer's checkpoint.

        Same protocol as ``ThreadedCluster.restart_replica``: the peer
        quiesces for a consistent cut, the rebuilt replica installs it,
        rebinds the same endpoint, and rejoins at ``instance + 1``;
        heartbeat anti-entropy pulls anything decided since.  Peers'
        transports redial the endpoint automatically (reconnect backoff).
        """
        if self.config.n_groups > 1:
            raise ConfigurationError(
                "restart_replica is single-group only; grouped replicas "
                "recover via protocol catch-up (kill/restart a process "
                "deployment instead)")
        if self.servers[replica_id].running:
            raise ConfigurationError(
                f"replica {replica_id} is still running; crash it first")
        if from_peer is None:
            candidates = [index for index, server in enumerate(self.servers)
                          if index != replica_id and server.running]
            if not candidates:
                raise ShutdownError("no live peer to recover from")
            from_peer = candidates[0]
        checkpoint = self.servers[from_peer].replica.take_checkpoint()
        server = ReplicaServer(replica_id, self.config, checkpoint=checkpoint)
        self.servers[replica_id] = server
        server.start()

    # --------------------------------------------------------------- helpers

    def services(self) -> List[Service]:
        return [server.service for server in self.servers]

    def total_executed(self) -> List[int]:
        return [server.replica.executed for server in self.servers]

    def wait_converged(self, expected_executed: int,
                       timeout: float = 10.0) -> bool:
        """Block until every live replica executed >= the expected count."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            live = [server.replica.executed for server in self.servers
                    if server.running]
            if live and min(live) >= expected_executed:
                return True
            time.sleep(0.01)
        return False
