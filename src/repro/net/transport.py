"""Asyncio TCP transport with the ``ThreadedTransport`` send/inbox contract.

One :class:`TcpTransport` serves one node (a replica or a client process).
It runs a private asyncio event loop on a daemon thread:

- a TCP **server** listens on the node's endpoint; every received frame is
  decoded and either intercepted (client envelopes) or enqueued into the
  node's inbox queue — the same ``queue.Queue[(src, msg)]`` that
  :class:`~repro.broadcast.node.ThreadedNode` consumes;
- each known peer gets a lazily started **pump task** draining a bounded
  per-peer outbound queue over one connection, reconnecting with
  exponential backoff plus jitter when the peer is down;
- :meth:`close` cancels the pumps, closes connections and the server, and
  stops the loop (graceful: a best-effort flush happens first).

Loss semantics: TCP gives per-connection FIFO, but a peer crash drops the
frames buffered for it beyond the queue bound, and reconnection loses
whatever was in flight — exactly the fair-lossy link model the broadcast
protocols already tolerate.
"""

from __future__ import annotations

import asyncio
import queue
import random
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError, ShutdownError
from repro.net.codec import CodecError, wire_codec
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY

__all__ = ["TcpTransport"]

#: Outbound frames buffered per peer while it is unreachable.
DEFAULT_QUEUE_LIMIT = 1024

#: (src, msg) -> True if consumed before the inbox (client envelopes).
Interceptor = Callable[[int, Any], bool]


class TcpTransport:
    """TCP driver for one protocol node."""

    def __init__(
        self,
        node_id: int,
        addresses: Dict[int, Tuple[str, int]],
        interceptor: Optional[Interceptor] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        wire: str = "json",
    ):
        if node_id not in addresses:
            raise ConfigurationError(
                f"addresses must contain node {node_id}'s own endpoint")
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        self.node_id = node_id
        # Both endpoints of a connection must be configured with the same
        # wire codec; see docs/wire.md for the (non-)negotiation rules.
        self._codec = wire_codec(wire)
        self._obs = registry if registry is not None else NULL_REGISTRY
        self._obs_on = self._obs.enabled
        self._peer_obs: Dict[int, Tuple[Any, Any, Any]] = {}
        self._m_recv_frames = self._obs.counter("net_frames_received_total")
        self._m_recv_bytes = self._obs.counter("net_bytes_received_total")
        self._m_codec_rx_frames = self._obs.counter(
            "net_codec_frames_total", codec=self._codec.name, direction="rx")
        self._m_codec_rx_bytes = self._obs.counter(
            "net_codec_bytes_total", codec=self._codec.name, direction="rx")
        self._m_codec_tx_frames = self._obs.counter(
            "net_codec_frames_total", codec=self._codec.name, direction="tx")
        self._m_codec_tx_bytes = self._obs.counter(
            "net_codec_bytes_total", codec=self._codec.name, direction="tx")
        self._addresses = dict(addresses)
        self._interceptor = interceptor
        self._queue_limit = queue_limit
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._jitter = random.Random(seed)
        self._inbox: "queue.Queue[Tuple[int, Any]]" = queue.Queue()
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._outboxes: Dict[int, asyncio.Queue] = {}   # loop thread only
        self._pumps: Dict[int, asyncio.Task] = {}       # loop thread only
        #: Frames popped from an outbox but not yet written+drained, per
        #: peer (0 or 1); loop thread only.  The depth gauge counts these,
        #: otherwise a down peer's last frame disappears from the gauge
        #: while the pump retries it forever.
        self._inflight: Dict[int, int] = {}
        self._connections: set = set()                  # loop thread only
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._loop_main, name=f"tcp-{node_id}", daemon=True)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "TcpTransport":
        """Bind the server and start the loop thread; returns self.

        Both failure paths (bind error, readiness timeout) tear the loop
        thread down before raising: the thread is joined, the event loop is
        closed, and the transport is marked closed.  Without that, a bind
        conflict used to leak a live daemon thread and an open event loop
        per failed start.
        """
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            # The loop thread already returned (and closed the loop) after
            # setting the startup error; join so no thread outlives start().
            self._thread.join(timeout=5)
            self._closed = True
            raise ConfigurationError(
                f"node {self.node_id} failed to bind "
                f"{self._addresses[self.node_id]}: {self._startup_error}")
        if not self._ready.is_set():
            # Startup hung: stop the loop from outside, then join.  The
            # loop thread's finally-block closes the loop on its way out.
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass  # loop closed between the timeout and now
            self._thread.join(timeout=5)
            self._closed = True
            raise ConfigurationError(
                f"node {self.node_id} transport did not start")
        return self

    def _loop_main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.set_exception_handler(self._on_loop_exception)
        try:
            self._loop.run_until_complete(self._bind())
        except OSError as error:
            self._startup_error = error
            self._loop.close()
            self._ready.set()
            return
        except RuntimeError as error:
            # start() timed out waiting and stopped the loop mid-bind.
            self._startup_error = error
            self._loop.close()
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            # Drain cancellations scheduled by close() so the loop's tasks
            # finish cleanly before the thread exits.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.close()

    @staticmethod
    def _on_loop_exception(loop, context: Dict[str, Any]) -> None:
        # Cancelling stream-handler tasks at shutdown makes asyncio.streams'
        # connection_made done-callback re-raise CancelledError into the
        # loop's exception handler; that is expected teardown, not an error.
        if isinstance(context.get("exception"), asyncio.CancelledError):
            return
        loop.default_exception_handler(context)

    async def _bind(self) -> None:
        host, port = self._addresses[self.node_id]
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port)

    def close(self) -> None:
        """Stop serving and sending; idempotent and graceful."""
        if self._closed:
            return
        self._closed = True
        if not self._thread.is_alive():
            self._loop.close()
            return

        async def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
            # Closing the accepted connections first lets handler tasks end
            # through EOF instead of cancellation.
            for writer in list(self._connections):
                writer.close()
            pumps = list(self._pumps.values())
            for task in pumps:
                task.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
            await asyncio.sleep(0.02)  # one tick for handlers to see EOF
            self._loop.stop()

        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(_shutdown()))
        self._thread.join(timeout=5)

    @property
    def closed(self) -> bool:
        return self._closed

    # ----------------------------------------------------- transport contract

    def inbox(self, node_id: int) -> "queue.Queue[Tuple[int, Any]]":
        if node_id != self.node_id:
            raise ConfigurationError(
                f"transport of node {self.node_id} has no inbox for "
                f"node {node_id}; each process owns exactly one node")
        return self._inbox

    def send(self, src: int, dst: int, msg: Any) -> None:
        """Frame and enqueue ``msg`` for peer ``dst`` (thread-safe)."""
        if self._closed:
            raise ShutdownError("transport is closed")
        if dst == self.node_id:
            # Loopback without the sockets (leader proposing to itself
            # never pays a network round trip).
            self._dispatch(src, msg)
            return
        if dst not in self._addresses:
            raise ConfigurationError(f"unknown peer {dst}")
        # Codec errors surface to the sender.
        frame = self._codec.encode_frame(src, msg)
        if self._obs_on:
            self._m_codec_tx_frames.inc()
            self._m_codec_tx_bytes.inc(len(frame))
        try:
            self._loop.call_soon_threadsafe(self._enqueue, dst, frame)
        except RuntimeError as error:  # loop already closed
            raise ShutdownError("transport is closed") from error

    def add_peer(self, node_id: int, host: str, port: int) -> None:
        """Register (or re-register) a dynamic peer endpoint (thread-safe).

        Used for clients, which are not part of the static replica map.
        Re-registering with a changed endpoint reroutes future frames.
        """
        if self._closed:
            raise ShutdownError("transport is closed")
        if node_id == self.node_id:
            return
        previous = self._addresses.get(node_id)
        self._addresses[node_id] = (host, port)
        if previous is not None and previous != (host, port):
            try:
                self._loop.call_soon_threadsafe(self._drop_pump, node_id)
            except RuntimeError as error:
                raise ShutdownError("transport is closed") from error

    def peers(self) -> Dict[int, Tuple[str, int]]:
        return dict(self._addresses)

    # -------------------------------------------------------- instrumentation

    def _peer_instruments(self, dst: int):
        """Cached per-peer instruments (docs/observability.md)."""
        cached = self._peer_obs.get(dst)
        if cached is None:
            peer = str(dst)
            cached = (
                self._obs.gauge("net_outbox_depth", peer=peer),
                self._obs.counter("net_outbox_drops_total", peer=peer),
                self._obs.counter("net_frames_sent_total", peer=peer),
                self._obs.counter("net_bytes_sent_total", peer=peer),
                self._obs.counter("net_reconnects_total", peer=peer),
            )
            self._peer_obs[dst] = cached
        return cached

    # ------------------------------------------------------------ inbound path

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        codec = self._codec
        header_size = codec.header_size
        try:
            while True:
                header = await reader.readexactly(header_size)
                try:
                    length = codec.body_length(header)
                except CodecError:
                    # Corrupt prefix — or a peer speaking the other wire
                    # codec (the binary magic/version check lands here).
                    break
                body = await reader.readexactly(length)
                try:
                    src, msg = codec.decode_frame(body)
                except CodecError:
                    break  # corrupt peer: drop the connection
                if self._obs_on:
                    self._m_recv_frames.inc()
                    self._m_recv_bytes.inc(header_size + length)
                    self._m_codec_rx_frames.inc()
                    self._m_codec_rx_bytes.inc(header_size + length)
                self._dispatch(src, msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    def _dispatch(self, src: int, msg: Any) -> None:
        if self._closed:
            return
        if self._interceptor is not None and self._interceptor(src, msg):
            return
        self._inbox.put((src, msg))

    # ----------------------------------------------------------- outbound path

    def _enqueue(self, dst: int, frame: bytes) -> None:
        """Loop thread: queue a frame and make sure the pump runs."""
        if self._closed:
            return
        outbox = self._outboxes.get(dst)
        if outbox is None:
            outbox = asyncio.Queue()
            self._outboxes[dst] = outbox
        if outbox.qsize() >= self._queue_limit:
            outbox.get_nowait()  # drop-oldest: fair-lossy link, not a log
            if self._obs_on:
                self._peer_instruments(dst)[1].inc()
        outbox.put_nowait(frame)
        if self._obs_on:
            self._peer_instruments(dst)[0].set(
                outbox.qsize() + self._inflight.get(dst, 0))
        pump = self._pumps.get(dst)
        if pump is None or pump.done():
            self._pumps[dst] = self._loop.create_task(self._pump(dst))

    def _drop_pump(self, dst: int) -> None:
        """Loop thread: kill a peer's pump so it redials the new address."""
        pump = self._pumps.pop(dst, None)
        if pump is not None:
            pump.cancel()

    async def _pump(self, dst: int) -> None:
        """Drain one peer's outbox over a (re)connecting stream."""
        outbox = self._outboxes[dst]
        writer: Optional[asyncio.StreamWriter] = None
        failures = 0
        obs_on = self._obs_on
        if obs_on:
            m_depth, _, m_frames, m_bytes, m_reconnects = (
                self._peer_instruments(dst))
        try:
            while not self._closed:
                frame = await outbox.get()
                self._inflight[dst] = 1
                if obs_on:
                    m_depth.set(outbox.qsize() + 1)
                while not self._closed:
                    if writer is None:
                        host, port = self._addresses[dst]
                        try:
                            _, writer = await asyncio.open_connection(
                                host, port)
                            if obs_on and failures:
                                m_reconnects.inc()
                            failures = 0
                        except OSError:
                            writer = None
                            failures += 1
                            await asyncio.sleep(self._backoff(failures))
                            continue
                    try:
                        writer.write(frame)
                        await writer.drain()
                        self._inflight[dst] = 0
                        if obs_on:
                            m_frames.inc()
                            m_bytes.inc(len(frame))
                            m_depth.set(outbox.qsize())
                        break
                    except (ConnectionError, OSError):
                        writer.close()
                        writer = None
                        failures += 1
                        await asyncio.sleep(self._backoff(failures))
        except asyncio.CancelledError:
            pass
        finally:
            self._inflight[dst] = 0  # a cancelled pump's frame is lost
            if writer is not None:
                writer.close()

    def _backoff(self, failures: int) -> float:
        """Exponential backoff with jitter in [0.5, 1.5] of the nominal."""
        nominal = min(self._backoff_max,
                      self._backoff_base * (2 ** min(failures - 1, 16)))
        return nominal * (0.5 + self._jitter.random())
