"""Loopback TCP benchmark: throughput/latency over a real process cluster.

``python -m repro net bench`` spawns ``n`` replica processes through the
:class:`~repro.net.supervisor.Supervisor`, drives them with closed-loop TCP
clients (one thread per client, batched commands — the paper's §7.1 client
model), optionally crash-stops and restarts one replica mid-run, and writes
a JSON artifact with throughput and latency percentiles.

This is a *deployment smoke benchmark*: localhost sockets and a handful of
clients, not the paper's 1 Gbps LAN.  The figures that reproduce the paper
stay on the simulator (``python -m repro figures``); this artifact tracks
the real-deployment path end to end.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.command import Command
from repro.net.client import NetClient
from repro.net.config import NetConfig, loopback_config
from repro.net.supervisor import Supervisor
from repro.obs import MetricsRegistry
from repro.obs.stats import quantile
from repro.smr.client import ClientTimeout
from repro.workload import WorkloadGenerator

__all__ = ["NetBenchConfig", "NetBenchResult", "run_net_bench"]


@dataclass(frozen=True)
class NetBenchConfig:
    """Parameters of one loopback bench run."""

    n_replicas: int = 3
    n_clients: int = 4
    batch: int = 8
    ops: int = 400                  # total commands across all clients
    write_pct: float = 30.0
    service: str = "linked-list"
    cos_algorithm: str = "lock-free"
    workers: int = 4
    engine: str = "threaded"        # "threaded" | "mp" (repro.par)
    mp_workers: int = 2             # shard processes per replica under mp
    wire: str = "json"              # wire codec (docs/wire.md)
    propose_linger: Optional[float] = None  # None -> heartbeat/10
    cumulative_acks: bool = True
    lease_duration: Optional[float] = None  # None -> 0.8x leader timeout
    lease_margin: Optional[float] = None
    lease_reads: bool = True
    seed: int = 1
    crash_replica: Optional[int] = None   # crash-stop this replica mid-run
    recover: bool = True                  # ...and restart it afterwards
    client_timeout: float = 3.0
    #: Record client-side per-command spans and write them to trace_path
    #: (JSONL, one event per line — see docs/observability.md).
    trace: bool = False
    trace_path: Optional[str] = None


@dataclass(frozen=True)
class NetBenchResult:
    """Measured outcome (all times in seconds, wall clock)."""

    config: NetBenchConfig
    executed: int
    errors: int
    duration: float
    throughput: float               # commands per second
    latency_mean: float             # per-batch round trip
    latency_p50: float
    latency_p99: float
    crash_injected: bool
    recovered: bool
    #: One (throughput kops/s, latency ms) coordinate — the shape of one
    #: paper Fig. 6 point, measured on the real deployment.
    fig6_point: Dict[str, float] = field(default_factory=dict)
    #: Client-side latency histogram snapshot (fixed log-spaced buckets).
    latency_histogram: Dict[str, Any] = field(default_factory=dict)
    trace_events: int = 0

    def to_json(self) -> Dict[str, Any]:
        data = asdict(self)
        data["config"] = asdict(self.config)
        return data


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    return quantile(sorted(samples), fraction)


def run_net_bench(config: NetBenchConfig,
                  out_path: Optional[str] = None) -> NetBenchResult:
    """Run one loopback bench; optionally write the JSON artifact."""
    net = loopback_config(
        n_replicas=config.n_replicas,
        service=config.service,
        cos_algorithm=config.cos_algorithm,
        workers=config.workers,
        engine=config.engine,
        mp_workers=config.mp_workers,
        wire=config.wire,
        propose_linger=config.propose_linger,
        cumulative_acks=config.cumulative_acks,
        lease_duration=config.lease_duration,
        lease_margin=config.lease_margin,
        lease_reads=config.lease_reads,
        client_timeout=config.client_timeout,
    )
    batches_per_client = max(
        1, config.ops // (config.n_clients * config.batch))
    latencies: List[float] = []
    latency_lock = threading.Lock()
    executed = 0
    errors = 0
    counters_lock = threading.Lock()
    # Client-side registry: latency histogram always, spans when tracing.
    registry = MetricsRegistry(trace=config.trace)
    latency_hist = registry.histogram("client_batch_latency_seconds")

    def client_loop(index: int) -> None:
        nonlocal executed, errors
        workload = WorkloadGenerator(
            config.write_pct, key_space=500,
            seed=config.seed * 1_000 + index)
        client = NetClient(
            f"bench-{index}", net,
            contact=index % config.n_replicas,
            timeout=config.client_timeout,
        )
        trace = config.trace
        try:
            for _ in range(batches_per_client):
                commands = workload.commands(config.batch)
                started = time.monotonic()
                span_keys = ()
                if trace:
                    # execute_batch re-stamps the commands with this
                    # client's identity and the next request_ids, so the
                    # wire-stable keys (client_id#request_id) are known
                    # before the call — unlike the process-local uids.
                    base = client.requests_issued
                    span_keys = tuple(
                        f"bench-{index}#{base + 1 + offset}"
                        for offset in range(len(commands)))
                    for key in span_keys:
                        registry.span(key, "submitted", at=started)
                try:
                    client.execute_batch(commands)
                except ClientTimeout:
                    with counters_lock:
                        errors += len(commands)
                    continue
                finished = time.monotonic()
                elapsed = finished - started
                if trace:
                    for key in span_keys:
                        registry.span(key, "responded", at=finished)
                latency_hist.observe(elapsed)
                with latency_lock:
                    latencies.append(elapsed)
                with counters_lock:
                    executed += len(commands)
        finally:
            client.close()

    crash_injected = False
    recovered = False
    with Supervisor(net) as supervisor:
        supervisor.wait_ready()
        threads = [
            threading.Thread(target=client_loop, args=(index,), daemon=True)
            for index in range(config.n_clients)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        if config.crash_replica is not None:
            # Let the run warm up, then crash-stop one replica under load.
            time.sleep(0.5)
            supervisor.kill(config.crash_replica)
            crash_injected = True
            if config.recover:
                time.sleep(0.5)
                supervisor.restart(config.crash_replica)
                recovered = True
        for thread in threads:
            thread.join()
        duration = time.monotonic() - started

    trace_events = len(registry.spans.events())
    if config.trace and config.trace_path:
        registry.spans.write_jsonl(config.trace_path)
    throughput = executed / duration if duration > 0 else 0.0
    latency_mean = statistics.fmean(latencies) if latencies else 0.0
    result = NetBenchResult(
        config=config,
        executed=executed,
        errors=errors,
        duration=duration,
        throughput=throughput,
        latency_mean=latency_mean,
        latency_p50=_percentile(latencies, 0.50),
        latency_p99=_percentile(latencies, 0.99),
        crash_injected=crash_injected,
        recovered=recovered,
        fig6_point={
            "throughput_kops": throughput / 1e3,
            "latency_ms": latency_mean * 1e3,
        },
        latency_histogram=latency_hist.snapshot(),
        trace_events=trace_events,
    )
    if out_path is not None:
        with open(out_path, "w") as handle:
            json.dump(result.to_json(), handle, indent=2)
    return result
