"""Compact binary wire codec (``wire="binary"``).

The tagged-JSON codec (:mod:`repro.net.codec`) is the compatibility
baseline: self-describing, debuggable with ``jq``, but it traverses every
value twice (``encode`` builds a JSON-safe tree, ``json.dumps`` walks it
again), wraps every tuple and dataclass in a tagging dict, and cannot carry
``bytes`` at all.  This module is the hot-path replacement — one recursive
pass straight into a ``bytearray``:

========  ===========================================================
tag byte  payload
========  ===========================================================
``0x00``  ``None``
``0x01``  ``True``
``0x02``  ``False``
``0x03``  int — zigzag LEB128 varint (arbitrary precision)
``0x04``  float — 8-byte IEEE-754 big-endian double (finite only)
``0x05``  str — varint byte length + UTF-8
``0x06``  bytes — varint length + raw bytes (JSON cannot carry these)
``0x07``  list — varint count + encoded items
``0x08``  tuple — varint count + encoded items
``0x09``  dict — varint count + encoded key/value pairs, in order
``0x20``+ one registered wire dataclass (see below)
========  ===========================================================

The 17 types of :data:`repro.net.codec.WIRE_TYPES` get one tag byte each,
``0x20 + i`` with ``i`` the type's position in the *sorted* registry names
— a deterministic assignment every process derives identically.  A
dataclass body is its field values, encoded in dataclass field order; no
field names travel on the wire.  Decoding instantiates only registry types,
preserving the codec's no-pickle security stance.

A frame is ``7-byte header + body``: magic ``0x5250`` (``"RP"``), one
codec-version byte (:data:`WIRE_VERSION`), and a 4-byte big-endian body
length.  The magic rejects cross-codec confusion (a JSON frame's length
prefix never starts with ``0x5250`` for sane frame sizes — see
docs/wire.md for the negotiation rules); the version byte rejects frames
from a future tag assignment.  Both ends of a connection must be
configured with the same ``wire=`` codec.

Error contract: everything the JSON codec rejects, this codec rejects too
(:class:`~repro.net.codec.CodecError`), and both reject non-finite floats;
the single deliberate divergence is ``bytes``/``bytearray``, which only
this codec accepts.  ``tests/test_wire_bincodec.py`` enforces the parity
property with a seeded cross-codec fuzz.
"""

from __future__ import annotations

import dataclasses
import math
import struct
from typing import Any, Callable, Dict, List, Tuple

from repro.net.codec import MAX_FRAME, CodecError, WIRE_TYPES

__all__ = [
    "WIRE_VERSION",
    "MAGIC",
    "HEADER",
    "dumps",
    "loads",
    "encode_frame",
    "decode_frame",
    "body_length",
]

#: Bump when the tag table or any encoding rule changes (docs/wire.md).
#: v2: HeartbeatAck joined the registry (leader leases), shifting the
#: sorted tag table, and Accept/Accepted/Heartbeat/CatchupReply grew
#: trailing fields (commit_up_to / accepted_up_to / sent_at / more).
#: v3: GroupEnvelope and Rendezvous joined the registry (partitioned
#: deployments, docs/partitioning.md), shifting the sorted tag table.
#: v4: OptimisticAnnounce and NewEpoch joined the registry (optimistic
#: execution + sequencer failover, docs/speculation.md), shifting the
#: sorted tag table, and SequencerStamp grew a trailing epoch field.
WIRE_VERSION = 4

#: Two magic bytes opening every binary frame header ("RP" — repro).
MAGIC = 0x5250

#: Frame header: magic (2 bytes) + version (1 byte) + body length (4 bytes).
HEADER = struct.Struct(">HBI")

#: Duck-typed wire-codec interface (see :func:`repro.net.codec.wire_codec`):
#: this module itself is the ``"binary"`` codec object.
name = "binary"
header_size = HEADER.size

_DOUBLE = struct.Struct(">d")

# ------------------------------------------------------------- tag table

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09

#: First tag byte of the registered-dataclass range.
_T_DATACLASS_BASE = 0x20

#: Deterministic tag assignment: sorted registry names -> 0x20, 0x21, ...
#: Adding or renaming a wire type therefore requires a WIRE_VERSION bump.
_TYPE_TAGS: Dict[type, int] = {
    WIRE_TYPES[name]: _T_DATACLASS_BASE + index
    for index, name in enumerate(sorted(WIRE_TYPES))
}
_TAG_TYPES: Dict[int, type] = {tag: cls for cls, tag in _TYPE_TAGS.items()}

#: Per-type field-name tuples, precomputed once (field order is the wire
#: order; names never travel).
_TYPE_FIELDS: Dict[type, Tuple[str, ...]] = {
    cls: tuple(f.name for f in dataclasses.fields(cls))
    for cls in _TYPE_TAGS
}


# -------------------------------------------------------------- varints


def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


# Arbitrary-precision zigzag: Python ints are unbounded, so use the pure
# sign-fold form (no word-size shift trick) uniformly.
def _zigzag_encode(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _zigzag_decode(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -------------------------------------------------------------- encoding


def dumps(obj: Any) -> bytes:
    """Encode one value to its binary body (no frame header)."""
    out = bytearray()
    _encode(out, obj)
    return bytes(out)


def _encode(out: bytearray, obj: Any) -> None:
    # ``bool`` first: it is an ``int`` subclass and must not hit _T_INT.
    if obj is None:
        out.append(_T_NONE)
        return
    if obj is True:
        out.append(_T_TRUE)
        return
    if obj is False:
        out.append(_T_FALSE)
        return
    kind = type(obj)
    if kind is int:
        out.append(_T_INT)
        _write_uvarint(out, _zigzag_encode(obj))
        return
    if kind is float:
        if not math.isfinite(obj):
            # RFC 8259 JSON has no NaN/Infinity and the codecs must agree
            # value-for-value; reject at the source on both.
            raise CodecError(f"cannot encode non-finite float: {obj!r}")
        out.append(_T_FLOAT)
        out += _DOUBLE.pack(obj)
        return
    if kind is str:
        encoded = obj.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(encoded))
        out += encoded
        return
    if kind is bytes or kind is bytearray:
        out.append(_T_BYTES)
        _write_uvarint(out, len(obj))
        out += obj
        return
    if kind is list:
        out.append(_T_LIST)
        _write_uvarint(out, len(obj))
        for item in obj:
            _encode(out, item)
        return
    if kind is tuple:
        out.append(_T_TUPLE)
        _write_uvarint(out, len(obj))
        for item in obj:
            _encode(out, item)
        return
    if kind is dict:
        out.append(_T_DICT)
        _write_uvarint(out, len(obj))
        for key, value in obj.items():
            _encode(out, key)
            _encode(out, value)
        return
    tag = _TYPE_TAGS.get(kind)
    if tag is not None:
        out.append(tag)
        for name in _TYPE_FIELDS[kind]:
            _encode(out, getattr(obj, name))
        return
    # Slow path: subclasses of the scalar/container types.  The JSON codec
    # accepts these through its isinstance checks, so error parity demands
    # the same here (the subclass identity is lost on the wire either way).
    if isinstance(obj, int):
        out.append(_T_INT)
        _write_uvarint(out, _zigzag_encode(int(obj)))
        return
    if isinstance(obj, float):
        _encode(out, float(obj))
        return
    if isinstance(obj, str):
        _encode(out, str(obj))
        return
    if isinstance(obj, (bytes, bytearray)):
        _encode(out, bytes(obj))
        return
    if isinstance(obj, list):
        _encode(out, list(obj))
        return
    if isinstance(obj, tuple):
        _encode(out, tuple(obj))
        return
    if isinstance(obj, dict):
        _encode(out, dict(obj))
        return
    raise CodecError(f"cannot encode {type(obj).__name__}: {obj!r}")


# -------------------------------------------------------------- decoding
#
# Decoders are plain functions ``(data, pos) -> (value, next_pos)`` in a
# flat 256-slot dispatch list indexed by the tag byte.  This shape (locals
# instead of a reader object, one IndexError guard instead of per-byte
# bounds checks) is what lets a pure-Python parser race the C-accelerated
# ``json.loads`` + tree-decode pipeline (see BENCH_wire_codec.json).


def _uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 10_000:  # corrupt continuation-bit run
            raise CodecError("varint too long")


def _decode_int(data: bytes, pos: int) -> Tuple[int, int]:
    byte = data[pos]
    if byte < 0x80:  # single-byte varint covers |value| <= 63 — the
        # common case for node ids, rounds, and small instance numbers
        return (byte >> 1) if not byte & 1 else -((byte + 1) >> 1), pos + 1
    value, pos = _uvarint(data, pos)
    return (value >> 1) if not value & 1 else -((value + 1) >> 1), pos


def _decode_float(data: bytes, pos: int) -> Tuple[float, int]:
    value = _DOUBLE.unpack_from(data, pos)[0]
    if not math.isfinite(value):
        raise CodecError(f"non-finite float on the wire: {value!r}")
    return value, pos + 8


def _decode_str(data: bytes, pos: int) -> Tuple[str, int]:
    length = data[pos]  # single-byte length fast path (< 128 bytes)
    if length < 0x80:
        pos += 1
    else:
        length, pos = _uvarint(data, pos)
    stop = pos + length
    if stop > len(data):
        raise CodecError("truncated frame body")
    try:
        return data[pos:stop].decode("utf-8"), stop
    except UnicodeDecodeError as error:
        raise CodecError(f"malformed UTF-8 string: {error}") from error


def _decode_bytes(data: bytes, pos: int) -> Tuple[bytes, int]:
    length = data[pos]
    if length < 0x80:
        pos += 1
    else:
        length, pos = _uvarint(data, pos)
    stop = pos + length
    if stop > len(data):
        raise CodecError("truncated frame body")
    return data[pos:stop], stop


def _decode_list(data: bytes, pos: int) -> Tuple[List[Any], int]:
    count = data[pos]
    if count < 0x80:
        pos += 1
    else:
        count, pos = _uvarint(data, pos)
    result = []
    append = result.append
    decoders = _DECODERS
    for _ in range(count):
        value, pos = decoders[data[pos]](data, pos + 1)
        append(value)
    return result, pos


def _decode_tuple(data: bytes, pos: int) -> Tuple[Tuple[Any, ...], int]:
    value, pos = _decode_list(data, pos)
    return tuple(value), pos


def _decode_dict(data: bytes, pos: int) -> Tuple[Dict[Any, Any], int]:
    count = data[pos]
    if count < 0x80:
        pos += 1
    else:
        count, pos = _uvarint(data, pos)
    result = {}
    decoders = _DECODERS
    for _ in range(count):
        key, pos = decoders[data[pos]](data, pos + 1)
        value, pos = decoders[data[pos]](data, pos + 1)
        result[key] = value
    return result, pos


def _decode_invalid(data: bytes, pos: int) -> Tuple[Any, int]:
    raise CodecError(f"unknown binary tag 0x{data[pos - 1]:02x}")


def _make_dataclass_decoder(cls: type) -> Callable[[bytes, int],
                                                   Tuple[Any, int]]:
    arity = len(_TYPE_FIELDS[cls])

    def _decode_dataclass(data: bytes, pos: int) -> Tuple[Any, int]:
        # Field values travel positionally in dataclass field order, so the
        # constructor call is positional too — no per-field name on the
        # wire and no kwargs dict at decode time.
        decoders = _DECODERS
        values = []
        append = values.append
        for _ in range(arity):
            value, pos = decoders[data[pos]](data, pos + 1)
            append(value)
        try:
            return cls(*values), pos
        except TypeError as error:  # field type invariants enforced upstream
            raise CodecError(
                f"bad fields for {cls.__name__}: {error}") from error

    return _decode_dataclass


_DECODERS: List[Callable[[bytes, int], Tuple[Any, int]]] = (
    [_decode_invalid] * 256)
_DECODERS[_T_NONE] = lambda data, pos: (None, pos)
_DECODERS[_T_TRUE] = lambda data, pos: (True, pos)
_DECODERS[_T_FALSE] = lambda data, pos: (False, pos)
_DECODERS[_T_INT] = _decode_int
_DECODERS[_T_FLOAT] = _decode_float
_DECODERS[_T_STR] = _decode_str
_DECODERS[_T_BYTES] = _decode_bytes
_DECODERS[_T_LIST] = _decode_list
_DECODERS[_T_TUPLE] = _decode_tuple
_DECODERS[_T_DICT] = _decode_dict
for _cls, _tag in _TYPE_TAGS.items():
    _DECODERS[_tag] = _make_dataclass_decoder(_cls)


def loads(data: bytes) -> Any:
    """Decode one binary body produced by :func:`dumps`."""
    data = bytes(data)
    try:
        value, pos = _DECODERS[data[0]](data, 1)
    except IndexError:
        raise CodecError("truncated frame body") from None
    except struct.error as error:
        raise CodecError(f"truncated frame body: {error}") from None
    if pos != len(data):
        raise CodecError(
            f"trailing garbage: {len(data) - pos} bytes after value")
    return value


# ---------------------------------------------------------------- frames


def encode_frame(src: int, msg: Any) -> bytes:
    """Pack one ``(src, msg)`` pair into a magic+version framed message."""
    if isinstance(src, bool) or not isinstance(src, int):
        raise CodecError(f"frame src must be an int, got {src!r}")
    body = bytearray()
    _write_uvarint(body, _zigzag_encode(src))
    _encode(body, msg)
    if len(body) > MAX_FRAME:
        raise CodecError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return HEADER.pack(MAGIC, WIRE_VERSION, len(body)) + bytes(body)


def decode_frame(body: bytes) -> Tuple[int, Any]:
    """Unpack one frame body (header already consumed and validated)."""
    body = bytes(body)
    try:
        raw, pos = _uvarint(body, 0)
        src = _zigzag_decode(raw)
        msg, pos = _DECODERS[body[pos]](body, pos + 1)
    except IndexError:
        raise CodecError("truncated frame body") from None
    except struct.error as error:
        raise CodecError(f"truncated frame body: {error}") from None
    if pos != len(body):
        raise CodecError(
            f"trailing garbage: {len(body) - pos} bytes after frame")
    return src, msg


def body_length(header: bytes) -> int:
    """Validate a 7-byte header; return the body length it announces."""
    magic, version, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise CodecError(
            f"bad frame magic 0x{magic:04x} (expected 0x{MAGIC:04x}); "
            f"peer is not speaking the binary wire codec")
    if version != WIRE_VERSION:
        raise CodecError(
            f"unsupported binary codec version {version} "
            f"(this end speaks {WIRE_VERSION})")
    if length > MAX_FRAME:
        raise CodecError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    return length
