"""JSON-safe wire codec with length-prefixed framing.

Messages crossing the TCP transport are the broadcast protocol messages of
:mod:`repro.broadcast.messages`, :class:`~repro.core.command.Command`
batches, and the client envelope of :mod:`repro.net.messages`.  They are
dataclasses built from tuples, dicts with non-string keys (instance
numbers), and nested payloads — none of which plain JSON round-trips.  The
codec encodes them into a tagged JSON form:

- scalars (``None``/``bool``/``int``/``float``/``str``) pass through;
- lists stay JSON arrays (elements encoded recursively);
- tuples become ``{"!": "tuple", "v": [...]}`` — ballots and batch payloads
  must come back as tuples because the protocols compare and hash them;
- dicts become ``{"!": "dict", "v": [[k, v], ...]}`` to preserve non-string
  keys exactly;
- registered dataclasses become ``{"!": "<TypeName>", "v": {field: ...}}``.

No pickle and no arbitrary class resolution: decoding only instantiates
types from the explicit :data:`WIRE_TYPES` registry, so a malicious or
corrupt peer cannot make the decoder construct anything else.

A frame is ``4-byte big-endian length + JSON bytes``; frames carry
``(src, msg)`` pairs (see :func:`encode_frame`).
"""

from __future__ import annotations

import dataclasses
import json
import math
import struct
from typing import Any, Dict, Tuple, Type

from repro.broadcast.messages import (
    Accept,
    Accepted,
    CatchupReply,
    CatchupRequest,
    Decide,
    Forward,
    Heartbeat,
    HeartbeatAck,
    Nack,
    NewEpoch,
    OptimisticAnnounce,
    Prepare,
    Promise,
    SequencerStamp,
)
from repro.core.command import Command
from repro.errors import ReproError
from repro.groups.messages import Rendezvous
from repro.net.messages import ClientRequest, ClientResponse, GroupEnvelope

__all__ = [
    "CodecError",
    "WIRE_TYPES",
    "WIRE_NAMES",
    "MAX_FRAME",
    "encode",
    "decode",
    "dumps",
    "loads",
    "encode_frame",
    "decode_frame",
    "wire_codec",
]


class CodecError(ReproError):
    """A value cannot be encoded, or a frame cannot be decoded."""


#: Hard cap on one frame's body, guarding against a corrupt length prefix.
MAX_FRAME = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

#: The complete wire surface.  Decoding instantiates only these.
WIRE_TYPES: Dict[str, Type[Any]] = {
    cls.__name__: cls
    for cls in (
        Command,
        Prepare,
        Promise,
        Accept,
        Accepted,
        Decide,
        Nack,
        CatchupRequest,
        CatchupReply,
        Forward,
        Heartbeat,
        HeartbeatAck,
        SequencerStamp,
        OptimisticAnnounce,
        NewEpoch,
        ClientRequest,
        ClientResponse,
        GroupEnvelope,
        Rendezvous,
    )
}

_TAG = "!"


def encode(obj: Any) -> Any:
    """Lower ``obj`` to a JSON-serializable structure."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            # json.dumps would happily emit bare ``NaN``/``Infinity`` tokens,
            # which RFC 8259 forbids and many peers (and the binary codec)
            # reject; fail at the source instead of on the wire.
            raise CodecError(f"cannot encode non-finite float: {obj!r}")
        return obj
    if isinstance(obj, list):
        return [encode(item) for item in obj]
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "v": [encode(item) for item in obj]}
    if isinstance(obj, dict):
        return {_TAG: "dict",
                "v": [[encode(k), encode(v)] for k, v in obj.items()]}
    name = type(obj).__name__
    if dataclasses.is_dataclass(obj) and WIRE_TYPES.get(name) is type(obj):
        fields = {
            f.name: encode(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {_TAG: name, "v": fields}
    raise CodecError(f"cannot encode {type(obj).__name__}: {obj!r}")


def decode(data: Any) -> Any:
    """Rebuild the value lowered by :func:`encode`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode(item) for item in data]
    if isinstance(data, dict):
        tag = data.get(_TAG)
        if tag == "tuple":
            return tuple(decode(item) for item in data["v"])
        if tag == "dict":
            return {decode(k): decode(v) for k, v in data["v"]}
        cls = WIRE_TYPES.get(tag)
        if cls is not None:
            fields = {key: decode(value) for key, value in data["v"].items()}
            try:
                return cls(**fields)
            except TypeError as error:
                raise CodecError(f"bad fields for {tag}: {error}") from error
        raise CodecError(f"unknown wire tag {tag!r}")
    raise CodecError(f"cannot decode {type(data).__name__}")


def dumps(obj: Any) -> bytes:
    return json.dumps(encode(obj), separators=(",", ":")).encode("utf-8")


def _reject_constant(token: str) -> Any:
    # Mirror of the encode-side finiteness check: a peer that does emit
    # bare NaN/Infinity tokens is rejected rather than smuggling a
    # non-finite float past both codecs' contracts.
    raise CodecError(f"non-finite JSON constant on the wire: {token}")


def loads(data: bytes) -> Any:
    try:
        return decode(json.loads(data.decode("utf-8"),
                                 parse_constant=_reject_constant))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"malformed frame body: {error}") from error


def encode_frame(src: int, msg: Any) -> bytes:
    """Pack one ``(src, msg)`` pair into a length-prefixed frame."""
    if isinstance(src, bool) or not isinstance(src, int):
        raise CodecError(f"frame src must be an int, got {src!r}")
    body = dumps((src, msg))
    if len(body) > MAX_FRAME:
        raise CodecError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


def decode_frame(body: bytes) -> Tuple[int, Any]:
    """Unpack one frame body (length prefix already consumed)."""
    pair = loads(body)
    if not isinstance(pair, tuple) or len(pair) != 2:
        raise CodecError(f"frame body is not an (src, msg) pair: {pair!r}")
    src, msg = pair
    # bool passes ``isinstance(src, int)``; a ``True`` src would then be
    # used as a node id (dict keys, peer routing) and silently alias node 1.
    if isinstance(src, bool) or not isinstance(src, int):
        raise CodecError(f"frame src is not an int: {src!r}")
    return src, msg


# ------------------------------------------------------------ wire codecs


class _JsonWire:
    """The tagged-JSON framing as a selectable wire codec.

    Frame header: the bare 4-byte big-endian length prefix (no magic — this
    is the v0 compatibility framing).  See :func:`wire_codec`.
    """

    name = "json"
    header_size = _LEN.size
    encode_frame = staticmethod(encode_frame)
    decode_frame = staticmethod(decode_frame)
    dumps = staticmethod(dumps)
    loads = staticmethod(loads)

    @staticmethod
    def body_length(header: bytes) -> int:
        """Parse a header; return the body length it announces."""
        length = _LEN.unpack(header)[0]
        if length > MAX_FRAME:
            raise CodecError(f"frame of {length} bytes exceeds {MAX_FRAME}")
        return length


#: Selectable wire codecs (``NetConfig.wire`` / ``TcpTransport(wire=)``).
WIRE_NAMES = ("json", "binary")

JSON_WIRE = _JsonWire()


def wire_codec(name: str):
    """Resolve a wire codec by name.

    A codec object exposes ``name``, ``header_size``, ``body_length``,
    ``encode_frame``/``decode_frame`` and ``dumps``/``loads``.  The binary
    codec lives in :mod:`repro.net.bincodec` (imported lazily: this module
    must stay importable from it).
    """
    if name == "json":
        return JSON_WIRE
    if name == "binary":
        from repro.net import bincodec
        return bincodec
    raise CodecError(
        f"unknown wire codec {name!r}; choose from {WIRE_NAMES}")
