"""Shared deployment description for the TCP cluster.

One :class:`NetConfig` describes a whole deployment — replica endpoints and
the service/protocol/scheduler parameters every replica process needs.  It
round-trips through JSON so the supervisor can hand it to replica
subprocesses as a file.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.apps import SERVICES
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.errors import ConfigurationError
from repro.net.codec import WIRE_NAMES

__all__ = ["NetConfig", "SERVICES", "free_port", "loopback_config"]


def free_port(host: str = "127.0.0.1") -> int:
    """Bind-and-release an ephemeral port; races are possible but rare."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass(frozen=True)
class NetConfig:
    """Parameters of one TCP cluster deployment."""

    #: ``addresses[i]`` is replica ``i``'s (host, port) listen endpoint.
    addresses: Tuple[Tuple[str, int], ...]
    service: str = "linked-list"
    protocol: str = "paxos"            # "paxos" | "sequencer"
    #: Consensus groups (state partitions).  1 is the classic single-group
    #: deployment; > 1 runs one ordering protocol per partition behind the
    #: same replica endpoints, with cross-partition commands coordinated by
    #: deterministic rendezvous (docs/partitioning.md).
    n_groups: int = 1
    #: Record merged positions + per-class release order on every grouped
    #: replica (differential suites; state grows with the run — leave off
    #: in long-lived deployments).  Ignored when ``n_groups == 1``.
    record_merge_history: bool = False
    cos_algorithm: str = "lock-free"   # any COS algorithm, or "sequential"
    workers: int = 4
    #: Execution engine per replica: "threaded" (worker threads call the
    #: service in-process) or "mp" (repro.par shard worker processes — true
    #: multi-core execution; see docs/parallel_execution.md).
    engine: str = "threaded"
    #: Shard worker processes per replica when ``engine == "mp"``.
    mp_workers: int = 2
    #: Wire codec on every TCP connection: "json" (tagged JSON, the v0
    #: framing) or "binary" (compact framing; see docs/wire.md).  All
    #: replicas and clients of one deployment must agree.
    wire: str = "json"
    max_graph_size: int = DEFAULT_MAX_SIZE
    batch_size: int = 64
    heartbeat_interval: float = 0.05
    leader_timeout: float = 0.25
    #: Nagle-style proposer linger (paxos only): a sub-full batch waits this
    #: long for more arrivals while earlier instances are in flight.
    #: ``None`` picks a tenth of the heartbeat interval; 0 disables.
    propose_linger: Optional[float] = None
    #: One cumulative ack per batch window instead of per-instance Decide
    #: broadcasts (docs/ordering.md); saves ~a third of ordering messages.
    cumulative_acks: bool = True
    #: Leader-lease window (paxos only).  ``None`` picks 0.8x the leader
    #: timeout; 0 disables leases and local lease reads.
    lease_duration: Optional[float] = None
    #: Clock-skew margin subtracted from the leader's lease hold time.
    #: ``None`` picks an eighth of the lease duration.
    lease_margin: Optional[float] = None
    #: Serve all-read client batches at the leaseholder without a
    #: consensus round (requires leases).
    lease_reads: bool = True
    client_timeout: float = 2.0
    #: ``metrics_addresses[i]`` is replica ``i``'s /metrics HTTP endpoint
    #: (see docs/observability.md); empty disables the endpoint.
    metrics_addresses: Tuple[Tuple[str, int], ...] = ()
    #: Directory for periodic JSON metric snapshots ("" disables).
    metrics_snapshot_dir: str = ""
    metrics_snapshot_interval: float = 1.0
    #: Collect per-command trace spans on each replica's registry (keyed
    #: by the wire-stable ``client_id#request_id``; see repro.obs.spans).
    trace: bool = False

    @property
    def n_replicas(self) -> int:
        return len(self.addresses)

    def validate(self) -> None:
        if self.protocol not in ("paxos", "sequencer"):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.protocol == "paxos" and self.n_replicas % 2 == 0:
            raise ConfigurationError(
                f"paxos needs an odd replica count, got {self.n_replicas}")
        if self.n_replicas < 1:
            raise ConfigurationError("need at least one replica")
        if self.service not in SERVICES:
            raise ConfigurationError(
                f"unknown service {self.service!r}; choose from {SERVICES}")
        if self.engine not in ("threaded", "mp"):
            raise ConfigurationError(f"unknown engine {self.engine!r}")
        if self.n_groups < 1:
            raise ConfigurationError(
                f"n_groups must be >= 1, got {self.n_groups}")
        if self.n_groups > 1 and self.engine != "threaded":
            raise ConfigurationError(
                "partitioned deployments (n_groups > 1) require the "
                "threaded engine")
        if self.n_groups > 1 and self.cos_algorithm == "sequential":
            raise ConfigurationError(
                "partitioned deployments (n_groups > 1) need a parallel "
                "COS algorithm, not 'sequential'")
        if self.engine == "mp" and self.mp_workers < 1:
            raise ConfigurationError(
                f"mp_workers must be >= 1, got {self.mp_workers}")
        if self.wire not in WIRE_NAMES:
            raise ConfigurationError(
                f"unknown wire codec {self.wire!r}; "
                f"choose from {WIRE_NAMES}")
        if self.metrics_addresses and (
                len(self.metrics_addresses) != self.n_replicas):
            raise ConfigurationError(
                f"metrics_addresses must be empty or list one endpoint per "
                f"replica; got {len(self.metrics_addresses)} for "
                f"{self.n_replicas} replicas")
        if self.metrics_snapshot_interval <= 0:
            raise ConfigurationError(
                "metrics_snapshot_interval must be > 0")
        if self.propose_linger is not None and self.propose_linger < 0:
            raise ConfigurationError("propose_linger must be >= 0")
        if self.lease_duration is not None and self.lease_duration < 0:
            raise ConfigurationError("lease_duration must be >= 0")
        if self.lease_margin is not None and self.lease_margin < 0:
            raise ConfigurationError("lease_margin must be >= 0")

    # ------------------------------------------------------------- JSON I/O

    def to_json(self) -> str:
        data = asdict(self)
        data["addresses"] = [list(addr) for addr in self.addresses]
        data["metrics_addresses"] = [
            list(addr) for addr in self.metrics_addresses]
        return json.dumps(data, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "NetConfig":
        data = json.loads(text)
        data["addresses"] = tuple(
            (str(host), int(port)) for host, port in data["addresses"])
        # Older config files predate the observability fields.
        data["metrics_addresses"] = tuple(
            (str(host), int(port))
            for host, port in data.get("metrics_addresses", ()))
        return cls(**data)

    def address_map(self) -> Dict[int, Tuple[str, int]]:
        return dict(enumerate(self.addresses))

    def with_address(self, replica_id: int,
                     address: Tuple[str, int]) -> "NetConfig":
        addresses: List[Tuple[str, int]] = list(self.addresses)
        addresses[replica_id] = address
        return replace(self, addresses=tuple(addresses))


def loopback_config(n_replicas: int = 3, metrics: bool = False,
                    **overrides) -> NetConfig:
    """A localhost deployment on freshly allocated ephemeral ports.

    With ``metrics=True`` each replica also gets a ``/metrics`` HTTP
    endpoint on its own ephemeral port (docs/observability.md).
    """
    addresses = tuple(("127.0.0.1", free_port()) for _ in range(n_replicas))
    if metrics and "metrics_addresses" not in overrides:
        overrides["metrics_addresses"] = tuple(
            ("127.0.0.1", free_port()) for _ in range(n_replicas))
    # REPRO_NET_WIRE lets CI run the same deployment tests once per codec
    # without threading a flag through every fixture.
    if "wire" not in overrides:
        overrides["wire"] = os.environ.get("REPRO_NET_WIRE", "json")
    config = NetConfig(addresses=addresses, **overrides)
    config.validate()
    return config
