"""One replica bound to a TCP endpoint.

:class:`ReplicaServer` assembles exactly the pieces
:class:`~repro.smr.cluster.ThreadedCluster` wires per replica — a broadcast
protocol state machine, a :class:`~repro.broadcast.node.ThreadedNode` event
loop, and a :class:`~repro.smr.replica.ParallelReplica` execution engine —
but over a :class:`~repro.net.transport.TcpTransport`.  The protocol and
replica code run unchanged; only the driver differs.

Client traffic: the transport interceptor turns an incoming
:class:`~repro.net.messages.ClientRequest` into a protocol ``submit`` and
records where that client listens; the replica's response callback sends a
:class:`~repro.net.messages.ClientResponse` back to that endpoint.  Every
replica answers every command it executes (first response wins at the
client), matching the paper's crash-model deployment.

Run one as a process with ``python -m repro net replica`` (see
:mod:`repro.net.cli`), or in-process via :class:`repro.net.cluster.TcpCluster`.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Optional

# build_service re-exported for compatibility: the registry moved to
# repro.apps so the par shard workers can share it.
from repro.apps import build_service
from repro.broadcast import MultiPaxos, SequencerBroadcast, ThreadedNode
from repro.core.command import Command
from repro.errors import ConfigurationError, ShutdownError
from repro.net.config import NetConfig
from repro.net.messages import ClientRequest, ClientResponse
from repro.net.transport import TcpTransport
from repro.obs import MetricsHTTPServer, MetricsRegistry, SnapshotWriter
from repro.par import MpService
from repro.smr.checkpoint import Checkpoint
from repro.smr.replica import ParallelReplica, SequentialReplica
from repro.smr.service import Service

__all__ = ["ReplicaServer", "build_service"]


class ReplicaServer:
    """A protocol node + execution engine listening on a TCP endpoint."""

    def __init__(self, replica_id: int, config: NetConfig,
                 checkpoint: Optional[Checkpoint] = None):
        config.validate()
        if not 0 <= replica_id < config.n_replicas:
            raise ConfigurationError(
                f"replica_id {replica_id} out of range for "
                f"{config.n_replicas} replicas")
        self.replica_id = replica_id
        self.config = config
        # One registry per replica process records the whole stack — COS,
        # replica engine, and transport (docs/observability.md).
        self.registry = MetricsRegistry(trace=config.trace)
        self._engine: Optional[MpService] = None
        if config.engine == "mp":
            self._engine = MpService(
                config.service,
                workers=config.mp_workers,
                registry=self.registry,
            )
            self.service: Service = self._engine
        else:
            self.service = build_service(config.service)
        self._metrics_server: Optional[MetricsHTTPServer] = None
        self._snapshot_writer: Optional[SnapshotWriter] = None
        self.replica = self._build_replica()
        if checkpoint is not None:
            self.replica.install_checkpoint(checkpoint)
        first_instance = (0 if checkpoint is None
                          else checkpoint.instance + 1)
        self.transport = TcpTransport(
            replica_id,
            config.address_map(),
            interceptor=self._intercept,
            seed=replica_id,
            registry=self.registry,
            wire=config.wire,
        )
        self.node = ThreadedNode(
            replica_id,
            self._build_protocol(first_instance),
            self.transport,
            self.replica.on_deliver,
            name=f"net-node-{replica_id}",
            on_read=self.replica.on_local_read,
        )
        # client_id -> transport node id of the client's response endpoint.
        self._reply_to: Dict[str, int] = {}
        self._reply_lock = threading.Lock()
        self._started = False

    # --------------------------------------------------------------- builders

    def _build_replica(self) -> ParallelReplica:
        if self.config.cos_algorithm == "sequential":
            return SequentialReplica(
                self.replica_id,
                self.service,
                max_queue_size=self.config.max_graph_size,
                on_response=self._respond,
                registry=self.registry,
            )
        return ParallelReplica(
            self.replica_id,
            self.service,
            cos_algorithm=self.config.cos_algorithm,
            workers=self.config.workers,
            max_graph_size=self.config.max_graph_size,
            on_response=self._respond,
            registry=self.registry,
        )

    def _build_protocol(self, first_instance: int) -> Any:
        if self.config.protocol == "sequencer":
            return SequencerBroadcast(self.replica_id, self.config.n_replicas)
        # Same leader-timeout staggering as ThreadedCluster: campaigns
        # rarely collide because followers time out at different moments.
        linger = self.config.propose_linger
        if linger is None:
            linger = self.config.heartbeat_interval / 10
        return MultiPaxos(
            self.replica_id,
            self.config.n_replicas,
            batch_size=self.config.batch_size,
            heartbeat_interval=self.config.heartbeat_interval,
            leader_timeout=self.config.leader_timeout
            * (1 + 0.35 * self.replica_id),
            first_instance=first_instance,
            propose_linger=linger,
            cumulative_acks=self.config.cumulative_acks,
            lease_duration=self.config.lease_duration,
            lease_margin=self.config.lease_margin,
            lease_reads=self.config.lease_reads,
            registry=self.registry,
        )

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "ReplicaServer":
        if self._started:
            raise ShutdownError("replica server already started")
        self._started = True
        # The engine forks first: shard processes should not inherit live
        # sockets or transport threads.  Starting it also installs any
        # checkpoint stashed by install_checkpoint.
        if self._engine is not None:
            self._engine.start()
        self.transport.start()
        if self.config.metrics_addresses:
            host, port = self.config.metrics_addresses[self.replica_id]
            self._metrics_server = MetricsHTTPServer(
                self.registry, host=host, port=port).start()
        if self.config.metrics_snapshot_dir:
            path = os.path.join(
                self.config.metrics_snapshot_dir,
                f"replica-{self.replica_id}-metrics.json")
            self._snapshot_writer = SnapshotWriter(
                self.registry, path,
                interval=self.config.metrics_snapshot_interval).start()
        self.replica.start()
        self.node.start()
        return self

    def stop(self) -> None:
        """Graceful teardown: event loop, sockets, then workers."""
        self.node.stop()
        self.transport.close()
        self.replica.stop(timeout=2.0)
        if self._engine is not None:
            self._engine.stop()
        if self._snapshot_writer is not None:
            self._snapshot_writer.stop()
            self._snapshot_writer = None
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None

    def __enter__(self) -> "ReplicaServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and self.node.running

    @property
    def metrics_address(self) -> Optional[Any]:
        """(host, port) actually bound by the /metrics server, if any."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.address

    # ------------------------------------------------------------ client path

    def _intercept(self, src: int, msg: Any) -> bool:
        """Transport hook: consume client envelopes before the inbox."""
        if not isinstance(msg, ClientRequest):
            return False
        self.transport.add_peer(msg.reply_to, msg.reply_host, msg.reply_port)
        with self._reply_lock:
            self._reply_to[msg.client_id] = msg.reply_to
        try:
            if msg.read_only and self.config.lease_reads:
                # All-read batch: eligible for the leaseholder-local fast
                # path; a non-leaseholder orders it normally.
                self.node.submit_read(msg.payload)
            else:
                self.node.submit(msg.payload)
        except ShutdownError:
            pass  # stopping; the client will retry elsewhere
        return True

    def _respond(self, command: Command, response: Any,
                 replica_id: int) -> None:
        if command.client_id is None:
            return
        with self._reply_lock:
            reply_to = self._reply_to.get(command.client_id)
        if reply_to is None:
            # This replica never saw the client directly (it submitted via
            # another contact); it cannot route the answer.  The contact
            # replica — which has the mapping — answers instead.
            return
        try:
            self.transport.send(
                self.replica_id, reply_to,
                ClientResponse(command, response, self.replica_id))
        except ShutdownError:
            pass
