"""Real-network deployment layer: TCP transport, processes, supervisor.

The in-process drivers (:class:`~repro.broadcast.transport.ThreadedTransport`
and the simulated cluster) connect protocol nodes through queues.  This
package provides the third driver the ROADMAP's production north star needs:
an asyncio **TCP transport** with the same ``send``/``inbox`` contract, so
:class:`~repro.broadcast.node.ThreadedNode`, the broadcast protocols, and
the replicas run *unchanged* over real sockets — and, through the
multi-process launcher (``python -m repro net ...``), each replica gets its
own OS process, interpreter, and GIL (see ``docs/deployment.md``).

Layers:

- :mod:`repro.net.codec` — JSON-safe, length-prefixed wire codec for the
  protocol messages and :class:`~repro.core.command.Command`.
- :mod:`repro.net.transport` — :class:`TcpTransport`: asyncio server +
  per-peer outbound queues with reconnect/backoff/jitter.
- :mod:`repro.net.replica` — :class:`ReplicaServer`: one replica (protocol
  node + execution engine) bound to a TCP endpoint.
- :mod:`repro.net.client` — :class:`NetClient`: the closed-loop SMR client
  over TCP.
- :mod:`repro.net.cluster` — :class:`TcpCluster`: an in-process *loopback*
  cluster (real sockets, one process) mirroring ``ThreadedCluster``'s API
  for tests.
- :mod:`repro.net.supervisor` — :class:`Supervisor`: spawns one OS process
  per replica and manages crash/restart.
- :mod:`repro.net.bench` — loopback throughput/latency benchmark writing a
  JSON artifact (``python -m repro net bench``).
"""

from repro.net.client import NetClient
from repro.net.cluster import TcpCluster
from repro.net.codec import CodecError, decode, decode_frame, encode, encode_frame
from repro.net.config import NetConfig, free_port
from repro.net.messages import ClientRequest, ClientResponse
from repro.net.replica import ReplicaServer
from repro.net.supervisor import Supervisor
from repro.net.transport import TcpTransport

__all__ = [
    "CodecError",
    "ClientRequest",
    "ClientResponse",
    "NetClient",
    "NetConfig",
    "ReplicaServer",
    "Supervisor",
    "TcpCluster",
    "TcpTransport",
    "decode",
    "decode_frame",
    "encode",
    "encode_frame",
    "free_port",
]
