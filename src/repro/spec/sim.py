"""Deterministic DES of the optimistic execution pipeline.

Drives the *real* :class:`~repro.broadcast.sequencer.SequencerBroadcast`
state machines (``optimistic=True``) and a real
:class:`~repro.spec.engine.SpeculationEngine` per replica on the
discrete-event :class:`~repro.sim.Simulator`, so the protocol and the
commit/rollback rule under measurement are the shipped implementations —
only network latency and execution cost are virtual.

Model:

- every ``Send`` is delayed by a seeded uniform draw from
  ``[net_min, net_max]``; a :class:`SequencerStamp` additionally waits
  ``ordering_delay`` — the consensus round the optimistic delivery
  front-runs (conservative order = optimistic announce + D);
- each replica owns one execution lane (a busy-until cursor): a
  speculative execution occupies the lane for ``exec_cost`` starting when
  both the optimistic delivery has arrived and the lane is free; a
  conservative re-execution after a rollback charges
  ``undo_cost × rolled + exec_cost × misses``;
- forced mismatches: with probability ``mismatch_rate`` a replica's
  adapter swaps an optimistic arrival with the next one (a seeded
  per-replica adjacent transposition), modelling optimistic/atomic
  delivery races without touching the protocol;
- responses are *released* at commit time — a hit releases the instant
  the conservative order confirms it; a miss releases when its
  conservative re-execution completes.  In conservative mode
  (``speculative=False``) execution starts only at conservative
  delivery, so the latency gap between the modes is exactly the
  execution time speculation overlaps with the ordering delay.

Latency is measured at a *follower* replica (replica 1): the sequencer
delivers to itself instantly in both modes, so only a follower sees the
optimistic/conservative gap the pipeline exists to hide.  Each replica
executes on its own real service instance, so a
run doubles as a differential check: :func:`run_spec_sim` returns every
replica's final snapshot and the conservative reference order, and the
speculative suite (tests/test_spec_differential.py) asserts bit-identical
state against a sequential reference execution — with forced mismatches
dialled up, precisely the runs where rollback must save the day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.apps import build_service
from repro.broadcast.messages import (
    Deliver,
    DeliverOptimistic,
    DeliverRead,
    Send,
    SequencerStamp,
    SetTimer,
)
from repro.broadcast.sequencer import SequencerBroadcast
from repro.core.command import Command
from repro.errors import ConfigurationError, SimulationError
from repro.groups.merge import command_key
from repro.sim import Simulator
from repro.smr.replica import _flatten_commands
from repro.spec.engine import SpeculationEngine

__all__ = ["SpecSimConfig", "SpecSimResult", "run_spec_sim"]

_MS = 1e-3

#: Seeded workload ops per service (write op, read op); values are drawn
#: from the key space.  Writes dominate by default because only writes
#: exercise undo records.
_APP_OPS = {
    "kv": ("put", "get"),
    "bank": ("deposit", "balance"),
    "linked-list": ("add", "contains"),
}


@dataclass(frozen=True)
class SpecSimConfig:
    """One simulated optimistic-vs-conservative run."""

    speculative: bool = True
    n_replicas: int = 3
    n_clients: int = 1                  # closed-loop clients
    total_commands: int = 200
    write_pct: float = 100.0
    service: str = "kv"
    service_kwargs: Dict[str, Any] = field(default_factory=dict)
    key_space: int = 64
    exec_cost: float = 3.0 * _MS        # execution-lane time per command
    undo_cost: float = 0.3 * _MS        # applying one undo record
    ordering_delay: float = 3.0 * _MS   # consensus round the stamp waits for
    net_min: float = 0.2 * _MS
    net_max: float = 0.3 * _MS
    mismatch_rate: float = 0.0          # adjacent-swap probability/replica
    seed: int = 1
    max_virtual_time: float = 600.0

    def validate(self) -> None:
        if self.service not in _APP_OPS:
            raise ConfigurationError(
                f"service must be one of {sorted(_APP_OPS)}, got "
                f"{self.service!r}")
        if not 0.0 <= self.mismatch_rate <= 1.0:
            raise ConfigurationError(
                f"mismatch_rate must be in [0, 1], got {self.mismatch_rate}")
        if self.n_clients < 1 or self.total_commands < 1:
            raise ConfigurationError("need at least one client and command")


@dataclass(frozen=True)
class SpecSimResult:
    """Outcome of one run (virtual-clock seconds throughout)."""

    config: SpecSimConfig
    latencies: Tuple[float, ...]        # submit -> release, command order
    virtual_time: float                 # last release
    committed: int
    match_rate: float                   # hits / committed (measure replica)
    rollbacks: int                      # rollback events (measure replica)
    executions: int                     # service executions (measure replica)
    snapshots: Tuple[Any, ...]          # per-replica final service state
    conservative_order: Tuple[Command, ...]

    @property
    def throughput(self) -> float:
        return self.committed / self.virtual_time if self.virtual_time else 0.0

    def latency_quantile(self, fraction: float) -> float:
        ordered = sorted(self.latencies)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


class _SpecSimNode:
    """One replica: protocol adapter + execution lane on the virtual clock."""

    def __init__(self, node_id: int, config: SpecSimConfig, sim: Simulator,
                 rng: random.Random,
                 on_release: Callable[[int, Command, float], None]):
        self.node_id = node_id
        self.config = config
        self.protocol = SequencerBroadcast(
            node_id, config.n_replicas, optimistic=config.speculative)
        self.service = build_service(config.service, **config.service_kwargs)
        self.engine = SpeculationEngine(self.service)
        self._sim = sim
        self._rng = rng
        self._on_release = on_release
        self.peers: List["_SpecSimNode"] = []
        #: Execution lane busy-until cursor (one sequential executor).
        self._lane_free = 0.0
        #: Commands whose speculative execution has been scheduled but has
        #: not completed yet, by key.
        self._inflight: Dict[Hashable, float] = {}
        #: Conservative batches confirmed by the protocol but waiting for
        #: in-flight speculative executions to land.
        self._confirm_queue: List[List[Command]] = []
        #: Pending adjacent swap (forced-mismatch injection).
        self._held_optimistic: Optional[Command] = None
        self.conservative_order: List[Command] = []
        self.executions = 0

    # ------------------------------------------------------------- protocol

    def submit(self, payload: Any) -> None:
        self._perform(self.protocol.submit(payload))

    def on_message(self, src: int, msg: Any) -> None:
        self._perform(self.protocol.on_message(src, msg))

    def _perform(self, actions: List[Any]) -> None:
        for action in actions:
            kind = type(action)
            if kind is Send:
                delay = self._rng.uniform(
                    self.config.net_min, self.config.net_max)
                if isinstance(action.msg, SequencerStamp):
                    # The consensus round the optimistic path front-runs.
                    delay += self.config.ordering_delay
                peer = self.peers[action.dst]
                self._sim.schedule(
                    delay,
                    lambda p=peer, m=action.msg: p.on_message(self.node_id, m))
            elif kind is Deliver:
                self._on_conservative(action.payload)
            elif kind is DeliverOptimistic:
                self._on_optimistic(action.payload)
            elif kind is DeliverRead:
                self._on_conservative(action.payload)
            elif kind is SetTimer:
                self._sim.schedule(
                    action.delay,
                    lambda n=action.name: self._perform(
                        self.protocol.on_timer(n)))
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown action {action!r}")

    # ----------------------------------------------------------- optimistic

    def _on_optimistic(self, payload: Any) -> None:
        for command in _flatten_commands(payload):
            if (self._held_optimistic is None
                    and self._rng.random() < self.config.mismatch_rate):
                # Hold this arrival; the next one overtakes it (a seeded
                # adjacent transposition of the optimistic order).
                self._held_optimistic = command
                continue
            self._speculate(command)
            if self._held_optimistic is not None:
                held, self._held_optimistic = self._held_optimistic, None
                self._speculate(held)

    def _speculate(self, command: Command) -> None:
        entry = self.engine.admit(command)
        if entry is None:
            return
        start = max(self._sim.now, self._lane_free)
        done = start + self.config.exec_cost
        self._lane_free = done
        self._inflight[entry.key] = done
        self._sim.schedule(done - self._sim.now,
                           lambda e=entry: self._execute_speculative(e))

    def _execute_speculative(self, entry: Any) -> None:
        undo = self.engine.undo.capture(self.service, entry.command)
        response = self.service.execute(entry.command)
        self.executions += 1
        self.engine.record(entry, undo, response)
        self._inflight.pop(entry.key, None)
        self._try_confirm()

    # --------------------------------------------------------- conservative

    def _on_conservative(self, payload: Any) -> None:
        commands = list(_flatten_commands(payload))
        self.conservative_order.extend(commands)
        if not self.config.speculative:
            start = max(self._sim.now, self._lane_free)
            for command in commands:
                start += self.config.exec_cost
                self._sim.schedule(
                    start - self._sim.now,
                    lambda c=command, t=start: self._execute_conservative(c, t))
            self._lane_free = start
            return
        self._confirm_queue.append(commands)
        self._try_confirm()

    def _execute_conservative(self, command: Command, release: float) -> None:
        self.service.execute(command)
        self.executions += 1
        self._on_release(self.node_id, command, release)

    def _try_confirm(self) -> None:
        while self._confirm_queue:
            if self.engine.unexecuted:
                return  # _execute_speculative will retry on completion
            commands = self._confirm_queue.pop(0)
            lane = [max(self._sim.now, self._lane_free)]

            def execute(command: Command) -> Any:
                response = self.service.execute(command)
                self.executions += 1
                lane[0] += self.config.exec_cost
                return response

            before = self.engine.stats.rolled_back
            result = self.engine.confirm(commands, execute=execute)
            lane[0] += self.config.undo_cost * (
                self.engine.stats.rolled_back - before)
            self._lane_free = max(self._lane_free, lane[0])
            for command, _response, hit in result.released:
                release = self._sim.now if hit else self._lane_free
                self._on_release(self.node_id, command, release)
            for command in result.respeculate:
                # Re-speculated commands admit ahead of any optimistic
                # arrival still in the event queue, matching the threaded
                # replica's deliver-lock ordering.
                self._speculate(command)

    def flush_holds(self) -> None:
        """Release a trailing held arrival (end-of-stream swap partner)."""
        if self._held_optimistic is not None:
            held, self._held_optimistic = self._held_optimistic, None
            self._speculate(held)


def run_spec_sim(config: SpecSimConfig) -> SpecSimResult:
    """Simulate one configuration; see the module docstring for the model."""
    config.validate()
    sim = Simulator()
    rng = random.Random(config.seed * 9176 + 11)

    # -------------------------------------------------------------- replicas
    released: Dict[Hashable, float] = {}
    submit_times: Dict[Hashable, float] = {}
    latencies: List[float] = []
    release_order: List[Hashable] = []

    # The sequencer (node 0) delivers to itself instantly; followers see
    # the announce-vs-stamp gap, which is the phenomenon under test.
    measure_replica = 1 if config.n_replicas > 1 else 0

    def on_release(node_id: int, command: Command, when: float) -> None:
        if node_id != measure_replica:
            return
        key = command_key(command)
        if key in released:
            raise SimulationError(f"command {key} released twice")
        released[key] = when
        release_order.append(key)
        latencies.append(when - submit_times[key])
        next_submit = client_next.get(command.client_id)
        if next_submit is not None:
            sim.schedule(max(when - sim.now, 0.0)
                         + rng.uniform(config.net_min, config.net_max),
                         next_submit)

    nodes = [
        _SpecSimNode(node_id, config,
                     sim, random.Random(config.seed * 7907 + node_id),
                     on_release)
        for node_id in range(config.n_replicas)
    ]
    for node in nodes:
        node.peers = nodes

    # --------------------------------------------------------------- clients
    sequencer = nodes[0]
    per_client = config.total_commands // config.n_clients
    remainder = config.total_commands % config.n_clients
    client_next: Dict[str, Callable[[], None]] = {}

    def make_client(index: int, quota: int) -> Callable[[], None]:
        client_id = f"spec-client-{index}"
        workload = random.Random(config.seed * 104_729 + index)
        write_op, read_op = _APP_OPS[config.service]
        issued = [0]

        def submit_next() -> None:
            if issued[0] >= quota:
                return
            issued[0] += 1
            writes = workload.random() < config.write_pct / 100.0
            key = workload.randrange(config.key_space)
            if config.service == "kv":
                args = (f"k{key}", issued[0]) if writes else (f"k{key}",)
            elif config.service == "bank":
                args = (f"acct{key}", 1) if writes else (f"acct{key}",)
            else:
                args = (key,)
            command = Command(
                op=write_op if writes else read_op,
                args=args,
                client_id=client_id,
                request_id=issued[0],
                writes=writes,
            )
            submit_times[command_key(command)] = sim.now
            sequencer.submit(command)

        client_next[client_id] = submit_next
        return submit_next

    for index in range(config.n_clients):
        quota = per_client + (1 if index < remainder else 0)
        first = make_client(index, quota)
        sim.schedule(rng.uniform(0.0, config.net_max), first)

    sim.run(until=config.max_virtual_time)
    for node in nodes:
        node.flush_holds()
    sim.run(until=config.max_virtual_time)

    if len(released) != config.total_commands:
        raise SimulationError(
            f"released {len(released)} of {config.total_commands} commands "
            f"(virtual-time budget too small?)")
    measured = nodes[measure_replica]
    stats = measured.engine.stats
    confirmed = stats.hits + stats.misses
    return SpecSimResult(
        config=config,
        latencies=tuple(latencies),
        virtual_time=max(released.values(), default=0.0),
        committed=len(released),
        match_rate=(stats.hits / confirmed
                    if config.speculative and confirmed else 1.0),
        rollbacks=stats.rollbacks,
        executions=measured.executions,
        snapshots=tuple(node.service.snapshot() for node in nodes),
        conservative_order=tuple(nodes[0].conservative_order),
    )
