"""Undo records for speculative execution.

A speculative execution may later prove to be mis-ordered, so *before*
executing a command the pipeline captures an **undo record** — enough
information to restore exactly the state the command is about to
overwrite.  Two strategies are provided:

- :class:`ServiceUndo` (the default) asks the service itself via the
  optional ``capture_undo(command)`` / ``apply_undo(record)`` methods all
  three bundled apps implement: per-command inverse data (the previous
  value of a key, the prior balances of the touched accounts, the prior
  membership of the inserted values).  O(footprint) per command.
- :class:`SnapshotUndo` falls back on the :class:`ShardableService` API:
  it snapshots the shards ``shards_of(command)`` names and restores them
  on rollback.  Works for any shardable service, at shard granularity.

Why applying undos in reverse speculation order is sufficient: the COS
serializes conflicting commands in their insertion (= optimistic) order,
so two records that overlap in state are always captured/applied in a
well-defined order; and in every shipped conflict relation two
*non-conflicting* writes have disjoint footprints, so their undo records
commute.  The full argument is in docs/speculation.md.

Reads capture ``None`` (nothing to restore); applying ``None`` is a
no-op.
"""

from __future__ import annotations

from typing import Any

from repro.core.command import Command

__all__ = ["UndoProvider", "SnapshotUndo", "ServiceUndo"]


class UndoProvider:
    """Capture/apply interface for speculative undo records."""

    def capture(self, service: Any, command: Command) -> Any:
        """Return an undo record for ``command`` *before* it executes."""
        raise NotImplementedError

    def apply(self, service: Any, record: Any) -> None:
        """Restore the state ``record`` was captured from."""
        raise NotImplementedError


class SnapshotUndo(UndoProvider):
    """Generic undo via the ``ShardableService`` snapshot API.

    Captures the fragments of the shards a command touches
    (``shards_of`` + ``snapshot_shard``) and, on rollback, rebuilds the
    full state by recomposing the *untouched* shards' current fragments
    with the captured ones.  Correct for any service whose ``shards_of``
    covers every piece of state the command can write — the contract the
    multiprocess engine already relies on.  Note ``restore_shard`` cannot
    be used here: its contract is shard-*process*-local (the fragment
    becomes the whole state), not an in-place patch of a full-state
    service.

    Cost is O(state) per capture and per rollback — this is the safety
    net; the bundled apps provide O(footprint) inverse records via
    :class:`ServiceUndo`.  Services without sharding (or commands
    reporting the ``ALL_SHARDS`` sentinel) fall back to a full
    ``snapshot()``/``restore()`` pair.
    """

    def __init__(self, n_shards: int = 16):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    def capture(self, service: Any, command: Command) -> Any:
        if not command.writes:
            return None
        shards_of = getattr(service, "shards_of", None)
        if shards_of is None:
            return ("full", service.snapshot())
        shards = tuple(shards_of(command, self.n_shards))
        if not shards:  # ALL_SHARDS sentinel: whole-state footprint
            return ("full", service.snapshot())
        return ("shards", tuple(
            (shard, service.snapshot_shard(shard, self.n_shards))
            for shard in shards
        ))

    def apply(self, service: Any, record: Any) -> None:
        if record is None:
            return
        kind, payload = record
        if kind == "full":
            service.restore(payload)
            return
        captured = dict(payload)
        fragments = [
            service.snapshot_shard(shard, self.n_shards)
            for shard in range(self.n_shards)
            if shard not in captured
        ]
        fragments.extend(captured.values())
        service.restore(service.recompose_snapshots(fragments))


class ServiceUndo(UndoProvider):
    """Prefer the service's own inverse ops, fall back to shard snapshots.

    The bundled apps implement ``capture_undo``/``apply_undo`` (cheap,
    O(footprint) inverse data); any other service transparently gets
    :class:`SnapshotUndo` semantics.
    """

    def __init__(self, n_shards: int = 16):
        self._fallback = SnapshotUndo(n_shards)

    def capture(self, service: Any, command: Command) -> Any:
        capture_undo = getattr(service, "capture_undo", None)
        if capture_undo is not None:
            return capture_undo(command)
        return self._fallback.capture(service, command)

    def apply(self, service: Any, record: Any) -> None:
        if record is None:
            return
        apply_undo = getattr(service, "apply_undo", None)
        if apply_undo is not None:
            apply_undo(record)
            return
        self._fallback.apply(service, record)
