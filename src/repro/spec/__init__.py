"""Optimistic (speculative) execution pipeline — ROADMAP item 4.

Implements the *Optimistic Parallel State-Machine Replication* idea
(PAPERS.md, arXiv 1404.6721) on top of the existing replica machinery:
commands are executed as soon as the sequencer's optimistic delivery
guesses their position, an undo record is captured before every
speculative execution, and responses are withheld until the conservative
order confirms the guess.  A confirmed prefix commits (undo records
dropped, responses released); a mismatch rolls the divergent suffix back
in reverse speculation order and re-executes in the confirmed order.

Layout:

- :mod:`repro.spec.undo` — undo-record capture/apply (per-app inverse
  ops with a generic touched-shard snapshot fallback);
- :mod:`repro.spec.engine` — the pure commit/rollback core
  (:class:`SpeculationEngine`), runtime-agnostic and model-checkable;
- :mod:`repro.spec.replica` — :class:`SpeculativeReplica`, the threaded
  replica that wires optimistic deliveries through the COS;
- :mod:`repro.spec.sim` — deterministic DES of the full pipeline for
  latency/throughput measurement and the differential suite.

See docs/speculation.md for the protocol and the rollback safety
argument.
"""

from repro.spec.engine import ConfirmResult, SpecEntry, SpeculationEngine
from repro.spec.replica import SpeculativeReplica
from repro.spec.undo import ServiceUndo, SnapshotUndo, UndoProvider

__all__ = [
    "ConfirmResult",
    "SpecEntry",
    "SpeculationEngine",
    "SpeculativeReplica",
    "ServiceUndo",
    "SnapshotUndo",
    "UndoProvider",
]
