"""Threaded replica with optimistic (speculative) execution.

A :class:`SpeculativeReplica` extends
:class:`~repro.smr.replica.ParallelReplica` with the optimistic pipeline
of :mod:`repro.spec`:

- ``on_optimistic`` (wired to the broadcast layer's
  :class:`~repro.broadcast.messages.DeliverOptimistic` stream) admits
  each command to the :class:`~repro.spec.engine.SpeculationEngine` log
  and inserts it into the COS, so workers execute it *speculatively* —
  capturing an undo record first and **withholding the response**;
- ``on_deliver`` (the conservative order) drains in-flight speculative
  executions, then applies the engine's commit/rollback rule: hits
  release their buffered responses, mismatches roll the divergent
  suffix back and execute the confirmed order inline, and rolled-back
  unconfirmed commands are re-speculated in their original order.

Frontier accounting: ``_scheduled``/``_executed`` count **committed**
work only — a speculative insert bumps neither, so the base pipeline
idleness predicate means "committed-idle" and checkpoints quiesce to a
*confirmed* cut (the overridden ``_pipeline_idle`` additionally requires
a clean speculation log, since the service state is provisional while
uncommitted entries exist).

Local reads never observe speculative state: while the log is dirty an
``on_local_read`` batch is *deferred* and flushed right after the next
confirmation leaves the log clean — the satellite tightening of the
idle-read fast path (a read scheduled through the COS behind a
speculative write would have returned a value that may be rolled back).

Locking: ``_deliver_lock`` serializes optimistic and conservative
delivery (and reads), exactly as in the base class; ``_spec_lock``
guards the engine and the pending-execution map and is never held
across a service call except inside ``confirm`` (where the drain
precondition guarantees no worker touches the engine concurrently).
Workers take only ``_spec_lock``/``_state_lock``, never
``_deliver_lock``, so draining speculation while holding the deliver
lock cannot deadlock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Hashable, List, Optional

from repro.core.command import Command
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.errors import SpeculationError
from repro.groups.merge import command_key
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import span_key
from repro.smr.replica import (
    ParallelReplica,
    ResponseCallback,
    STOP_OP,
    _flatten_commands,
)
from repro.smr.service import Service
from repro.spec.engine import SpeculationEngine
from repro.spec.undo import UndoProvider

__all__ = ["SpeculativeReplica"]


class SpeculativeReplica(ParallelReplica):
    """Parallel replica that executes on optimistic delivery."""

    def __init__(
        self,
        replica_id: int,
        service: Service,
        cos_algorithm: str = "lock-free",
        workers: int = 4,
        max_graph_size: int = DEFAULT_MAX_SIZE,
        on_response: Optional[ResponseCallback] = None,
        registry: Optional[MetricsRegistry] = None,
        dispatch_batch: Optional[int] = None,
        dedup_window: int = 0,
        undo: Optional[UndoProvider] = None,
        drain_timeout: float = 5.0,
    ):
        super().__init__(
            replica_id,
            service,
            cos_algorithm=cos_algorithm,
            workers=workers,
            max_graph_size=max_graph_size,
            on_response=on_response,
            registry=registry,
            dispatch_batch=dispatch_batch,
            dedup_window=dedup_window,
        )
        self._engine = SpeculationEngine(service, undo)
        self._spec_lock = threading.Lock()
        self._spec_executed = threading.Condition(self._spec_lock)
        #: command key -> admitted entry awaiting execution by a worker.
        self._spec_pending: Dict[Hashable, Any] = {}
        #: command key -> optimistic-admission clock reading (obs).
        self._spec_admitted: Dict[Hashable, float] = {}
        self._deferred_reads: List[List[Command]] = []
        self._drain_timeout = drain_timeout
        obs = self.registry
        self._m_spec_speculated = obs.counter("spec_speculated_total")
        self._m_spec_duplicates = obs.counter("spec_duplicates_total")
        self._m_spec_hits = obs.counter("spec_hits_total")
        self._m_spec_misses = obs.counter("spec_misses_total")
        self._m_spec_rollbacks = obs.counter("spec_rollbacks_total")
        self._m_spec_rolled_back = obs.counter("spec_rolled_back_total")
        self._m_spec_reads_deferred = obs.counter(
            "spec_reads_deferred_total")
        #: Optimistic delivery -> speculative execution finished.
        self._h_spec_exec = obs.histogram("spec_exec_seconds")
        #: Optimistic delivery -> conservative commit released the
        #: response.  The spread between this and spec_exec_seconds is
        #: the ordering latency speculation hides.
        self._h_spec_commit = obs.histogram("spec_commit_seconds")

    # ---------------------------------------------------------- inspection

    @property
    def speculation_stats(self) -> Dict[str, int]:
        with self._spec_lock:
            return self._engine.stats.as_dict()

    # ------------------------------------------------------------ delivery

    def on_optimistic(self, payload: Any) -> None:
        """Optimistic delivery: speculate a batch of commands.

        Runs on the broadcast event-loop thread, like ``on_deliver``.
        Commands are admitted to the speculation log in arrival order
        (that *is* the guessed total order) and inserted into the COS
        without touching the committed frontiers; duplicates — of queued
        entries and of recently committed commands — are dropped by the
        engine.  The conservative dedup cache is deliberately not
        consulted or reserved here: the conservative path owns it.
        """
        with self._deliver_lock:
            if self._stopping:
                return
            for command in _flatten_commands(payload):
                if command.op == STOP_OP:
                    continue
                self._speculate(command)

    def _speculate(self, command: Command) -> None:
        """Admit one command and hand it to the workers (deliver lock held)."""
        obs_on = self._obs_on
        with self._spec_lock:
            entry = self._engine.admit(command)
            if entry is None:
                if obs_on:
                    self._m_spec_duplicates.inc()
                return
            self._spec_pending[entry.key] = entry
            if obs_on:
                self._spec_admitted.setdefault(
                    entry.key, self.registry.clock())
        if obs_on:
            self._m_spec_speculated.inc()
            self.registry.span(span_key(command), "speculated")
        self._cos.insert(command)

    def on_deliver(self, instance: int, payload: Any) -> None:
        """Conservative delivery: confirm against the speculation log."""
        with self._deliver_lock:
            commands = [command for command in _flatten_commands(payload)
                        if not self._is_duplicate(command)]
            if commands:
                self._confirm(commands)
            self._last_instance = max(self._last_instance, instance)
            self._flush_deferred_reads()

    def _confirm(self, commands: List[Command]) -> None:
        self._drain_speculation()
        obs_on = self._obs_on
        clock = self.registry.clock
        with self._spec_lock:
            result = self._engine.confirm(commands)
        with self._state_lock:
            self._scheduled += len(commands)
            self._executed += len(commands)
            for command, response, _hit in result.released:
                self._fill_response(command, response)
        if self._on_response is not None:
            for command, response, _hit in result.released:
                self._on_response(command, response, self.replica_id)
        if obs_on:
            now = clock()
            hits = sum(1 for _, _, hit in result.released if hit)
            self._m_spec_hits.inc(hits)
            self._m_spec_misses.inc(len(result.released) - hits)
            if result.rolled_back:
                self._m_spec_rollbacks.inc()
                self._m_spec_rolled_back.inc(result.rolled_back)
            with self._spec_lock:
                for command, _response, _hit in result.released:
                    admitted = self._spec_admitted.pop(
                        command_key(command), None)
                    if admitted is not None:
                        self._h_spec_commit.observe(now - admitted)
            for command, _response, _hit in result.released:
                self.registry.span(span_key(command), "committed")
        # Rolled-back commands that are still unconfirmed go back into
        # the speculation log in their original optimistic order (the
        # deliver lock keeps new optimistic arrivals from interleaving).
        for command in result.respeculate:
            self._speculate(command)

    def _drain_speculation(self) -> None:
        """Wait until every admitted entry has recorded its execution.

        Called under the deliver lock; workers never take it, so they are
        free to finish the in-flight speculative executions this waits
        for.
        """
        deadline = time.monotonic() + self._drain_timeout
        with self._spec_executed:
            while self._engine.unexecuted:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SpeculationError(
                        f"replica {self.replica_id}: {self._engine.unexecuted} "
                        f"speculative execution(s) still in flight after "
                        f"{self._drain_timeout}s")
                self._spec_executed.wait(min(remaining, 0.05))

    # ----------------------------------------------------------- execution

    def _run_batch(self, commands: List[Command]) -> List[Any]:
        """Worker hook: execute speculatively, withholding publication.

        In speculative mode the COS carries only admitted speculative
        commands (conservative commands execute inline in ``_confirm``
        and dirty-log reads are deferred), so the common path captures an
        undo record, executes, and records the response in the engine —
        no ``_executed`` bump, no response release.  A command without a
        pending entry (not expected in practice) falls back to the
        conservative base path.
        """
        obs_on = self._obs_on
        responses: List[Any] = []
        for command in commands:
            key = command_key(command)
            with self._spec_lock:
                entry = self._spec_pending.pop(key, None)
            if entry is None:  # pragma: no cover - defensive
                responses.extend(super()._run_batch([command]))
                continue
            undo = self._engine.undo.capture(self.service, command)
            response = self.service.execute(command)
            with self._spec_executed:
                self._engine.record(entry, undo, response)
                self._spec_executed.notify_all()
                if obs_on:
                    admitted = self._spec_admitted.get(key)
                    if admitted is not None:
                        self._h_spec_exec.observe(
                            self.registry.clock() - admitted)
            responses.append(response)
        return responses

    # --------------------------------------------------------- local reads

    def on_local_read(self, payload: Any) -> None:
        """Leaseholder-local read; never observes speculative state.

        While the speculation log is dirty the service state is
        provisional (a mis-speculated write may be rolled back), so the
        read can neither run inline *nor* be scheduled through the COS —
        it is deferred and flushed after the next confirmation leaves
        the log clean.  With a clean log this degenerates to the base
        fast path.
        """
        with self._deliver_lock:
            commands = [command for command in _flatten_commands(payload)
                        if not self._is_duplicate(command)]
            if not commands:
                return
            if self._spec_dirty() or not self._claim_idle_inline(
                    len(commands)):
                self._deferred_reads.append(commands)
                if self._obs_on:
                    self._m_spec_reads_deferred.inc(len(commands))
                return
            self._execute_inline(commands)

    def _flush_deferred_reads(self) -> None:
        """Run deferred reads once the log is clean (deliver lock held)."""
        if not self._deferred_reads or self._spec_dirty():
            return
        batches, self._deferred_reads = self._deferred_reads, []
        for commands in batches:
            if self._claim_idle_inline(len(commands)):
                self._execute_inline(commands)
            else:
                # Committed work still in flight: the COS path is safe —
                # the log is clean, so there is no provisional state for
                # the read to observe.
                self._schedule_commands(commands)

    # ------------------------------------------------------------ idleness

    def _spec_dirty(self) -> bool:
        """True while the service state differs from the committed prefix."""
        with self._spec_lock:
            return bool(self._spec_pending) or not self._engine.clean

    def _pipeline_idle(self) -> bool:
        """Committed-idle *and* a clean speculation log.

        Checkpoints (``take_checkpoint``) poll this, so a speculative
        replica quiesces to a confirmed cut — the snapshot never
        contains provisional effects.
        """
        if self._spec_dirty():
            return False
        return super()._pipeline_idle()
