"""The pure commit/rollback core of the optimistic pipeline.

A :class:`SpeculationEngine` owns the *speculation log*: the sequence of
commands executed optimistically against a service, each with the undo
record captured just before it ran.  The engine is deliberately
runtime-agnostic and single-threaded (callers serialize access — the
threaded :class:`~repro.spec.replica.SpeculativeReplica` holds a lock,
the DES and the ``spec-rollback`` model-check harness drive it
directly), which is what makes the rollback protocol checkable.

Protocol (arXiv 1404.6721, adapted to this codebase):

- ``admit``/``record`` (or the inline ``speculate``) append a command to
  the log in optimistic-delivery order.  Duplicate optimistic deliveries
  and late re-deliveries of already-committed commands are dropped by
  ``command_key`` identity.
- ``confirm`` consumes a conservative-order batch.  While the confirmed
  command matches the *head* of the speculation log, the entry commits:
  its undo record is dropped and its buffered response released.  At the
  first mismatch the entire uncommitted suffix is rolled back — undo
  records applied in **reverse** log order — and the remaining confirmed
  commands execute conservatively; rolled-back commands that were not in
  this confirmation batch are handed back for re-speculation.

Why reverse-order undo restores the exact pre-speculation state: the COS
serializes conflicting commands in log (insertion) order, so overlapping
records nest properly; and in every shipped conflict relation two
non-conflicting *writes* have disjoint footprints, so their records
commute (docs/speculation.md §Rollback safety).

The commit rule is position-by-position identity, not conflict
equivalence: a conservative order that merely permutes non-conflicting
speculated commands still rolls them back.  That costs performance,
never safety, and keeps the committed log byte-identical to the
conservative log on every replica.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.core.command import Command
from repro.errors import SpeculationError
from repro.groups.merge import command_key
from repro.spec.undo import ServiceUndo, UndoProvider

__all__ = [
    "ConfirmResult",
    "SpecEntry",
    "SpecStats",
    "SpeculationEngine",
    "SkipUndoEngine",
]

#: Committed command keys remembered for late-duplicate dropping.
DEFAULT_COMMITTED_WINDOW = 4096


class SpecEntry:
    """One speculative execution: command + undo record + buffered response."""

    __slots__ = ("command", "key", "undo", "response", "executed")

    def __init__(self, command: Command, key: Hashable):
        self.command = command
        self.key = key
        self.undo: Any = None
        self.response: Any = None
        self.executed = False


@dataclass
class SpecStats:
    """Monotonic counters over one engine's lifetime."""

    speculated: int = 0
    duplicates_dropped: int = 0
    hits: int = 0
    misses: int = 0
    rollbacks: int = 0
    rolled_back: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "speculated": self.speculated,
            "duplicates_dropped": self.duplicates_dropped,
            "hits": self.hits,
            "misses": self.misses,
            "rollbacks": self.rollbacks,
            "rolled_back": self.rolled_back,
        }

    @property
    def match_rate(self) -> float:
        confirmed = self.hits + self.misses
        return (self.hits / confirmed) if confirmed else 1.0


@dataclass
class ConfirmResult:
    """Outcome of one conservative confirmation batch.

    ``released`` pairs every confirmed command with its (now committable)
    response and whether it was a speculation hit; ``respeculate`` lists
    rolled-back commands that are still unconfirmed, in their original
    optimistic order, for the caller to speculate again.
    """

    released: List[Tuple[Command, Any, bool]] = field(default_factory=list)
    respeculate: List[Command] = field(default_factory=list)
    rolled_back: int = 0


class SpeculationEngine:
    """Speculation log + commit/rollback rule over one service."""

    def __init__(
        self,
        service: Any,
        undo: Optional[UndoProvider] = None,
        committed_window: int = DEFAULT_COMMITTED_WINDOW,
    ):
        if committed_window < 1:
            raise ValueError(
                f"committed_window must be >= 1, got {committed_window}")
        self.service = service
        self.undo = undo if undo is not None else ServiceUndo()
        self.stats = SpecStats()
        self._entries: Deque[SpecEntry] = deque()
        self._by_key: Dict[Hashable, SpecEntry] = {}
        self._unexecuted = 0
        #: Recently committed keys (bounded): a late optimistic duplicate
        #: of a committed command must not re-enter the log.
        self._committed: "OrderedDict[Hashable, None]" = OrderedDict()
        self._committed_window = committed_window

    # ----------------------------------------------------------- inspection

    @property
    def uncommitted(self) -> int:
        """Entries speculated but not yet confirmed or rolled back."""
        return len(self._entries)

    @property
    def unexecuted(self) -> int:
        """Admitted entries whose execution has not been recorded yet."""
        return self._unexecuted

    @property
    def clean(self) -> bool:
        """True iff the service state equals the committed-prefix state."""
        return not self._entries

    # ----------------------------------------------------------- speculation

    def admit(self, command: Command) -> Optional[SpecEntry]:
        """Append ``command`` to the speculation log; None if duplicate.

        Split from execution so a threaded caller can reserve the log
        position under its lock on the optimistic-delivery thread and let
        a COS worker execute and :meth:`record` later — the log position
        (hence commit/rollback order) is fixed at admission.
        """
        key = command_key(command)
        if key in self._by_key or key in self._committed:
            self.stats.duplicates_dropped += 1
            return None
        entry = SpecEntry(command, key)
        self._entries.append(entry)
        self._by_key[key] = entry
        self._unexecuted += 1
        self.stats.speculated += 1
        return entry

    def record(self, entry: SpecEntry, undo: Any, response: Any) -> None:
        """Attach the undo record and response of an executed entry."""
        if entry.executed:
            raise SpeculationError(
                f"entry {entry.key!r} recorded twice")
        entry.undo = undo
        entry.response = response
        entry.executed = True
        self._unexecuted -= 1

    def speculate(self, command: Command) -> Optional[SpecEntry]:
        """Admit and execute ``command`` inline (single-threaded callers)."""
        entry = self.admit(command)
        if entry is None:
            return None
        undo = self.undo.capture(self.service, command)
        response = self.service.execute(command)
        self.record(entry, undo, response)
        return entry

    # ----------------------------------------------------------- confirming

    def confirm(
        self,
        commands: List[Command],
        execute: Optional[Callable[[Command], Any]] = None,
    ) -> ConfirmResult:
        """Apply one conservative-order batch; see the module docstring.

        Requires a drained log (every admitted entry executed): rollback
        needs an undo record for *every* uncommitted entry.  ``execute``
        runs mismatched commands conservatively (defaults to the
        service).  The caller must have deduplicated the conservative
        stream — a command key is confirmed at most once.
        """
        if self._unexecuted:
            raise SpeculationError(
                f"confirm with {self._unexecuted} speculative execution(s) "
                f"still in flight; drain the pipeline first")
        if execute is None:
            execute = self.service.execute
        result = ConfirmResult()
        diverged = False
        for command in commands:
            key = command_key(command)
            if not diverged and self._entries and self._entries[0].key == key:
                entry = self._entries.popleft()
                del self._by_key[key]
                self._commit_key(key)
                self.stats.hits += 1
                result.released.append((command, entry.response, True))
                continue
            if not diverged:
                diverged = True
                result.respeculate = self._rollback()
                result.rolled_back = len(result.respeculate)
            if result.respeculate:
                result.respeculate = [
                    rolled for rolled in result.respeculate
                    if command_key(rolled) != key
                ]
            self._commit_key(key)
            self.stats.misses += 1
            result.released.append((command, execute(command), False))
        return result

    def abort(self) -> int:
        """Roll back every uncommitted entry (shutdown path)."""
        if self._unexecuted:
            raise SpeculationError(
                f"abort with {self._unexecuted} speculative execution(s) "
                f"still in flight")
        return len(self._rollback())

    # ------------------------------------------------------------- internals

    def _commit_key(self, key: Hashable) -> None:
        self._committed[key] = None
        while len(self._committed) > self._committed_window:
            self._committed.popitem(last=False)

    def _rollback(self) -> List[Command]:
        """Undo the whole uncommitted suffix, newest first."""
        rolled = list(self._entries)
        for entry in reversed(rolled):
            self._apply_undo(entry)
        self._entries.clear()
        self._by_key.clear()
        if rolled:
            self.stats.rollbacks += 1
            self.stats.rolled_back += len(rolled)
        return [entry.command for entry in rolled]

    def _apply_undo(self, entry: SpecEntry) -> None:
        self.undo.apply(self.service, entry.undo)


class SkipUndoEngine(SpeculationEngine):
    """Seeded bug: roll back without applying the undo records.

    The rolled-back commands' effects survive in the service state, so a
    replica that mis-speculated diverges from one that never speculated —
    the exact corruption the ``spec-rollback`` harness's state oracle
    must catch (``repro check --algorithm spec-rollback --mutant
    spec-skip-undo``).
    """

    def _apply_undo(self, entry: SpecEntry) -> None:
        return
