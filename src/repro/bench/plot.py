"""ASCII line charts for figure data.

Renders a :class:`~repro.bench.figures.FigureData` panel as a terminal
plot — one marker per series, linear or log-ish y scaling — so the shapes
of the paper's figures can be eyeballed without a plotting stack:

::

    light (kops/sec)
    513.8 |        c    c    c         c
          |   c                   b
          |
          | b       b    b    b        b
          |   a
          | a  a    a    a    a        a
     22.9 +--------------------------------
            1    4    10   16   32     64
    a=fine-grained  b=coarse-grained  c=lock-free
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.bench.figures import FigureData

__all__ = ["plot_panel", "plot_figure"]

_MARKERS = "abcdefghijklmnopqrstuvwxyz"


def _scale(value: float, low: float, high: float, steps: int,
           log: bool) -> int:
    if high <= low:
        return 0
    if log:
        value = math.log10(max(value, 1e-12))
        low = math.log10(max(low, 1e-12))
        high = math.log10(max(high, 1e-12))
        if high <= low:
            return 0
    fraction = (value - low) / (high - low)
    return max(0, min(steps - 1, round(fraction * (steps - 1))))


def plot_panel(
    panel_name: str,
    series: Dict[str, List[Tuple[float, float]]],
    y_label: str,
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    log_y: bool = False,
) -> str:
    """Render one panel's series as an ASCII chart."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{panel_name}: (no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={label}")
        for x, y in pts:
            column = _scale(x, x_low, x_high, width, log_x)
            row = height - 1 - _scale(y, y_low, y_high, height, log_y)
            grid[row][column] = marker

    y_top = f"{y_high:.1f}"
    y_bottom = f"{y_low:.1f}"
    margin = max(len(y_top), len(y_bottom))
    lines = [f"{panel_name} ({y_label})"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{y_top:>{margin}} |"
        elif row_index == height - 1:
            prefix = f"{y_bottom:>{margin}} |"
        else:
            prefix = f"{'':>{margin}} |"
        lines.append(prefix + "".join(row))
    lines.append(f"{'':>{margin}} +" + "-" * width)
    x_axis = f"{x_low:g}" + " " * max(1, width - 12) + f"{x_high:g}"
    lines.append(f"{'':>{margin}}  " + x_axis)
    lines.append("  ".join(legend))
    return "\n".join(lines)


def plot_figure(figure: FigureData, log_y: bool = False) -> str:
    """Render every panel of a figure, separated by blank lines."""
    blocks = [f"== {figure.name}: {figure.title} =="]
    for panel_name, series in figure.panels.items():
        blocks.append(plot_panel(panel_name, series, figure.y_label,
                                 log_y=log_y))
        blocks.append("")
    return "\n".join(blocks)
