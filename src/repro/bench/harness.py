"""Standalone data-structure experiment (paper §7.3).

Reproduces the setup of Figs. 2-3: one scheduler process loops without
waiting over pre-created requests and inserts them into the COS; each of
``workers`` worker processes loops get / execute / remove (Algorithm 1).
Everything runs on the discrete-event simulator, so 64 workers genuinely
overlap on the virtual clock.

Throughput is measured at the workers (commands removed per virtual second)
after a warm-up phase, exactly as the paper measures "overall throughput
obtained by the worker threads".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core import make_cos
from repro.core.command import ConflictRelation, ReadWriteConflicts
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.core.effects import Work
from repro.core.runtime import EffectGen
from repro.obs.registry import MetricsRegistry
from repro.sim import (
    ExecutionProfile,
    Metrics,
    SimRuntime,
    Simulator,
    SyncCosts,
    structure_costs,
)
from repro.workload import WorkloadGenerator

__all__ = ["StandaloneConfig", "StandaloneResult", "run_standalone",
           "run_benchmark", "BENCH_BACKENDS"]


@dataclass(frozen=True)
class StandaloneConfig:
    """Parameters of one standalone run (one point of Figs. 2-3)."""

    algorithm: str
    workers: int
    profile: ExecutionProfile
    write_pct: float = 0.0
    max_size: int = DEFAULT_MAX_SIZE
    seed: int = 1
    warm_ops: int = 800
    measure_ops: int = 8_000
    max_virtual_time: float = 30.0
    sync_costs: SyncCosts = field(default_factory=SyncCosts.default)
    conflicts: Optional[ConflictRelation] = None
    #: Shard count for the "class-based" scheduler's readers/writers model.
    class_shards: int = 1
    #: Workload key parameters (see repro.workload.WorkloadGenerator):
    #: uniform or Zipf-skewed keys over ``key_space``.
    key_space: int = 10_000
    key_dist: str = "uniform"
    zipf_s: float = 0.99


@dataclass(frozen=True)
class StandaloneResult:
    """Outcome of one standalone run."""

    config: StandaloneConfig
    throughput: float          # commands per virtual second
    executed: int              # commands completed after warm-up
    virtual_time: float        # total virtual seconds simulated
    events: int                # simulator events processed

    @property
    def kops(self) -> float:
        """Throughput in kops/sec, the paper's unit."""
        return self.throughput / 1e3


#: Benchmark backends: simulator (the paper's figures), the real TCP
#: process deployment (repro.net.bench), and the multiprocess execution
#: engine (repro.par.bench).  Names are what ``run_benchmark`` dispatches
#: on; callables are imported lazily to keep sim-only runs light.
BENCH_BACKENDS = ("sim", "tcp", "mp")


def run_benchmark(backend: str, config):
    """Dispatch one benchmark run to a named backend.

    ``"sim"`` takes a :class:`StandaloneConfig` and runs on the
    discrete-event simulator; ``"tcp"`` takes a
    :class:`repro.net.bench.NetBenchConfig` and measures a real loopback
    multi-process cluster; ``"mp"`` takes a
    :class:`repro.par.bench.MpBenchConfig` and measures one replica on the
    shard-per-process engine against a wall clock.
    """
    if backend == "sim":
        return run_standalone(config)
    if backend == "tcp":
        from repro.net.bench import run_net_bench

        return run_net_bench(config)
    if backend == "mp":
        from repro.par.bench import run_mp_bench

        return run_mp_bench(config)
    raise ValueError(
        f"unknown benchmark backend {backend!r}; choose from {BENCH_BACKENDS}")


def run_standalone(config: StandaloneConfig,
                   registry: Optional[MetricsRegistry] = None,
                   ) -> StandaloneResult:
    """Simulate one configuration and return its measured throughput.

    ``registry`` optionally records the run through the unified
    observability layer (docs/observability.md): its clock is bound to the
    virtual clock and the COS structure emits occupancy/wait/restart
    metrics into it.  Instrumentation adds no simulation events, so
    results are identical with or without it.
    """
    if config.workers < 1:
        raise ValueError(f"workers must be >= 1, got {config.workers}")
    sim = Simulator()
    if registry is not None:
        registry.bind_clock(lambda: sim.now)
    runtime = SimRuntime(sim, costs=config.sync_costs)
    metrics = Metrics(sim, registry=registry)
    conflicts = config.conflicts or ReadWriteConflicts()
    classes_of = None
    if config.algorithm == "class-based":
        from repro.core import read_write_classes

        classes_of = read_write_classes(config.class_shards)
    cos = make_cos(
        config.algorithm,
        runtime,
        conflicts,
        max_size=config.max_size,
        costs=structure_costs(),
        classes_of=classes_of,
        obs=registry,
        workers=config.workers,
    )
    workload = WorkloadGenerator(config.write_pct, key_space=config.key_space,
                                 seed=config.seed, key_dist=config.key_dist,
                                 zipf_s=config.zipf_s)
    total_target = config.warm_ops + config.measure_ops
    profile = config.profile
    # The linked-list operations scan until the (uniformly random) key, so
    # execution cost is uniform in [0.5x, 1.5x] of the mean (paper §7.2);
    # the small jitter on fixed costs models OS/JIT noise.  Without this
    # variance the deterministic simulation phase-locks into unrealistically
    # collision-free lock schedules.
    exec_rng = random.Random(config.seed * 7919 + 17)

    def exec_cost() -> float:
        return profile.execute_cost * (0.5 + exec_rng.random())

    def jitter(base: float) -> float:
        return base * (0.8 + 0.4 * exec_rng.random())

    def scheduler() -> EffectGen:
        # Paper §7.3: "one thread looped without waiting interval over a
        # list of pre-created requests and invoked the insert operation".
        # Generation is outside the timed path (requests are pre-created);
        # insert_base models the per-request scheduler-side bookkeeping.
        while True:
            cmd = workload.next_command()
            yield Work(jitter(profile.insert_base))
            yield from cos.insert(cmd)

    def worker(index: int) -> EffectGen:
        while True:
            yield Work(jitter(profile.get_base))
            handle = yield from cos.get()
            yield Work(exec_cost())
            yield from cos.remove(handle)
            yield Work(jitter(profile.remove_base))
            metrics.incr("executed")
            if not metrics.warm_started and metrics.count("executed") >= config.warm_ops:
                metrics.mark_warm()

    runtime.spawn(scheduler(), "scheduler")
    for i in range(config.workers):
        runtime.spawn(worker(i), f"worker-{i}")

    sim.run(
        until=config.max_virtual_time,
        stop_when=lambda: metrics.count("executed") >= total_target,
    )
    return StandaloneResult(
        config=config,
        throughput=metrics.throughput("executed"),
        executed=metrics.warm_count("executed"),
        virtual_time=sim.now,
        events=sim.events_processed,
    )
