"""Ablation experiments for design choices the paper fixes by fiat.

The paper pins several knobs without sweeping them; these ablations test
how much each one matters:

- **Graph capacity** (paper fixes maxN = 150): the cap bounds scheduler
  look-ahead — too small starves workers, too large makes full-graph walks
  expensive for the lock-based schedulers.
- **Consensus batch size** (BFT-SMaRt batches per instance): amortizes the
  per-instance protocol cost.
- **Conflict granularity**: the paper's readers/writers relation serializes
  all writes; keyed conflicts (our KV-store extension) let disjoint writes
  run in parallel — quantifies what application knowledge buys.
- **Hand-off cost sensitivity**: how the lock-based/lock-free gap responds
  to the dominant synchronization constant of the cost model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.bench.figures import FigureData
from repro.bench.harness import StandaloneConfig, run_standalone
from repro.core.command import KeyedConflicts
from repro.sim import LIGHT, MODERATE, SyncCosts
from repro.smr.sim_cluster import SimClusterConfig, run_sim_cluster

__all__ = [
    "ablation_graph_size",
    "ablation_batch_size",
    "ablation_keyed_conflicts",
    "ablation_handoff_cost",
    "ablation_class_scheduler",
]

_ALGOS = ("coarse-grained", "fine-grained", "lock-free")


def ablation_graph_size(quick: bool = True, seed: int = 1) -> FigureData:
    """Throughput vs graph capacity (light, 10% writes, 8 workers).

    The cap bounds scheduler look-ahead: with writes in the mix, a larger
    graph buffers the reads queued behind a write barrier so they can burst
    in parallel once the write completes; a tiny graph stalls the pipeline.
    """
    sizes = (5, 50, 150, 400) if quick else (5, 10, 25, 50, 100, 150, 250, 400)
    measure = 2000 if quick else 6000
    fig = FigureData(
        name="ablation-graph-size",
        title="Throughput vs dependency-graph capacity (light, 10% writes, "
              "8 workers; paper fixes maxN=150)",
        x_label="maxN",
        y_label="kops/sec",
    )
    for algorithm in _ALGOS:
        for size in sizes:
            result = run_standalone(StandaloneConfig(
                algorithm=algorithm,
                workers=8,
                profile=LIGHT,
                write_pct=10.0,
                max_size=size,
                seed=seed,
                measure_ops=measure,
                warm_ops=measure // 10,
            ))
            fig.add_point("light", algorithm, size, result.kops)
    return fig


def ablation_batch_size(quick: bool = True, seed: int = 1) -> FigureData:
    """SMR throughput vs consensus batch size (lock-free, light)."""
    batches = (1, 4, 16, 64) if quick else (1, 2, 4, 8, 16, 32, 64, 128)
    measure = 2000 if quick else 5000
    fig = FigureData(
        name="ablation-batch-size",
        title="SMR throughput vs consensus batch size (lock-free, light, "
              "8 workers)",
        x_label="batch",
        y_label="kops/sec",
    )
    for batch in batches:
        result = run_sim_cluster(SimClusterConfig(
            algorithm="lock-free",
            workers=8,
            profile=LIGHT,
            batch_size=batch,
            seed=seed,
            measure_ops=measure,
            warm_ops=measure // 10,
        ))
        fig.add_point("light", "lock-free, 8 workers", batch, result.kops)
    return fig


def ablation_keyed_conflicts(quick: bool = True, seed: int = 1) -> FigureData:
    """Readers/writers vs keyed conflicts as the write share grows.

    With keyed conflicts, two writes on different keys stay independent, so
    throughput degrades far more slowly with the write percentage.
    """
    writes = (0, 10, 25, 50, 100) if quick else (0, 1, 5, 10, 15, 20, 25, 50, 100)
    measure = 2000 if quick else 5000
    fig = FigureData(
        name="ablation-keyed-conflicts",
        title="Lock-free throughput vs write %: readers/writers conflicts "
              "(paper) against keyed conflicts (moderate, 16 workers)",
        x_label="write %",
        y_label="kops/sec",
    )
    for label, conflicts in (
        ("readers-writers", None),               # harness default
        ("keyed (1k keys)", KeyedConflicts()),
    ):
        for write_pct in writes:
            result = run_standalone(StandaloneConfig(
                algorithm="lock-free",
                workers=16,
                profile=MODERATE,
                write_pct=float(write_pct),
                seed=seed,
                measure_ops=measure,
                warm_ops=measure // 10,
                conflicts=conflicts,
            ))
            fig.add_point("moderate", label, write_pct, result.kops)
    return fig


def ablation_handoff_cost(quick: bool = True, seed: int = 1) -> FigureData:
    """Sensitivity of each algorithm to the thread hand-off cost."""
    handoffs_us = (0.3, 0.9, 2.7) if quick else (0.1, 0.3, 0.9, 1.8, 2.7, 5.4)
    measure = 2000 if quick else 5000
    fig = FigureData(
        name="ablation-handoff",
        title="Throughput vs contended hand-off latency (light, 0% writes, "
              "16 workers)",
        x_label="handoff us",
        y_label="kops/sec",
    )
    for algorithm in _ALGOS:
        for handoff in handoffs_us:
            costs = replace(SyncCosts.default(), handoff=handoff * 1e-6)
            result = run_standalone(StandaloneConfig(
                algorithm=algorithm,
                workers=16,
                profile=LIGHT,
                seed=seed,
                measure_ops=measure,
                warm_ops=measure // 10,
                sync_costs=costs,
            ))
            fig.add_point("light", algorithm, handoff, result.kops)
    return fig


def ablation_class_scheduler(quick: bool = True, seed: int = 1) -> FigureData:
    """Class-based (early) scheduling vs the lock-free DAG.

    Class scheduling inserts in O(#classes) — no graph walk — but commands
    sharing a class serialize even when they commute.  With one shard the
    readers/writers workload fully serializes; with more shards reads
    parallelize again while writes must synchronize all shard queues.
    """
    writes = (0, 10, 25, 100) if quick else (0, 1, 5, 10, 15, 25, 50, 100)
    measure = 2000 if quick else 5000
    fig = FigureData(
        name="ablation-class-scheduler",
        title="Lock-free DAG vs class-based scheduling (light, 8 workers)",
        x_label="write %",
        y_label="kops/sec",
    )
    variants = (
        ("lock-free DAG", "lock-free", 1),
        ("class-based, 1 shard", "class-based", 1),
        ("class-based, 16 shards", "class-based", 16),
    )
    for label, algorithm, shards in variants:
        for write_pct in writes:
            result = run_standalone(StandaloneConfig(
                algorithm=algorithm,
                workers=8,
                profile=LIGHT,
                write_pct=float(write_pct),
                seed=seed,
                measure_ops=measure,
                warm_ops=measure // 10,
                class_shards=shards,
            ))
            fig.add_point("light", label, write_pct, result.kops)
    return fig
