"""Export figure data to CSV for external plotting.

The ASCII tables of :mod:`repro.bench.report` are good for eyeballing;
this module writes the same series in long-format CSV
(``panel,series,x,y``) so gnuplot/pandas/spreadsheets can reproduce the
paper's plots visually.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Union

from repro.bench.figures import FigureData

__all__ = ["figure_to_csv", "write_figure_csv"]


def figure_to_csv(figure: FigureData) -> str:
    """Render a figure's points as long-format CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["panel", "series", figure.x_label, figure.y_label])
    for panel, series in figure.panels.items():
        for label, points in series.items():
            for x, y in points:
                writer.writerow([panel, label, x, y])
    return buffer.getvalue()


def write_figure_csv(figure: FigureData,
                     directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<directory>/<figure.name>.csv``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{figure.name}.csv"
    path.write_text(figure_to_csv(figure))
    return path
