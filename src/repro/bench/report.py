"""ASCII reporting for figure data.

Prints each figure as one table per panel — the same rows/series the paper
plots — so results can be compared against the paper and recorded in
EXPERIMENTS.md without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures import FigureData

__all__ = ["format_figure", "print_figure"]


def _format_panel(panel_name: str, series: Dict[str, List[Tuple[float, float]]],
                  x_label: str, y_label: str) -> List[str]:
    labels = list(series)
    xs = sorted({x for points in series.values() for x, _ in points})
    by_series = {
        label: {x: y for x, y in points} for label, points in series.items()
    }
    width = max(12, max(len(label) for label in labels) + 2)
    lines = [f"--- {panel_name} ({y_label}) ---"]
    header = f"{x_label:>{width}} " + " ".join(f"{x:>9g}" for x in xs)
    lines.append(header)
    for label in labels:
        cells = []
        for x in xs:
            y = by_series[label].get(x)
            cells.append(f"{y:9.1f}" if y is not None else " " * 9)
        lines.append(f"{label:>{width}} " + " ".join(cells))
    return lines


def _format_scatter(panel_name: str,
                    series: Dict[str, List[Tuple[float, float]]],
                    x_label: str, y_label: str) -> List[str]:
    lines = [f"--- {panel_name} ({x_label} vs {y_label}) ---"]
    for label, points in series.items():
        lines.append(f"  {label}:")
        for x, y in points:
            lines.append(f"    {x:9.1f}  ->  {y:8.2f}")
    return lines


def format_figure(figure: FigureData) -> str:
    """Render a figure's panels as aligned ASCII tables."""
    lines = [f"== {figure.name}: {figure.title} =="]
    scatter = figure.name == "fig6"  # latency-throughput curves
    for panel_name, series in figure.panels.items():
        if scatter:
            lines.extend(
                _format_scatter(panel_name, series, figure.x_label, figure.y_label)
            )
        else:
            lines.extend(
                _format_panel(panel_name, series, figure.x_label, figure.y_label)
            )
        lines.append("")
    return "\n".join(lines)


def print_figure(figure: FigureData) -> None:
    print(format_figure(figure))
