"""Benchmark harnesses regenerating the paper's figures and ablations."""

from repro.bench.ablations import (
    ablation_batch_size,
    ablation_class_scheduler,
    ablation_graph_size,
    ablation_handoff_cost,
    ablation_keyed_conflicts,
)
from repro.bench.figures import (
    ALGORITHMS,
    WORKER_COUNTS,
    WRITE_PCTS,
    FigureData,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    quick_mode_default,
)
from repro.bench.artifact import (bench_environment, figure_payload,
                                  write_bench_json)
from repro.bench.harness import (BENCH_BACKENDS, StandaloneConfig,
                                 StandaloneResult, run_benchmark,
                                 run_standalone)
from repro.bench.export import figure_to_csv, write_figure_csv
from repro.bench.plot import plot_figure, plot_panel
from repro.bench.report import format_figure, print_figure

__all__ = [
    "BENCH_BACKENDS",
    "bench_environment",
    "figure_payload",
    "write_bench_json",
    "StandaloneConfig",
    "StandaloneResult",
    "run_benchmark",
    "run_standalone",
    "FigureData",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "quick_mode_default",
    "ALGORITHMS",
    "WORKER_COUNTS",
    "WRITE_PCTS",
    "format_figure",
    "figure_to_csv",
    "plot_figure",
    "plot_panel",
    "write_figure_csv",
    "print_figure",
    "ablation_graph_size",
    "ablation_batch_size",
    "ablation_keyed_conflicts",
    "ablation_handoff_cost",
    "ablation_class_scheduler",
]
