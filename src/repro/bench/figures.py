"""Experiment definitions, one per figure of the paper's evaluation (§7).

Each ``figureN`` function sweeps the same parameter grid as the paper and
returns a :class:`FigureData` of labelled series.  ``quick=True`` trims the
grid and the per-point op counts so the whole suite runs in seconds; the
full grid reproduces every point of the paper's x-axes.

The paper's evaluation contains no numeric tables — Figs. 2-6 are the
complete set of results to regenerate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import StandaloneConfig, run_standalone
from repro.sim import HEAVY, LIGHT, MODERATE, ExecutionProfile
from repro.smr.sim_cluster import SimClusterConfig, run_sim_cluster

__all__ = [
    "FigureData",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "WORKER_COUNTS",
    "WRITE_PCTS",
    "ALGORITHMS",
    "quick_mode_default",
]

#: Paper x-axes.
WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4, 6, 8, 10, 12, 16, 24, 32, 40, 48, 56, 64)
WRITE_PCTS: Tuple[float, ...] = (0, 1, 5, 10, 15, 20, 25, 50, 100)
ALGORITHMS: Tuple[str, ...] = ("coarse-grained", "fine-grained", "lock-free")
PROFILES: Tuple[ExecutionProfile, ...] = (LIGHT, MODERATE, HEAVY)

_QUICK_WORKERS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
_QUICK_WRITES: Tuple[float, ...] = (0, 5, 15, 25, 50, 100)
_QUICK_CLIENTS: Tuple[int, ...] = (5, 20, 60, 120, 200)
_FULL_CLIENTS: Tuple[int, ...] = (2, 5, 10, 20, 40, 60, 80, 120, 160, 200)


def quick_mode_default() -> bool:
    """Quick mode unless REPRO_BENCH_FULL is set in the environment."""
    return not os.environ.get("REPRO_BENCH_FULL")


@dataclass
class FigureData:
    """Labelled series for one figure.

    ``panels`` maps a panel name (e.g. ``"light"``) to series; each series
    maps a label (e.g. ``"lock-free"``) to ``(x, y)`` points.  ``x_label``
    and ``y_label`` describe the axes for reporting.
    """

    name: str
    title: str
    x_label: str
    y_label: str
    panels: Dict[str, Dict[str, List[Tuple[float, float]]]] = dataclass_field(
        default_factory=dict
    )

    def add_point(self, panel: str, series: str, x: float, y: float) -> None:
        self.panels.setdefault(panel, {}).setdefault(series, []).append((x, y))

    def best_x(self, panel: str, series: str) -> float:
        """The x with maximal y for a series (paper's "best performing")."""
        points = self.panels[panel][series]
        return max(points, key=lambda point: point[1])[0]


def _ops(quick: bool, measure: int, warm: int) -> Tuple[int, int]:
    if quick:
        return max(measure // 3, 600), max(warm // 3, 100)
    return measure, warm


# ------------------------------------------------------------------ figure 2


def figure2(quick: bool = None, seed: int = 1) -> FigureData:
    """Fig. 2: standalone throughput vs number of workers, 0% writes."""
    quick = quick_mode_default() if quick is None else quick
    workers = _QUICK_WORKERS if quick else WORKER_COUNTS
    measure, warm = _ops(quick, 6000, 600)
    fig = FigureData(
        name="fig2",
        title="Standalone throughput for different execution costs and "
              "number of workers (0% writes)",
        x_label="workers",
        y_label="kops/sec",
    )
    for profile in PROFILES:
        for algorithm in ALGORITHMS:
            for count in workers:
                result = run_standalone(StandaloneConfig(
                    algorithm=algorithm,
                    workers=count,
                    profile=profile,
                    write_pct=0.0,
                    seed=seed,
                    measure_ops=measure,
                    warm_ops=warm,
                ))
                fig.add_point(profile.name, algorithm, count, result.kops)
    return fig


# ------------------------------------------------------------------ figure 3


def figure3(quick: bool = None, seed: int = 1,
            fig2: FigureData = None) -> FigureData:
    """Fig. 3: standalone throughput vs write percentage.

    Uses each technique's best worker count from Fig. 2, exactly as the
    paper does ("we picked for each technique the best performing number
    of threads", §7.3.2).
    """
    quick = quick_mode_default() if quick is None else quick
    writes = _QUICK_WRITES if quick else WRITE_PCTS
    measure, warm = _ops(quick, 5000, 500)
    if fig2 is None:
        fig2 = figure2(quick=quick, seed=seed)
    fig = FigureData(
        name="fig3",
        title="Standalone throughput for different percentage of writes "
              "and execution costs",
        x_label="write %",
        y_label="kops/sec",
    )
    for profile in PROFILES:
        for algorithm in ALGORITHMS:
            best_workers = int(fig2.best_x(profile.name, algorithm))
            label = f"{algorithm}, {best_workers} workers"
            for write_pct in writes:
                result = run_standalone(StandaloneConfig(
                    algorithm=algorithm,
                    workers=best_workers,
                    profile=profile,
                    write_pct=float(write_pct),
                    seed=seed,
                    measure_ops=measure,
                    warm_ops=warm,
                ))
                fig.add_point(profile.name, label, write_pct, result.kops)
    return fig


# ------------------------------------------------------------------ figure 4


def figure4(quick: bool = None, seed: int = 1) -> FigureData:
    """Fig. 4: SMR throughput vs number of workers, 0% writes,
    including the sequential-SMR baseline."""
    quick = quick_mode_default() if quick is None else quick
    workers = _QUICK_WORKERS if quick else WORKER_COUNTS
    measure, warm = _ops(quick, 5000, 500)
    fig = FigureData(
        name="fig4",
        title="SMR throughput for different execution costs and number of "
              "workers (0% writes)",
        x_label="workers",
        y_label="kops/sec",
    )
    for profile in PROFILES:
        for algorithm in ALGORITHMS:
            for count in workers:
                result = run_sim_cluster(SimClusterConfig(
                    algorithm=algorithm,
                    workers=count,
                    profile=profile,
                    write_pct=0.0,
                    seed=seed,
                    measure_ops=measure,
                    warm_ops=warm,
                ))
                fig.add_point(profile.name, algorithm, count, result.kops)
        sequential = run_sim_cluster(SimClusterConfig(
            algorithm="sequential",
            workers=1,
            profile=profile,
            write_pct=0.0,
            seed=seed,
            measure_ops=measure,
            warm_ops=warm,
        ))
        for count in workers:  # flat reference line, as in the paper
            fig.add_point(profile.name, "sequential SMR", count, sequential.kops)
    return fig


# ------------------------------------------------------------------ figure 5


def figure5(quick: bool = None, seed: int = 1,
            fig4: FigureData = None) -> FigureData:
    """Fig. 5: SMR throughput vs write percentage, including sequential SMR.

    The paper's headline here is the crossover: sequential SMR overtakes
    the parallel techniques around >= 25% writes for light/moderate costs.
    """
    quick = quick_mode_default() if quick is None else quick
    writes = _QUICK_WRITES if quick else WRITE_PCTS
    measure, warm = _ops(quick, 4000, 400)
    if fig4 is None:
        fig4 = figure4(quick=quick, seed=seed)
    fig = FigureData(
        name="fig5",
        title="SMR throughput for different percentage of writes and "
              "execution costs",
        x_label="write %",
        y_label="kops/sec",
    )
    for profile in PROFILES:
        for algorithm in ALGORITHMS:
            best_workers = int(fig4.best_x(profile.name, algorithm))
            label = f"{algorithm}, {best_workers} workers"
            for write_pct in writes:
                result = run_sim_cluster(SimClusterConfig(
                    algorithm=algorithm,
                    workers=best_workers,
                    profile=profile,
                    write_pct=float(write_pct),
                    seed=seed,
                    measure_ops=measure,
                    warm_ops=warm,
                ))
                fig.add_point(profile.name, label, write_pct, result.kops)
        for write_pct in writes:
            result = run_sim_cluster(SimClusterConfig(
                algorithm="sequential",
                workers=1,
                profile=profile,
                write_pct=float(write_pct),
                seed=seed,
                measure_ops=measure,
                warm_ops=warm,
            ))
            fig.add_point(profile.name, "sequential SMR", write_pct, result.kops)
    return fig


# ------------------------------------------------------------------ figure 6


def figure6(quick: bool = None, seed: int = 1) -> FigureData:
    """Fig. 6: latency vs throughput, moderate cost, 5% and 10% writes.

    Load is varied through the number of closed-loop clients; each point is
    (throughput kops/s, mean client latency ms).  Worker counts follow the
    paper's Fig. 6 captions (sequential, fine 6, coarse 12, lock-free 32).
    """
    quick = quick_mode_default() if quick is None else quick
    clients = _QUICK_CLIENTS if quick else _FULL_CLIENTS
    measure, warm = _ops(quick, 4000, 400)
    configured = (
        ("sequential SMR", "sequential", 1),
        ("fine-grained, 6 workers", "fine-grained", 6),
        ("coarse-grained, 12 workers", "coarse-grained", 12),
        ("lock-free, 32 workers", "lock-free", 32),
    )
    fig = FigureData(
        name="fig6",
        title="Latency versus throughput for moderate cost",
        x_label="throughput kops/sec",
        y_label="latency ms",
    )
    for write_pct in (5.0, 10.0):
        panel = f"{int(write_pct)}% writes"
        for label, algorithm, workers in configured:
            for n_clients in clients:
                result = run_sim_cluster(SimClusterConfig(
                    algorithm=algorithm,
                    workers=workers,
                    profile=MODERATE,
                    write_pct=write_pct,
                    n_clients=n_clients,
                    seed=seed,
                    measure_ops=measure,
                    warm_ops=warm,
                ))
                fig.add_point(panel, label, result.kops, result.latency_ms)
    return fig
