"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

The ASCII tables under ``benchmarks/results/*.txt`` are for humans; the
``BENCH_<name>.json`` files written next to them are for tooling —
regression tracking, plotting, cross-run comparison.  Every artifact
carries provenance (git SHA, python version, CPU count, ``PYTHONHASHSEED``)
so a number can always be traced back to the code and machine that
produced it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Optional

__all__ = ["bench_environment", "figure_payload", "write_bench_json"]


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def bench_environment() -> Dict[str, Any]:
    """Provenance block stamped into every artifact."""
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "pythonhashseed": os.environ.get("PYTHONHASHSEED", ""),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "argv": sys.argv,
    }


def _jsonable(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    return value


def figure_payload(figure: Any) -> Dict[str, Any]:
    """A :class:`~repro.bench.figures.FigureData` as plain JSON data."""
    return {
        "name": figure.name,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "panels": {
            panel: {
                series: [[x, y] for x, y in points]
                for series, points in series_map.items()
            }
            for panel, series_map in figure.panels.items()
        },
    }


def write_bench_json(name: str, payload: Any, directory: str,
                     config: Optional[Any] = None) -> str:
    """Write ``<directory>/BENCH_<name>.json`` and return its path.

    ``payload`` is the measurement (a dict, or a dataclass/object with
    ``to_json``); ``config`` optionally records the run parameters when
    the payload doesn't already embed them.
    """
    if hasattr(payload, "to_json"):
        payload = payload.to_json()
    document = {
        "bench": name,
        "environment": bench_environment(),
        "result": _jsonable(payload),
    }
    if config is not None:
        document["config"] = _jsonable(config)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, default=repr)
        handle.write("\n")
    return path
