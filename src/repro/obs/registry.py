"""Metrics registry: counters, gauges, log-bucketed histograms, spans.

The registry is runtime-agnostic: it takes a ``clock`` callable, so the
same instrument code records wall time on the threaded/TCP paths and
virtual time on the discrete-event simulator.  Histogram buckets are a
*fixed* log-spaced ladder (:func:`log_spaced_buckets`) — not adaptive —
so histograms from different substrates and different processes aggregate
bucket-for-bucket.

Series are identified by a name plus optional labels, rendered
Prometheus-style (``net_outbox_depth{peer="2"}``).  Instrument handles are
cached by the caller once and then updated lock-cheap on hot paths;
:data:`NULL_REGISTRY` hands out shared no-op instruments so disabled
instrumentation costs one attribute check.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.obs.spans import NULL_SPAN_LOG, NullSpanLog, SpanLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "log_spaced_buckets",
]


def log_spaced_buckets(low: float = 1e-6, high: float = 100.0,
                       per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds covering [low, high].

    ``per_decade`` bounds per factor of 10, e.g. the default ladder is
    1us, ~2.2us, ~4.6us, 10us, ... 100s (25 bounds).  Bounds are computed
    from integer exponents so every process derives the identical ladder.
    """
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    import math

    first = round(math.log10(low) * per_decade)
    last = round(math.log10(high) * per_decade)
    return tuple(10.0 ** (step / per_decade)
                 for step in range(first, last + 1))


#: The ladder every histogram uses unless told otherwise: 1us .. 100s,
#: three buckets per decade, plus the implicit +Inf overflow bucket.
DEFAULT_BUCKETS = log_spaced_buckets()


class Counter:
    """Monotonically increasing value (int or float amounts)."""

    kind = "counter"
    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """Value that can go up and down (queue depths, occupancy)."""

    kind = "gauge"
    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Fixed-bucket histogram with count/sum and quantile estimation."""

    kind = "histogram"
    __slots__ = ("name", "_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or any(b <= a for a, b in zip(buckets, buckets[1:])):
            raise ValueError("buckets must be strictly increasing, non-empty")
        self.name = name
        self._lock = threading.Lock()
        self._bounds = tuple(buckets)
        # counts[i] observes values <= bounds[i] (and > bounds[i-1]);
        # the final slot is the +Inf overflow bucket.
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0.0 when empty).

        Exact to within one bucket's width — the resolution the fixed
        log ladder gives up in exchange for mergeable histograms.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower = 0.0 if index == 0 else self._bounds[index - 1]
            if index >= len(self._bounds):
                return self._bounds[-1]  # overflow bucket: clamp
            upper = self._bounds[index]
            if cumulative + bucket_count >= target:
                within = max(0.0, target - cumulative)
                return lower + (upper - lower) * (within / bucket_count)
            cumulative += bucket_count
        return self._bounds[-1]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            return {
                "kind": self.kind,
                "count": self._count,
                "sum": self._sum,
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(self._bounds, counts)
                ] + [{"le": "+Inf", "count": counts[-1]}],
            }


def _series_key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named instruments plus the span log, behind one clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 trace: bool = False, trace_capacity: int = 200_000):
        self.clock = clock
        self._lock = threading.Lock()
        self._series: Dict[str, Any] = {}
        self.spans = (SpanLog(lambda: self.clock(), capacity=trace_capacity)
                      if trace else NULL_SPAN_LOG)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Re-point the clock (e.g. at a simulator's virtual time)."""
        self.clock = clock

    # ----------------------------------------------------------- instruments

    def _get(self, cls: type, name: str, labels: Dict[str, Any],
             *args: Any) -> Any:
        key = _series_key(name, labels)
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                instrument = cls(key, *args)
                self._series[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"series {key!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}")
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, buckets)

    def span(self, uid: Hashable, stage: str,
             at: Optional[float] = None) -> None:
        self.spans.record(uid, stage, at)

    # ------------------------------------------------------------- reporting

    def series(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every series, keyed by full series name."""
        with self._lock:
            instruments = dict(self._series)
        return {key: instruments[key].snapshot()
                for key in sorted(instruments)}


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    kind = "null"
    name = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0
    bounds: Tuple[float, ...] = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind}


_NULL_INSTRUMENT = _NullInstrument()


def _zero_clock() -> float:
    return 0.0


class NullRegistry(MetricsRegistry):
    """Disabled registry: every instrument is the shared no-op singleton.

    Instrumented code guards hot paths with ``registry.enabled``; even
    unguarded calls cost one method dispatch and allocate nothing.
    """

    enabled = False

    def __init__(self) -> None:
        self.clock = _zero_clock
        self.spans = NULL_SPAN_LOG

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def span(self, uid: Hashable, stage: str,
             at: Optional[float] = None) -> None:
        pass

    def series(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {}


NULL_REGISTRY = NullRegistry()
