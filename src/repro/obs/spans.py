"""Per-command trace spans.

A command's life at a replica passes through fixed stages::

    delivered -> scheduled -> ready -> executing -> responded

- ``delivered``: the atomic-broadcast delivery callback saw the command;
- ``scheduled``: the scheduler finished inserting it into the COS;
- ``ready``: the COS declared it free of pending conflicting predecessors;
- ``executing``: a worker picked it up and is about to run it;
- ``responded``: the response callback fired.

Client-side traces reuse the same machinery with the ``submitted`` /
``responded`` pair.  Events are keyed by :func:`span_key` — the stable
``(client_id, request_id)`` identity when the command carries one, the
process-local ``uid`` otherwise — and timestamped with the owning
registry's clock (wall time on threads, virtual time on the simulator),
so stage-to-stage deltas are directly comparable across substrates and
joinable across processes.

The log is bounded (drop-oldest) so a long-running replica with tracing
enabled cannot grow without limit.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

__all__ = ["SPAN_STAGES", "SpanLog", "NullSpanLog", "NULL_SPAN_LOG",
           "span_key"]

#: Replica-side stage vocabulary, in causal order.
SPAN_STAGES = ("delivered", "scheduled", "ready", "executing", "responded")

#: Default event capacity of one span log (drop-oldest beyond this).
DEFAULT_CAPACITY = 200_000


def span_key(cmd) -> Hashable:
    """Stable trace key for a command.

    ``Command.uid`` is minted by a process-local counter, so two client
    processes (or a client and a replica re-creating commands off the
    wire) can stamp *different* commands with the *same* uid — their
    spans would silently merge into one bogus trace.  Commands that
    carry a client identity are keyed by ``client_id#request_id``,
    which survives serialization and is unique cluster-wide; locally
    minted commands (benchmarks, unit tests) fall back to ``uid``.
    """
    if cmd.client_id is not None:
        return f"{cmd.client_id}#{cmd.request_id}"
    return cmd.uid


class SpanLog:
    """Bounded, thread-safe log of ``(key, stage, timestamp)`` events."""

    enabled = True

    def __init__(self, clock: Callable[[], float],
                 capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._clock = clock
        self._lock = threading.Lock()
        self._events: Deque[Tuple[Hashable, str, float]] = deque(maxlen=capacity)

    def record(self, uid: Hashable, stage: str,
               at: Optional[float] = None) -> None:
        if at is None:
            at = self._clock()
        with self._lock:
            self._events.append((uid, stage, at))

    # ------------------------------------------------------------ reporting

    def events(self) -> List[Tuple[Hashable, str, float]]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def spans(self) -> Dict[Hashable, Dict[str, float]]:
        """key -> {stage: first timestamp}; partial spans included."""
        out: Dict[Hashable, Dict[str, float]] = {}
        for uid, stage, at in self.events():
            stages = out.setdefault(uid, {})
            stages.setdefault(stage, at)
        return out

    def durations(self, start: str, end: str) -> List[float]:
        """All ``end - start`` deltas for commands that reached both stages."""
        deltas = []
        for stages in self.spans().values():
            if start in stages and end in stages:
                deltas.append(stages[end] - stages[start])
        return deltas

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per event; returns the event count."""
        events = self.events()
        with open(path, "w") as handle:
            for uid, stage, at in events:
                handle.write(json.dumps(
                    {"uid": uid, "stage": stage, "t": at}) + "\n")
        return len(events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class NullSpanLog:
    """Disabled span log: ``record`` is a no-op, reporting is empty."""

    enabled = False

    def record(self, uid: Hashable, stage: str,
               at: Optional[float] = None) -> None:
        pass

    def events(self) -> List[Tuple[Hashable, str, float]]:
        return []

    def __len__(self) -> int:
        return 0

    def spans(self) -> Dict[Hashable, Dict[str, float]]:
        return {}

    def durations(self, start: str, end: str) -> List[float]:
        return []

    def write_jsonl(self, path: str) -> int:
        return 0

    def clear(self) -> None:
        pass


NULL_SPAN_LOG = NullSpanLog()
