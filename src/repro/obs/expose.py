"""Exposition: Prometheus-style text, an HTTP endpoint, JSON snapshots.

- :func:`render_text` serializes a registry in the Prometheus text format
  (counters get a ``_total``-as-written name, histograms expand into
  cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series);
- :class:`MetricsHTTPServer` serves ``GET /metrics`` (text) and
  ``GET /metrics.json`` (snapshot) from a daemon thread;
- :class:`SnapshotWriter` writes the JSON snapshot to a file on a fixed
  cadence (atomic rename, so scrapers never read a torn file).
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_text", "MetricsHTTPServer", "SnapshotWriter"]


def _split_series(key: str) -> Tuple[str, str]:
    """``name{labels}`` -> (name, ``{labels}`` or ``""``)."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def _merge_labels(labels: str, extra: str) -> str:
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def render_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every series in the registry."""
    lines = []
    with registry._lock:
        instruments = dict(registry._series)
    for key in sorted(instruments):
        instrument = instruments[key]
        name, labels = _split_series(key)
        if isinstance(instrument, (Counter, Gauge)):
            lines.append(f"# TYPE {name} {instrument.kind}")
            lines.append(f"{key} {instrument.value}")
        elif isinstance(instrument, Histogram):
            snap = instrument.snapshot()
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bucket in snap["buckets"]:
                cumulative += bucket["count"]
                le = bucket["le"]
                le_text = le if isinstance(le, str) else format(le, ".6g")
                series = _merge_labels(labels, f'le="{le_text}"')
                lines.append(f"{name}_bucket{series} {cumulative}")
            lines.append(f"{name}_sum{labels} {snap['sum']}")
            lines.append(f"{name}_count{labels} {snap['count']}")
    return "\n".join(lines) + "\n"


class MetricsHTTPServer:
    """Serves one registry over HTTP from a daemon thread."""

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 0):
        self._registry = registry
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path in ("/metrics", "/"):
                    body = render_text(outer._registry).encode()
                    content_type = "text/plain; version=0.0.4"
                elif self.path == "/metrics.json":
                    body = json.dumps(outer._registry.snapshot(),
                                      indent=2).encode()
                    content_type = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are not stdout events

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"metrics-http-{self._server.server_address[1]}",
            daemon=True,
        )

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "MetricsHTTPServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)


class SnapshotWriter:
    """Periodically dumps ``registry.snapshot()`` to a JSON file."""

    def __init__(self, registry: MetricsRegistry, path: str,
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._registry = registry
        self._path = path
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="metrics-snapshot", daemon=True)

    def _write_once(self) -> None:
        tmp = f"{self._path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(self._registry.snapshot(), handle, indent=2)
        os.replace(tmp, self._path)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._write_once()
            except OSError:
                pass  # target directory vanished; keep trying
        try:
            self._write_once()  # final flush on stop
        except OSError:
            pass

    def start(self) -> "SnapshotWriter":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)
