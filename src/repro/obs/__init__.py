"""Unified observability layer (docs/observability.md).

One runtime-agnostic metrics registry serves every execution substrate in
the repository: the threaded replica, the TCP deployment, and the
discrete-event simulator.  The registry holds three instrument kinds —
counters, gauges, and histograms with *fixed log-spaced buckets* — so a
threaded run and a simulated run of the same workload aggregate into
byte-identical series layouts and can be compared directly.

Per-command trace spans (``delivered -> scheduled -> ready -> executing ->
responded``) ride on the same registry: any instrumented component calls
``registry.span(span_key(cmd), stage)`` and a tracing run collects them
into a span
log that reconstructs the per-stage latency breakdown of a command's life,
the instrumentation style of the early-scheduling / parallel-SMR
measurement literature.

Everything is **zero-cost when disabled**: the default hand-out is
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons, and
instrumented hot paths guard on ``registry.enabled``.  Crucially, the
instrumentation never adds or removes *effects* in the COS generators, so
a discrete-event simulation produces bit-identical schedules with
observability on or off (pinned by tests/test_obs.py).
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    log_spaced_buckets,
)
from repro.obs.spans import (
    NULL_SPAN_LOG,
    SPAN_STAGES,
    NullSpanLog,
    SpanLog,
    span_key,
)
from repro.obs.expose import MetricsHTTPServer, SnapshotWriter, render_text
from repro.obs.stats import quantile

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "log_spaced_buckets",
    "SpanLog",
    "NullSpanLog",
    "NULL_SPAN_LOG",
    "SPAN_STAGES",
    "span_key",
    "MetricsHTTPServer",
    "SnapshotWriter",
    "render_text",
    "quantile",
]
