"""Shared quantile helpers for every measurement path.

Both the simulator's :class:`~repro.sim.metrics.Metrics` and the TCP
benchmark used to index ``ordered[int(q * n)]``, which returns the upper
middle element as the median for even ``n`` and degenerates to the minimum
for small samples (``int(n * 0.99) == 0`` whenever ``n <= 100`` gives
p99 == min for n < 100/99 bins — verified by the regression tests).  This
module is the single correct implementation they now share.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["quantile", "median"]


def quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending-sorted sample.

    Uses the *inclusive* method (``h = (n - 1) * q``), the same convention
    as ``statistics.quantiles(..., method="inclusive")`` and numpy's
    default — the sample extremes are the 0.0 and 1.0 quantiles and
    interior quantiles interpolate between adjacent order statistics.
    Returns 0.0 for an empty sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    n = len(ordered)
    if n == 0:
        return 0.0
    if n == 1:
        return ordered[0]
    h = (n - 1) * q
    lo = math.floor(h)
    hi = min(lo + 1, n - 1)
    return ordered[lo] + (h - lo) * (ordered[hi] - ordered[lo])


def median(ordered: Sequence[float]) -> float:
    """Median of an ascending-sorted sample (mean of middles for even n)."""
    return quantile(ordered, 0.5)
