"""Exception hierarchy for the :mod:`repro` library.

Every exception raised by the library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class ProtocolError(ReproError):
    """A distributed-protocol invariant was violated (bug or bad message)."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class SchedulerError(ReproError):
    """A COS scheduler invariant was violated."""


class CheckViolation(ReproError):
    """The schedule-space model checker observed a COS specification
    violation (see :mod:`repro.check`).

    Attributes:
        kind: Machine-readable violation class (``"double-get"``,
            ``"conflict-order"``, ``"bounded-size"``, ``"graph-leak"``,
            ``"deadlock"``, ``"lost-command"``, ``"invalid-remove"``,
            ``"crash"``).
    """

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


class ShutdownError(ReproError):
    """An operation was attempted on a component that has been shut down."""


class SpeculationError(ReproError):
    """The optimistic execution pipeline (:mod:`repro.spec`) was misused.

    Raised when a conservative confirmation is applied while speculative
    executions are still in flight (the engine requires a drained pipeline
    so undo records exist for every uncommitted entry), or when a replica's
    speculative drain times out.
    """


class ShardError(ReproError):
    """The multiprocess execution engine (:mod:`repro.par`) failed.

    Raised when a shard worker process reports an execution error, stops
    answering, or dies.  The engine is fail-stop: after a shard crash every
    subsequent dispatch raises :class:`ShardCrashed`, and recovery happens
    at the replica level (checkpoint transfer from a peer), matching the
    crash model of the rest of the system.
    """


class ShardCrashed(ShardError):
    """A shard worker process died or timed out; the engine is down."""
