"""Counterexample minimization.

A raw counterexample from the explorer is a decision sequence hundreds of
steps long, most of it irrelevant prefix scheduling.  The shrinker reduces
it with two passes, re-running each candidate (non-strict replay: decisions
that no longer apply fall back to the first runnable process, and the
schedule is completed with that same default policy) and keeping it only if
the *same violation kind* still occurs:

1. **Chunk deletion** (ddmin-style): drop halves, quarters, ... of the
   decision list.
2. **Context-switch coalescing**: rewrite isolated decisions to extend the
   previous process's run, since a minimal concurrency bug usually needs
   only a couple of preemptions.

The minimized run's *actual* executed trace (which non-strict replay may
have altered) is re-recorded, so the result replays strictly and
deterministically to the same violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.check.harness import CheckConfig, CheckExecution, run_with_decisions
from repro.check.oracle import Violation

__all__ = ["ShrinkResult", "shrink"]


@dataclass
class ShrinkResult:
    """A minimized, strictly-replayable counterexample."""

    decisions: List[str]
    violation: Violation
    candidates_tried: int

    @property
    def context_switches(self) -> int:
        return sum(1 for i in range(1, len(self.decisions))
                   if self.decisions[i] != self.decisions[i - 1])


def _outcome(exe: CheckExecution) -> Optional[Violation]:
    if exe.violation is not None:
        return exe.violation
    if exe.runnable():
        return None  # ran out of step budget: treat as no repro
    return exe.terminal_violation()


def shrink(
    config: CheckConfig,
    decisions: List[str],
    violation: Violation,
    *,
    max_candidates: int = 400,
    max_steps: int = 50_000,
) -> ShrinkResult:
    """Minimize ``decisions`` while preserving ``violation.kind``."""
    tried = 0

    def attempt(candidate: List[str]) -> Optional[CheckExecution]:
        nonlocal tried
        tried += 1
        exe = run_with_decisions(config, candidate, strict=False,
                                 max_steps=max_steps)
        found = _outcome(exe)
        if found is not None and found.kind == violation.kind:
            exe.violation = found
            return exe
        return None

    best = list(decisions)
    best_violation = violation

    # Pass 1: ddmin-style chunk deletion, halving granularity.
    chunk = max(len(best) // 2, 1)
    while chunk >= 1 and tried < max_candidates:
        start = 0
        while start < len(best) and tried < max_candidates:
            candidate = best[:start] + best[start + chunk:]
            exe = attempt(candidate)
            if exe is not None:
                best = list(exe.trace)
                best_violation = exe.violation
                # Trace may have grown past the violation step; trim.
                if best_violation.step is not None:
                    best = best[:best_violation.step + 1]
            else:
                start += chunk
        if chunk == 1:
            break
        chunk = max(chunk // 2, 1)

    # Pass 2: coalesce context switches — try continuing the previous
    # process instead of preempting it.
    changed = True
    while changed and tried < max_candidates:
        changed = False
        for i in range(1, len(best)):
            if best[i] == best[i - 1]:
                continue
            candidate = best[:i] + [best[i - 1]] + best[i + 1:]
            exe = attempt(candidate)
            if exe is not None and len(exe.trace) <= len(best):
                best = list(exe.trace)
                best_violation = exe.violation
                if best_violation.step is not None:
                    best = best[:best_violation.step + 1]
                changed = True
                break
            if tried >= max_candidates:
                break

    # Re-record the final run so the stored decisions replay strictly.
    exe = run_with_decisions(config, best, strict=False, max_steps=max_steps)
    final = _outcome(exe)
    if final is not None and final.kind == violation.kind:
        trace = list(exe.trace)
        if final.step is not None:
            trace = trace[:final.step + 1]
        return ShrinkResult(trace, final, tried)
    # Shrinking regressed (should not happen): fall back to the original.
    return ShrinkResult(list(decisions), violation, tried)
