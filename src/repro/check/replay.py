"""Deterministic counterexample replay files.

A replay file is a small JSON document freezing everything a violation
needs to reproduce: the program configuration (the workload is derived
deterministically from it) and the exact decision sequence.  Replays are
*strict*: a decision naming a non-runnable process is an error, never a
silent divergence — if the file replays, it replays the recorded schedule
bit-for-bit.

Format (version 1)::

    {
      "version": 1,
      "config": {"algorithm": "lock-free", "workers": 3, ...},
      "decisions": ["scheduler", "scheduler", "worker-0", ...],
      "violation": {"kind": "double-get", "message": "...", "step": 41}
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.check.harness import CheckConfig, run_with_decisions
from repro.check.oracle import Violation
from repro.errors import SimulationError

__all__ = ["save_replay", "load_replay", "replay"]

_VERSION = 1


def save_replay(path: str, config: CheckConfig, decisions: List[str],
                violation: Violation) -> None:
    """Write a counterexample replay file."""
    document = {
        "version": _VERSION,
        "config": config.as_dict(),
        "decisions": list(decisions),
        "violation": {
            "kind": violation.kind,
            "message": violation.message,
            "step": violation.step,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def load_replay(path: str) -> Tuple[CheckConfig, List[str], Violation]:
    """Read a replay file back into (config, decisions, recorded violation)."""
    with open(path, "r", encoding="utf-8") as handle:
        document: Dict[str, Any] = json.load(handle)
    if document.get("version") != _VERSION:
        raise SimulationError(
            f"unsupported replay file version {document.get('version')!r}")
    config = CheckConfig.from_dict(document["config"])
    recorded = document["violation"]
    violation = Violation(recorded["kind"], recorded["message"],
                          recorded.get("step"))
    return config, list(document["decisions"]), violation


def replay(path: str, *, max_steps: int = 50_000) -> Optional[Violation]:
    """Strictly re-execute a replay file; returns the violation observed.

    Returns ``None`` if the recorded schedule no longer violates the
    specification (e.g. the bug was fixed), and raises
    :class:`~repro.errors.SimulationError` if the recorded decisions no
    longer apply to the program (the implementation's effect sequence
    changed).
    """
    config, decisions, _recorded = load_replay(path)
    exe = run_with_decisions(config, decisions, strict=True,
                             max_steps=max_steps)
    if exe.violation is not None:
        return exe.violation
    if not exe.runnable():
        return exe.terminal_violation()
    return None
