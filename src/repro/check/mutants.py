"""Hand-broken lock-free COS variants for checker self-validation.

A model checker that only ever passes on correct code proves nothing.  Each
mutant here reintroduces a real concurrency bug class that the paper's
algorithm design explicitly defends against, and the mutation tests assert
the checker catches every one within a bounded exploration budget:

- ``skip-cas-retry`` — ``lfGet`` skips the retry when its
  ``rdy -> exe`` CAS fails and returns the node anyway, discarding the
  arbitration of Alg. 7's LPget linearization point.  Two workers that both
  observe the node ready then both execute it: **double-get**.
- ``drop-helped-remove`` — ``lfInsert`` never performs the helping step
  (Alg. 7 l. 5-11), so logically removed nodes are never physically
  unlinked and the arrival list leaks without bound: **graph-leak** (the
  ``chain_stats_unsafe`` garbage bound).
- ``premature-publish`` — ``lfInsert`` publishes ``dep_on`` incrementally
  during its traversal instead of atomically at the end, reintroducing the
  §6.2 hazard the implementation closes: a concurrent ``lfRemove`` of an
  already-collected dependency observes a *prefix* of the dependency set
  and marks the node ready before its later conflicts are recorded:
  **conflict-order** (or a double readiness credit).
- ``indexed-skip-reader-tracking`` — the indexed COS's writer insert
  consults only the conflict class's last writer and ignores the readers
  recorded since that write, so a new writer never orders after live
  readers it conflicts with and can execute concurrently with them:
  **conflict-order**.  This is exactly the bug the per-class
  ``(last_writer, readers)`` index entry exists to prevent.
- ``early-skip-barrier`` — the early scheduler enqueues a multi-lane
  (worker-set barrier) command into only the *first* lane of its set, so
  a cross-class write never rendezvouses with the other lanes and can
  execute concurrently with conflicting commands queued there:
  **conflict-order**.  The barrier over the class's whole worker set is
  the one mechanism by which early scheduling orders a write against the
  readers spread round-robin across that set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.command import Command, ConflictRelation
from repro.core.cos import COS, StructureCosts
from repro.core.early import DEFAULT_WORKERS, EarlyConfig, EarlyCOS
from repro.core.effects import Cas, Load, Store
from repro.core.indexed import IndexedCOS
from repro.core.lock_free import LockFreeCOS
from repro.core.node import EXECUTING, READY, REMOVED, LockFreeNode
from repro.core.runtime import EffectGen, Runtime

__all__ = ["MUTANTS", "make_mutant"]


class SkipCasRetryCOS(LockFreeCOS):
    """lfGet that treats a failed ``rdy -> exe`` CAS as a success."""

    def _lf_get(self) -> EffectGen:
        while True:
            cur = yield Load(self._head)
            while cur is not None:
                st = yield Load(cur.st)
                if st == READY:
                    # BUG: the CAS result is ignored — the retry that makes
                    # concurrent getters agree on a single winner is skipped.
                    yield Cas(cur.st, READY, EXECUTING)
                    return cur
                cur = yield Load(cur.nxt)


class DropHelpedRemoveCOS(LockFreeCOS):
    """lfInsert that never helps: removed nodes stay linked forever."""

    def _lf_insert(self, cmd: Command) -> EffectGen:
        node = LockFreeNode(cmd, self._next_seq, self._runtime)
        self._next_seq += 1
        conflicts = self._conflicts.conflicts
        dep_acc: List[LockFreeNode] = []
        prev: Optional[LockFreeNode] = None
        cur = yield Load(self._head)
        while cur is not None:
            cur_st = yield Load(cur.st)
            # BUG: a logically removed node is skipped for conflicts but is
            # never physically unlinked (no helpedRemove), so the arrival
            # list — and every traversal over it — grows without bound.
            if cur_st != REMOVED and conflicts(cur.cmd, cmd):
                dep_me = yield Load(cur.dep_me)
                yield Store(cur.dep_me, dep_me + (node,))
                dep_acc.append(cur)
            prev = cur
            cur = yield Load(cur.nxt)
        yield Store(node.dep_on, tuple(dep_acc))
        if prev is None:
            yield Store(self._head, node)
        else:
            yield Store(prev.nxt, node)
        ready = yield from self._test_ready(node)
        return ready


class PrematurePublishCOS(LockFreeCOS):
    """lfInsert that publishes the dependency set one edge at a time."""

    def _lf_insert(self, cmd: Command) -> EffectGen:
        node = LockFreeNode(cmd, self._next_seq, self._runtime)
        self._next_seq += 1
        conflicts = self._conflicts.conflicts
        # BUG: dep_on starts published (empty) and grows during the
        # traversal — exactly the paper's §6.2 hazard.  A remover of an
        # already-collected dependency can testReady this node against a
        # prefix of its true dependency set and wrongly mark it ready.
        yield Store(node.dep_on, ())
        prev: Optional[LockFreeNode] = None
        cur = yield Load(self._head)
        while cur is not None:
            cur_st = yield Load(cur.st)
            if cur_st == REMOVED:
                yield from self._helped_remove(prev, cur)
                cur = yield Load(cur.nxt)
                continue
            if conflicts(cur.cmd, cmd):
                dep_me = yield Load(cur.dep_me)
                yield Store(cur.dep_me, dep_me + (node,))
                dep_on = yield Load(node.dep_on)
                yield Store(node.dep_on, dep_on + (cur,))
            prev = cur
            cur = yield Load(cur.nxt)
        if prev is None:
            yield Store(self._head, node)
        else:
            yield Store(prev.nxt, node)
        ready = yield from self._test_ready(node)
        return ready


class IndexedSkipReaderTrackingCOS(IndexedCOS):
    """Indexed insert whose writers ignore the readers of their class."""

    def _writer_candidates(self, writer, readers):
        # BUG: the readers recorded since the class's last write are
        # dropped, so a new writer orders only after the displaced writer
        # and can execute concurrently with live readers it conflicts
        # with — the violation the (last_writer, readers) entry prevents.
        return (writer,) if writer is not None else ()


class EarlySkipBarrierCOS(EarlyCOS):
    """Early scheduler whose barrier commands take only their first lane."""

    def _barrier_lanes(self, lanes: Tuple[int, ...]) -> Tuple[int, ...]:
        # BUG: the worker-set barrier is skipped — the command waits for
        # (and blocks) only the first lane of its set, so it can execute
        # while conflicting commands in the other lanes are still live.
        return lanes[:1]


MUTANTS = {
    "skip-cas-retry": SkipCasRetryCOS,
    "drop-helped-remove": DropHelpedRemoveCOS,
    "premature-publish": PrematurePublishCOS,
    "indexed-skip-reader-tracking": IndexedSkipReaderTrackingCOS,
    "early-skip-barrier": EarlySkipBarrierCOS,
}


def make_mutant(name: str, runtime: Runtime, conflicts: ConflictRelation,
                max_size: int, workers: Optional[int] = None) -> COS:
    """Instantiate a named mutant (a lock-free, indexed or early variant)."""
    try:
        cls = MUTANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutant {name!r}; expected one of "
            f"{sorted(MUTANTS)}") from None
    if issubclass(cls, EarlyCOS):
        config = EarlyConfig(workers=workers or DEFAULT_WORKERS)
        return cls(runtime, conflicts, max_size, StructureCosts.zero(),
                   config=config)
    return cls(runtime, conflicts, max_size, StructureCosts.zero())
