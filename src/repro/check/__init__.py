"""Systematic schedule-space model checking for the COS algorithms.

Where :mod:`tests.test_schedule_fuzzing` samples random interleavings, this
package *enumerates* them: the ``"controlled"`` preemption mode of
:class:`~repro.sim.runtime.SimRuntime` hands every scheduling decision to an
external driver, the explorer walks the decision tree with bounded-depth DFS
plus sleep-set (DPOR-style) pruning over effect independence (topped up with
a seeded random-walk stage for deep races), and each
explored schedule is validated against the COS sequential specification
(paper §3.3) plus deadlock/lost-wakeup detection.  Failing schedules are
shrunk and frozen into deterministic replay files.

Entry points:

- CLI: ``python -m repro check --algorithm lock_free --workers 3 --commands 5``
- API: :func:`run_check` / :func:`~repro.check.explorer.explore`
- docs: ``docs/model_checking.md``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.check.explorer import ExploreResult, explore, explore_random
from repro.check.harness import (
    CheckConfig,
    CheckExecution,
    run_with_decisions,
)
from repro.check.independence import independent
from repro.check.mutants import MUTANTS, make_mutant
from repro.check.oracle import SpecOracle, Violation
from repro.check.paxos_lease import (
    LEASE_MUTANTS,
    LeaseCheckConfig,
    LeaseCheckReport,
    run_lease_check,
)
from repro.check.replay import load_replay, replay, save_replay
from repro.check.shrink import ShrinkResult, shrink
from repro.check.spec_rollback import (
    SPEC_MUTANTS,
    SpecCheckConfig,
    SpecCheckReport,
    run_spec_check,
)

__all__ = [
    "CheckConfig",
    "CheckExecution",
    "CheckReport",
    "ExploreResult",
    "LEASE_MUTANTS",
    "LeaseCheckConfig",
    "LeaseCheckReport",
    "MUTANTS",
    "SPEC_MUTANTS",
    "ShrinkResult",
    "SpecCheckConfig",
    "SpecCheckReport",
    "SpecOracle",
    "Violation",
    "explore",
    "explore_random",
    "independent",
    "load_replay",
    "make_mutant",
    "replay",
    "run_check",
    "run_lease_check",
    "run_spec_check",
    "run_with_decisions",
    "save_replay",
    "shrink",
]


#: Default exploration ladder.  Integer stages are CHESS-style iterative
#: preemption bounding: exhaust the non-preemptive schedules first, then one
#: voluntary preemption, then two — bugs reachable with few preemptions (most
#: of them) are found in these cheap, systematically-covered stages.  The
#: final ``"random"`` stage spends the leftover budget on seeded random
#: walks (PCT-style), which place preemptions uniformly over the schedule
#: instead of tail-first like DFS backtracking, catching deeper races whose
#: preemption *positions* matter more than their count.
DEFAULT_PREEMPTION_STAGES: Sequence[Union[int, str, None]] = \
    (0, 1, 2, "random")


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    config: CheckConfig
    result: ExploreResult
    shrunk: Optional[ShrinkResult] = None

    @property
    def ok(self) -> bool:
        return self.result.violation is None


def run_check(
    config: CheckConfig,
    *,
    max_schedules: int = 300,
    max_steps: int = 20_000,
    use_sleep_sets: bool = True,
    preemption_stages: Union[Sequence[Union[int, str, None]], None] = None,
    shrink_counterexamples: bool = True,
    max_shrink_candidates: int = 400,
    seed: int = 0,
) -> CheckReport:
    """Explore ``config``'s schedule space; shrink any counterexample.

    The schedule budget is split across the ``preemption_stages`` ladder
    (later stages inherit leftover budget from stages that exhausted their
    bounded space early).  Integer stages run the bounded DFS, ``None`` an
    unbounded DFS, ``"random"`` the seeded random walk; pass e.g.
    ``preemption_stages=[None]`` for a single unbounded DFS.
    """
    stages = list(DEFAULT_PREEMPTION_STAGES
                  if preemption_stages is None else preemption_stages)
    total = ExploreResult()
    remaining = max_schedules
    for position, bound in enumerate(stages):
        stages_left = len(stages) - position
        budget = remaining if stages_left == 1 else max(
            remaining // stages_left, 1)
        if bound == "random":
            stage_result = explore_random(
                lambda: CheckExecution(config),
                max_schedules=budget,
                max_steps=max_steps,
                seed=seed,
            )
        else:
            stage_result = explore(
                lambda: CheckExecution(config),
                max_schedules=budget,
                max_steps=max_steps,
                use_sleep_sets=use_sleep_sets,
                preemption_bound=bound,
            )
        total.schedules_explored += stage_result.schedules_explored
        total.schedules_pruned += stage_result.schedules_pruned
        total.transitions += stage_result.transitions
        total.depth_bound_hits += stage_result.depth_bound_hits
        if stage_result.violation is not None:
            total.violation = stage_result.violation
            total.counterexample = stage_result.counterexample
            break
        # "Exhausted" only covers the *whole* space when the stage was
        # unbounded; a bounded or random stage ending early just frees
        # budget for later stages.
        if bound is None and stage_result.exhausted:
            total.exhausted = True
            break
        remaining = max_schedules - total.schedules_explored
        if remaining <= 0:
            break
    report = CheckReport(config=config, result=total)
    if total.violation is not None and shrink_counterexamples:
        report.shrunk = shrink(
            config, total.counterexample, total.violation,
            max_candidates=max_shrink_candidates, max_steps=max_steps)
    return report
