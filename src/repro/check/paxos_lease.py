"""Randomized lease-protocol checking for the Multi-Paxos fast read path.

The COS checker (:mod:`repro.check.harness`) enumerates thread schedules;
leases break differently — their hazards live in *time*: clock-rate drift,
expiry races, and stale leaders serving reads after a new leader was
elected.  This harness therefore drives ``n`` pure
:class:`~repro.broadcast.paxos.MultiPaxos` state machines under a seeded
random walk over an explicit decision vocabulary:

=============== ======================================================
``deliver:k``   deliver the ``k``-th queued network message
``drop:k``      drop it instead
``dup:k``       duplicate it (at-least-once transport)
``tick:T``      advance the global clock base by ``T`` seconds
``hb:N``        fire node ``N``'s heartbeat timer
``lt:N``        fire node ``N``'s leader-check timer
``lg:N``        fire node ``N``'s propose-linger timer
``write:N``     submit a fresh write payload at node ``N``
``read:N``      submit a fresh read-only payload at node ``N``
``iso:N``       isolate node ``N`` (drop all its traffic)
``heal``        end all isolation
=============== ======================================================

Each node reads time through its own skewed clock (``base * rate``, rates
spread over ``1 +- clock_skew``), exercising the bounded-rate-drift
assumption the ``lease_margin`` must absorb (docs/ordering.md).  Decisions
that cannot apply (e.g. ``deliver`` on an empty network) are deterministic
no-ops, so a recorded decision list replays bit-for-bit.

Three oracles run after every decision:

- **stale-read**: a lease read served at node ``X`` must reflect every
  write already delivered *anywhere* — the linearizability property the
  lease machinery exists to protect;
- **lease-overlap**: at most one node may be in a read-serving state
  (leader + valid quorum lease + no recovery debt) at any instant;
- **divergence**: all nodes deliver the same payload sequence (agreement),
  guarding the cumulative-ack and promise-merge machinery.

Checker self-validation uses :data:`LEASE_MUTANTS` — seeded lease bugs the
random walk must catch within a bounded budget (``lease-ignore-expiry``
runs in CI; see tests/test_check_lease.py).  Counterexamples are shrunk
ddmin-style and frozen into replay files distinguished from COS replays by
a ``"harness": "paxos-lease"`` key.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.broadcast.messages import Deliver, DeliverRead, Send
from repro.broadcast.paxos import (
    HEARTBEAT_TIMER,
    LEADER_TIMER,
    LINGER_TIMER,
    MultiPaxos,
)
from repro.check.oracle import Violation
from repro.errors import SimulationError

__all__ = [
    "LEASE_MUTANTS",
    "LeaseCheckConfig",
    "LeaseCheckReport",
    "LeaseHarness",
    "LeaseIgnoreExpiry",
    "load_lease_replay",
    "replay_harness_kind",
    "replay_lease",
    "run_lease_check",
    "run_lease_schedule",
    "save_lease_replay",
    "shrink_lease",
]

#: Value of the ``"harness"`` key in this module's replay files (COS
#: replays have no such key).
REPLAY_HARNESS = "paxos-lease"

_VERSION = 1

#: Queued messages are capped so ``dup`` decisions cannot blow the walk up.
_NETWORK_CAP = 256


class LeaseIgnoreExpiry(MultiPaxos):
    """Seeded bug: the leader serves lease reads past its grants' expiry.

    ``_lease_valid`` is the one place the serving side consults its quorum
    lease; short-circuiting it to ``True`` reintroduces the classic lease
    bug — a deposed or partitioned leader keeps answering reads from state
    that stopped advancing, exactly what the expiry check prevents.
    """

    def _lease_valid(self) -> bool:
        return True


#: Lease-harness mutants, deliberately separate from the COS
#: :data:`repro.check.mutants.MUTANTS` registry (different harness,
#: different oracles).
LEASE_MUTANTS = {
    "lease-ignore-expiry": LeaseIgnoreExpiry,
}


@dataclass
class LeaseCheckConfig:
    """Parameters of one lease-harness run (fully determines the system)."""

    n_nodes: int = 3
    heartbeat_interval: float = 0.05
    leader_timeout: float = 0.2
    lease_duration: float = 0.16
    lease_margin: float = 0.02
    propose_linger: float = 0.0
    cumulative_acks: bool = True
    batch_size: int = 4
    #: Max relative clock-rate drift per node; rates are spread
    #: deterministically over ``[1 - skew, 1 + skew]``.
    clock_skew: float = 0.01
    schedule_length: int = 120
    mutant: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LeaseCheckConfig":
        return cls(**data)

    def rates(self) -> List[float]:
        """Per-node clock rates: a deterministic spread across the skew."""
        if self.n_nodes == 1:
            return [1.0]
        span = self.n_nodes - 1
        return [1.0 - self.clock_skew + 2 * self.clock_skew * i / span
                for i in range(self.n_nodes)]

    def make_node(self, node_id: int, clock) -> MultiPaxos:
        cls: type = MultiPaxos
        if self.mutant is not None:
            try:
                cls = LEASE_MUTANTS[self.mutant]
            except KeyError:
                raise ValueError(
                    f"unknown lease mutant {self.mutant!r}; expected one "
                    f"of {sorted(LEASE_MUTANTS)}") from None
        return cls(
            node_id,
            self.n_nodes,
            batch_size=self.batch_size,
            heartbeat_interval=self.heartbeat_interval,
            leader_timeout=self.leader_timeout,
            propose_linger=self.propose_linger,
            cumulative_acks=self.cumulative_acks,
            lease_duration=self.lease_duration,
            lease_margin=self.lease_margin,
            clock=clock,
        )


class LeaseHarness:
    """``n`` MultiPaxos nodes + a decision-driven network and clock."""

    def __init__(self, config: LeaseCheckConfig):
        self.config = config
        self.base = 0.0
        self._rates = config.rates()
        self.nodes = [
            config.make_node(i, self._make_clock(i))
            for i in range(config.n_nodes)
        ]
        #: In-flight messages as (src, dst, msg) in arrival order.
        self.network: List[Tuple[int, int, Any]] = []
        self.isolated: Set[int] = set()
        #: Flattened per-node delivered token sequences (the agreement
        #: history) and the longest sequence seen anywhere (the reference).
        self.delivered: List[List[Any]] = [[] for _ in self.nodes]
        self.delivered_writes: List[Set[Any]] = [set() for _ in self.nodes]
        self.completed_writes: Set[Any] = set()
        self.order: List[Any] = []
        self.write_count = 0
        self.read_count = 0
        self.lease_reads = 0
        for node_id, node in enumerate(self.nodes):
            self._absorb(node_id, node.start(), step=None)

    def _make_clock(self, node_id: int):
        rate = self._rates[node_id]
        return lambda: self.base * rate

    # ----------------------------------------------------------- mechanics

    def _absorb(self, node_id: int, actions: List[Any],
                step: Optional[int]) -> Optional[Violation]:
        """File a node's actions: queue sends, record deliveries."""
        for action in actions:
            if isinstance(action, Send):
                if node_id in self.isolated or action.dst in self.isolated:
                    continue
                if len(self.network) < _NETWORK_CAP:
                    self.network.append((node_id, action.dst, action.msg))
            elif isinstance(action, Deliver):
                violation = self._record_delivery(
                    node_id, action.payload, step)
                if violation is not None:
                    return violation
            # SetTimer is ignored: timers fire via explicit decisions.
            # DeliverRead is checked at the read decision itself.
        return None

    def _record_delivery(self, node_id: int, payload: Any,
                         step: Optional[int]) -> Optional[Violation]:
        tokens = payload if isinstance(payload, tuple) else (payload,)
        history = self.delivered[node_id]
        for token in tokens:
            position = len(history)
            history.append(token)
            if position < len(self.order):
                if self.order[position] != token:
                    return Violation(
                        "divergence",
                        f"node {node_id} delivered {token!r} at position "
                        f"{position} where {self.order[position]!r} was "
                        f"already delivered elsewhere",
                        step)
            else:
                self.order.append(token)
            if isinstance(token, str) and token.startswith("w"):
                self.delivered_writes[node_id].add(token)
                self.completed_writes.add(token)
        return None

    def _serving(self, node: MultiPaxos) -> bool:
        """True when ``node`` would serve a lease read right now."""
        return (node.is_leader
                and node.lease_reads
                and node.lease_duration > 0
                and node.next_deliver >= node._recover_floor
                and node._lease_valid())

    def _check_overlap(self, step: int) -> Optional[Violation]:
        servers = [i for i, node in enumerate(self.nodes)
                   if self._serving(node)]
        if len(servers) > 1:
            return Violation(
                "lease-overlap",
                f"nodes {servers} can all serve lease reads at "
                f"base time {self.base:.3f}",
                step)
        return None

    # ------------------------------------------------------------ decisions

    def apply(self, decision: str, step: int) -> Optional[Violation]:
        """Apply one decision; returns the first violation observed."""
        op, _, arg = decision.partition(":")
        violation: Optional[Violation] = None
        if op == "deliver" and self.network:
            src, dst, msg = self.network.pop(int(arg) % len(self.network))
            if src not in self.isolated and dst not in self.isolated:
                violation = self._absorb(
                    dst, self.nodes[dst].on_message(src, msg), step)
        elif op == "drop" and self.network:
            self.network.pop(int(arg) % len(self.network))
        elif op == "dup" and self.network:
            if len(self.network) < _NETWORK_CAP:
                self.network.append(
                    self.network[int(arg) % len(self.network)])
        elif op == "tick":
            self.base += float(arg)
        elif op in ("hb", "lt", "lg"):
            node_id = int(arg) % len(self.nodes)
            timer = {"hb": HEARTBEAT_TIMER, "lt": LEADER_TIMER,
                     "lg": LINGER_TIMER}[op]
            violation = self._absorb(
                node_id, self.nodes[node_id].on_timer(timer), step)
        elif op == "write":
            node_id = int(arg) % len(self.nodes)
            token = f"w{self.write_count}"
            self.write_count += 1
            violation = self._absorb(
                node_id, self.nodes[node_id].submit(token), step)
        elif op == "read":
            violation = self._apply_read(int(arg) % len(self.nodes), step)
        elif op == "iso":
            self.isolated.add(int(arg) % len(self.nodes))
        elif op == "heal":
            self.isolated.clear()
        elif op in ("deliver", "drop", "dup"):
            pass  # empty network: deterministic no-op
        else:
            raise SimulationError(f"unknown decision {decision!r}")
        if violation is not None:
            return violation
        return self._check_overlap(step)

    def _apply_read(self, node_id: int, step: int) -> Optional[Violation]:
        # Snapshot the completed writes *before* the read is invoked: a
        # linearizable read must reflect every write whose delivery (and so
        # possibly its client response) preceded the read's invocation.
        completed = set(self.completed_writes)
        token = f"r{self.read_count}"
        self.read_count += 1
        actions = self.nodes[node_id].submit_read(token)
        for action in actions:
            if isinstance(action, DeliverRead):
                self.lease_reads += 1
                missing = completed - self.delivered_writes[node_id]
                if missing:
                    return Violation(
                        "stale-read",
                        f"lease read {token} served at node {node_id} "
                        f"misses completed writes {sorted(missing)}",
                        step)
        return self._absorb(node_id, actions, step)


def run_lease_schedule(config: LeaseCheckConfig,
                       decisions: List[str]) -> Optional[Violation]:
    """Deterministically run one decision list; first violation or None."""
    harness = LeaseHarness(config)
    for step, decision in enumerate(decisions):
        violation = harness.apply(decision, step)
        if violation is not None:
            return violation
    return None


# ------------------------------------------------------------- exploration

_TICKS = ("0.01", "0.02", "0.05")


def generate_schedule(config: LeaseCheckConfig,
                      rng: random.Random) -> List[str]:
    """One seeded random-walk schedule over the decision vocabulary."""
    n = config.n_nodes
    decisions: List[str] = []
    for _ in range(config.schedule_length):
        roll = rng.random()
        if roll < 0.40:
            decisions.append(f"deliver:{rng.randrange(64)}")
        elif roll < 0.55:
            decisions.append(f"tick:{rng.choice(_TICKS)}")
        elif roll < 0.65:
            decisions.append(f"hb:{rng.randrange(n)}")
        elif roll < 0.75:
            decisions.append(f"lt:{rng.randrange(n)}")
        elif roll < 0.78:
            decisions.append(f"lg:{rng.randrange(n)}")
        elif roll < 0.84:
            decisions.append(f"write:{rng.randrange(n)}")
        elif roll < 0.92:
            decisions.append(f"read:{rng.randrange(n)}")
        elif roll < 0.95:
            decisions.append(f"drop:{rng.randrange(64)}")
        elif roll < 0.96:
            decisions.append(f"dup:{rng.randrange(64)}")
        elif roll < 0.99:
            decisions.append(f"iso:{rng.randrange(n)}")
        else:
            decisions.append("heal")
    return decisions


def shrink_lease(config: LeaseCheckConfig, decisions: List[str],
                 max_candidates: int = 400,
                 ) -> Tuple[List[str], Violation, int]:
    """ddmin-style shrink: drop chunks while some violation persists."""
    current = list(decisions)
    violation = run_lease_schedule(config, current)
    if violation is None:
        raise SimulationError("shrink_lease needs a violating schedule")
    tried = 0
    chunk = max(1, len(current) // 2)
    while tried < max_candidates:
        index = 0
        removed = False
        while index < len(current) and tried < max_candidates:
            candidate = current[:index] + current[index + chunk:]
            tried += 1
            found = run_lease_schedule(config, candidate)
            if found is not None:
                current, violation, removed = candidate, found, True
            else:
                index += chunk
        if chunk == 1 and not removed:
            break
        if not removed:
            chunk = max(1, chunk // 2)
    return current, violation, tried


@dataclass
class LeaseCheckReport:
    """Everything one lease-harness exploration produced."""

    config: LeaseCheckConfig
    schedules_explored: int
    violation: Optional[Violation] = None
    decisions: Optional[List[str]] = None
    shrunk_decisions: Optional[List[str]] = None
    shrink_candidates: int = 0

    @property
    def ok(self) -> bool:
        return self.violation is None

    def describe(self) -> str:
        if self.ok:
            return (f"explored {self.schedules_explored} schedules: "
                    f"no violation")
        assert self.violation is not None
        return (f"explored {self.schedules_explored} schedules: "
                f"{self.violation.describe()}")


def run_lease_check(
    config: LeaseCheckConfig,
    *,
    max_schedules: int = 200,
    seed: int = 0,
    shrink_counterexamples: bool = True,
    max_shrink_candidates: int = 400,
) -> LeaseCheckReport:
    """Random-walk the schedule space; shrink the first counterexample."""
    for index in range(max_schedules):
        rng = random.Random(seed * 1_000_003 + index)
        decisions = generate_schedule(config, rng)
        violation = run_lease_schedule(config, decisions)
        if violation is None:
            continue
        report = LeaseCheckReport(
            config=config,
            schedules_explored=index + 1,
            violation=violation,
            decisions=decisions,
        )
        if shrink_counterexamples:
            shrunk, shrunk_violation, tried = shrink_lease(
                config, decisions, max_candidates=max_shrink_candidates)
            report.shrunk_decisions = shrunk
            report.violation = shrunk_violation
            report.shrink_candidates = tried
        return report
    return LeaseCheckReport(config=config, schedules_explored=max_schedules)


# ------------------------------------------------------------------ replay

def save_lease_replay(path: str, config: LeaseCheckConfig,
                      decisions: List[str], violation: Violation) -> None:
    """Write a lease-harness counterexample replay file."""
    document = {
        "version": _VERSION,
        "harness": REPLAY_HARNESS,
        "config": config.as_dict(),
        "decisions": list(decisions),
        "violation": {
            "kind": violation.kind,
            "message": violation.message,
            "step": violation.step,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def load_lease_replay(
        path: str) -> Tuple[LeaseCheckConfig, List[str], Violation]:
    """Read a lease replay back into (config, decisions, violation)."""
    with open(path, "r", encoding="utf-8") as handle:
        document: Dict[str, Any] = json.load(handle)
    if document.get("harness") != REPLAY_HARNESS:
        raise SimulationError(
            f"{path} is not a {REPLAY_HARNESS} replay file")
    if document.get("version") != _VERSION:
        raise SimulationError(
            f"unsupported replay file version {document.get('version')!r}")
    config = LeaseCheckConfig.from_dict(document["config"])
    recorded = document["violation"]
    violation = Violation(recorded["kind"], recorded["message"],
                          recorded.get("step"))
    return config, list(document["decisions"]), violation


def replay_lease(path: str) -> Optional[Violation]:
    """Re-run a recorded lease counterexample; the violation seen, or None
    if the recorded schedule no longer violates (e.g. the bug was fixed)."""
    config, decisions, _recorded = load_lease_replay(path)
    return run_lease_schedule(config, decisions)


def replay_harness_kind(path: str) -> Optional[str]:
    """Peek a replay file's harness key ("paxos-lease" or None for COS)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return document.get("harness")
