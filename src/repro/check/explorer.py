"""Bounded-depth systematic exploration of the schedule space.

Stateless-model-checking structure (VeriSoft/Godefroid lineage): the
explorer cannot undo a step, so it runs complete schedules, backtracking by
re-executing the decision prefix on a fresh
:class:`~repro.check.harness.CheckExecution`.  Depth-first search keeps one
*frame* per decision point:

- ``alternatives``: the runnable processes worth trying at that state (the
  enabled set minus the state's sleep set when first reached);
- ``index``: which alternative the current schedule took;
- ``sleep``: the sleep set, growing with each fully-explored sibling.

**Sleep sets** prune commuting interleavings soundly: after the subtree in
which process ``p`` moved first from state ``s`` is explored, ``p`` enters
``s``'s sleep set; when sibling ``q`` is explored next, ``p`` stays asleep
in ``q``'s successor as long as ``p``'s pending effect is *independent* of
each transition fired (:mod:`repro.check.independence`) — firing ``p``
there would only commute into a state the ``p``-first subtree already
covered.  A process whose pending effect shares a handle with a fired
transition wakes up and is explored again.  Every Mazurkiewicz trace keeps
at least one representative, so no deadlock or safety violation inside the
depth bound is missed (Godefroid 1996, Thm. 4.3).  ``use_sleep_sets=False``
runs the naive full DFS over the same space, for measuring the reduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.check.harness import CheckExecution
from repro.check.independence import independent
from repro.check.oracle import Violation
from repro.errors import SimulationError

__all__ = ["ExploreResult", "explore", "explore_random"]


@dataclass
class _Frame:
    """One decision point on the current DFS path."""

    alternatives: List[str]
    index: int = 0
    sleep: Set[str] = field(default_factory=set)
    #: Voluntary preemptions spent on the path *up to* this state.
    switches_used: int = 0

    @property
    def chosen(self) -> str:
        return self.alternatives[self.index]


@dataclass
class ExploreResult:
    """Outcome of one exploration run.

    ``schedules_explored`` counts schedules run to a terminal, depth-bounded
    or fully-slept state; ``schedules_pruned`` counts enabled branches the
    sleep sets skipped; ``exhausted`` is True when the bounded schedule
    space was covered within budget.
    """

    schedules_explored: int = 0
    schedules_pruned: int = 0
    transitions: int = 0
    depth_bound_hits: int = 0
    exhausted: bool = False
    violation: Optional[Violation] = None
    counterexample: Optional[List[str]] = None

    def describe(self) -> str:
        lines = [
            f"schedules explored: {self.schedules_explored}"
            + (" (space exhausted)" if self.exhausted else " (budget reached)"
               if self.violation is None else ""),
            f"branches pruned by sleep sets: {self.schedules_pruned}",
            f"transitions executed: {self.transitions}",
        ]
        if self.depth_bound_hits:
            lines.append(f"depth-bounded schedules: {self.depth_bound_hits}")
        if self.violation is not None:
            lines.append(f"VIOLATION {self.violation.describe()}")
        return "\n".join(lines)


def explore(
    make_execution: Callable[[], CheckExecution],
    *,
    max_schedules: int = 300,
    max_steps: int = 20_000,
    use_sleep_sets: bool = True,
    preemption_bound: Optional[int] = None,
) -> ExploreResult:
    """DFS the schedule space of the program ``make_execution`` builds.

    ``make_execution`` must return a fresh, deterministic execution each
    call (same processes, same decisions => same states).  Exploration
    stops at the first violation, after ``max_schedules`` schedules, or
    when the bounded space is exhausted — whichever comes first.

    ``preemption_bound`` caps *voluntary* preemptions per schedule (CHESS,
    Musuvathi & Qadeer 2007): switching away from a process that could
    still run costs one unit; switches forced by the current process
    blocking or finishing are free.  Most concurrency bugs manifest within
    one or two preemptions, and the bounded space is small enough that DFS
    reaches every decision point instead of permuting the schedule tail
    forever.  ``None`` means unbounded (the full per-effect interleaving
    space, only feasible for tiny programs).
    """
    result = ExploreResult()
    frames: List[_Frame] = []
    while result.schedules_explored < max_schedules:
        exe = make_execution()
        # Re-execute the committed prefix: all frames but the last (whose
        # current alternative the forward loop below fires, so the sleep
        # set it hands to the next state is recomputed there).
        for depth, frame in enumerate(frames[:-1]):
            if not exe.step_by_name(frame.chosen):
                raise SimulationError(
                    f"program under check is not deterministic: replaying "
                    f"decision {depth} ({frame.chosen!r}) diverged")
            result.transitions += 1
        # Forward phase: extend until terminal, violation, or bound.
        truncated = False
        inherited_sleep: Set[str] = set()
        inherited_switches = 0
        while exe.violation is None:
            runnable = exe.runnable()
            if not runnable:
                break
            if len(exe.trace) >= max_steps:
                truncated = True
                result.depth_bound_hits += 1
                break
            depth = len(exe.trace)
            if depth == len(frames):
                previous = exe.trace[-1] if exe.trace else None
                names = [proc.name for proc in runnable]
                # Continue-first order: the first schedule out of any state
                # runs the current process as far as it can go, so
                # backtracking introduces preemptions one at a time.
                if previous in names:
                    names.remove(previous)
                    names.insert(0, previous)
                    if (preemption_bound is not None
                            and inherited_switches >= preemption_bound):
                        names = [previous]  # budget spent: no more preempts
                sleep = inherited_sleep if use_sleep_sets else set()
                alternatives = [name for name in names if name not in sleep]
                result.schedules_pruned += len(names) - len(alternatives)
                if not alternatives:
                    # Every enabled move is asleep: each commutes with the
                    # path since its exploration, so this state's subtree
                    # was already covered from an earlier sibling.
                    truncated = True
                    break
                frames.append(_Frame(alternatives, sleep=sleep,
                                     switches_used=inherited_switches))
            frame = frames[depth]
            if use_sleep_sets:
                inherited_sleep = _child_sleep(exe, frame)
            previous = exe.trace[-1] if exe.trace else None
            inherited_switches = frame.switches_used
            if (previous is not None and frame.chosen != previous
                    and any(proc.name == previous
                            for proc in exe.runnable())):
                inherited_switches += 1
            exe.step_by_name(frame.chosen)
            result.transitions += 1
        result.schedules_explored += 1
        if exe.violation is None and not truncated:
            exe.violation = exe.terminal_violation()
        if exe.violation is not None:
            result.violation = exe.violation
            result.counterexample = list(exe.trace)
            return result
        # Backtrack to the deepest frame with an untried alternative; the
        # explored choice goes to sleep for its remaining siblings.
        while frames:
            frame = frames[-1]
            frame.sleep.add(frame.chosen)
            frame.index += 1
            if frame.index < len(frame.alternatives):
                break
            frames.pop()
        if not frames:
            result.exhausted = True
            return result
    return result


def explore_random(
    make_execution: Callable[[], CheckExecution],
    *,
    max_schedules: int = 300,
    max_steps: int = 20_000,
    seed: int = 0,
    switch_probability: float = 0.1,
) -> ExploreResult:
    """Seeded random-walk exploration (PCT-style, Burckhardt et al. 2010).

    Complements the bounded DFS: depth-first backtracking varies the *tail*
    of the schedule first, so a bug that needs two well-placed preemptions
    in the middle of a long schedule sits beyond any realistic DFS budget.
    A random walk places its preemptions uniformly instead: each step runs
    the current process with probability ``1 - switch_probability`` and
    otherwise switches to a uniformly random runnable process, so any
    k-preemption bug is hit with probability ~``(p/n)^k`` per schedule
    regardless of where the preemptions must land.

    The walk is driven by ``random.Random(seed)`` only — executions are
    deterministic, so every schedule (and any counterexample) is exactly
    reproducible from the seed, and the recorded decision sequence feeds
    the same shrink/replay pipeline as DFS counterexamples.
    """
    rng = random.Random(seed)
    result = ExploreResult()
    for _ in range(max_schedules):
        exe = make_execution()
        truncated = False
        while exe.violation is None:
            runnable = exe.runnable()
            if not runnable:
                break
            if len(exe.trace) >= max_steps:
                truncated = True
                result.depth_bound_hits += 1
                break
            previous = exe.trace[-1] if exe.trace else None
            chosen = None
            if previous is not None and rng.random() >= switch_probability:
                for proc in runnable:
                    if proc.name == previous:
                        chosen = proc
                        break
            if chosen is None:
                chosen = runnable[rng.randrange(len(runnable))]
            exe.step(chosen)
            result.transitions += 1
        result.schedules_explored += 1
        if exe.violation is None and not truncated:
            exe.violation = exe.terminal_violation()
        if exe.violation is not None:
            result.violation = exe.violation
            result.counterexample = list(exe.trace)
            return result
    return result


def _child_sleep(exe: CheckExecution, frame: _Frame) -> Set[str]:
    """Sleep set handed to the successor state, computed *before* firing
    ``frame.chosen``: slept siblings stay asleep only while their pending
    effect commutes with the transition about to fire.  (A slept process
    did not run, so its pending effect at the successor is unchanged.)"""
    if not frame.sleep:
        return set()
    by_name = {proc.name: proc for proc in exe.runnable()}
    chosen = by_name.get(frame.chosen)
    if chosen is None:  # deterministic replay guarantees this never happens
        return set()
    fired = exe.pending_effect(chosen)
    return {
        name for name in frame.sleep
        if name in by_name
        and independent(exe.pending_effect(by_name[name]), fired)
    }
