"""Randomized checking of the optimistic commit/rollback rule.

The COS checker enumerates thread schedules, the lease harness walks
clock/network interleavings, the rendezvous harness interleaves group
streams; the speculation hazard is different again: each replica executes
commands in its *own* optimistic guess of the order, and the
:class:`~repro.spec.engine.SpeculationEngine`'s commit/rollback rule must
make the released responses and the service state a pure function of the
conservative order — independent of what was speculated, in what order,
or how often (docs/speculation.md).

The harness drives ``n_replicas`` engines, each over its own
:class:`~repro.apps.kvstore.KVStoreService` (``put`` returns the previous
value and ``cas`` is state-dependent in both effect and response, so a
rollback that leaves stale state behind surfaces in *both* oracles),
under a seeded random walk with an explicit decision vocabulary:

=============== ======================================================
``put:K-V``     issue ``put(kK, V)``
``cas:K-E-N``   issue ``cas(kK, E, N)`` (state-dependent write)
``get:K``       issue ``get(kK)`` (read; captures no undo record)
``opt:R,I``     replica ``R`` speculates issued command ``I`` —
                admit + capture undo + execute, response buffered
``dup:R,I``     the same, as a deliberately duplicate optimistic
                delivery (the engine must drop it)
``ord:I``       append issued command ``I`` to the global conservative
                order (consensus decides it); the reference executes it
``adv:R``       replica ``R`` confirms the next conservative command
=============== ======================================================

Decisions that cannot apply (no commands issued yet, ``ord`` of an
already-ordered command, ``adv`` past the conservative frontier) are
deterministic no-ops, so recorded decision lists replay bit-for-bit.
Oracles, as the walk progresses:

- **response-divergence**: a released response differs from the
  reference sequential execution of the conservative order;
- **state-divergence**: whenever a replica's speculation log is clean,
  its service snapshot must be byte-identical (canonical JSON) to the
  reference snapshot at the same conservative prefix — and at the end of
  the run for every replica;
- **stale-speculation** (end of run): after every issued command was
  ordered and every replica confirmed the full conservative order, a
  speculation log still holds uncommitted entries.

Checker self-validation uses :data:`SPEC_MUTANTS` — seeded engine bugs
the walk must catch within a bounded budget (``spec-skip-undo`` rolls
back without applying undo records; see tests/test_spec_check.py).
Counterexamples are shrunk ddmin-style and frozen into replay files
marked ``"harness": "spec-rollback"``.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.apps.kvstore import KVStoreService
from repro.check.oracle import Violation
from repro.core.command import Command
from repro.errors import SimulationError
from repro.groups.merge import command_key
from repro.spec.engine import SkipUndoEngine, SpeculationEngine

__all__ = [
    "SPEC_MUTANTS",
    "SpecCheckConfig",
    "SpecCheckReport",
    "SpecRollbackHarness",
    "load_spec_replay",
    "replay_spec",
    "run_spec_check",
    "run_spec_schedule",
    "save_spec_replay",
    "shrink_spec",
]

#: Value of the ``"harness"`` key in this module's replay files.
REPLAY_HARNESS = "spec-rollback"

_VERSION = 1

#: Speculation-harness mutants, deliberately separate from the COS,
#: lease, and groups registries (different harness, different oracles).
SPEC_MUTANTS = {
    "spec-skip-undo": SkipUndoEngine,
}


@dataclass
class SpecCheckConfig:
    """Parameters of one spec-rollback run (fully determines it)."""

    n_replicas: int = 2
    key_space: int = 3
    value_space: int = 3
    schedule_length: int = 80
    mutant: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpecCheckConfig":
        return cls(**data)

    def make_engine(self, service: KVStoreService) -> SpeculationEngine:
        cls: type = SpeculationEngine
        if self.mutant is not None:
            try:
                cls = SPEC_MUTANTS[self.mutant]
            except KeyError:
                raise ValueError(
                    f"unknown spec mutant {self.mutant!r}; expected one "
                    f"of {sorted(SPEC_MUTANTS)}") from None
        return cls(service)


def _canonical(snapshot: Any) -> str:
    """Byte-identical state comparison (the differential-suite standard)."""
    return json.dumps(snapshot, sort_keys=True, default=repr)


class SpecRollbackHarness:
    """``n_replicas`` speculative pipelines against one reference."""

    def __init__(self, config: SpecCheckConfig):
        self.config = config
        self.services = [KVStoreService() for _ in range(config.n_replicas)]
        self.engines = [config.make_engine(service)
                        for service in self.services]
        #: Commands issued so far (the clients' stream).
        self.issued: List[Command] = []
        #: The conservative (consensus) order — shared by all replicas.
        self.order: List[Command] = []
        self._ordered_keys: set = set()
        #: Per replica: next conservative position to confirm.
        self.cursors = [0] * config.n_replicas
        self._seq = 0
        # Reference sequential execution of the conservative order.
        self._reference = KVStoreService()
        #: Reference snapshots, one per conservative prefix (index i =
        #: state after the first i ordered commands).
        self._reference_snapshots: List[str] = [
            _canonical(self._reference.snapshot())]
        self._reference_responses: Dict[Hashable, Any] = {}

    # ------------------------------------------------------------- commands

    def _issue(self, command: Command) -> None:
        self.issued.append(command)

    def _next_id(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------ decisions

    def apply(self, decision: str, step: int) -> Optional[Violation]:
        """Apply one decision; returns the first violation observed."""
        op, _, arg = decision.partition(":")
        if op == "put":
            key_s, _, value_s = arg.partition("-")
            self._issue(KVStoreService.put(
                f"k{int(key_s) % self.config.key_space}",
                int(value_s) % self.config.value_space,
                client_id="chk", request_id=self._next_id()))
        elif op == "cas":
            key_s, _, rest = arg.partition("-")
            expected_s, _, new_s = rest.partition("-")
            self._issue(KVStoreService.cas(
                f"k{int(key_s) % self.config.key_space}",
                int(expected_s) % self.config.value_space,
                int(new_s) % self.config.value_space,
                client_id="chk", request_id=self._next_id()))
        elif op == "get":
            self._issue(KVStoreService.get(
                f"k{int(arg) % self.config.key_space}",
                client_id="chk", request_id=self._next_id()))
        elif op in ("opt", "dup"):
            replica_s, _, index_s = arg.partition(",")
            replica = int(replica_s) % self.config.n_replicas
            if self.issued:
                command = self.issued[int(index_s) % len(self.issued)]
                # The engine drops duplicates of queued and recently
                # committed entries, which is itself under test here.
                self.engines[replica].speculate(command)
        elif op == "ord":
            if self.issued:
                command = self.issued[int(arg) % len(self.issued)]
                self._order(command)
        elif op == "adv":
            replica = int(arg) % self.config.n_replicas
            return self._advance(replica, step)
        else:
            raise SimulationError(f"unknown decision {decision!r}")
        return None

    def _order(self, command: Command) -> None:
        key = command_key(command)
        if key in self._ordered_keys:
            return  # consensus orders a command exactly once
        self._ordered_keys.add(key)
        self.order.append(command)
        self._reference_responses[key] = self._reference.execute(command)
        self._reference_snapshots.append(
            _canonical(self._reference.snapshot()))

    def _advance(self, replica: int, step: Optional[int]
                 ) -> Optional[Violation]:
        cursor = self.cursors[replica]
        if cursor >= len(self.order):
            return None  # nothing decided yet: deterministic no-op
        self.cursors[replica] = cursor + 1
        command = self.order[cursor]
        engine = self.engines[replica]
        result = engine.confirm([command])
        for released, response, _hit in result.released:
            key = command_key(released)
            reference = self._reference_responses[key]
            if response != reference:
                return Violation(
                    "response-divergence",
                    f"replica {replica} released {response!r} for "
                    f"{released.op}{released.args} at conservative position "
                    f"{cursor}; the reference order yields {reference!r}",
                    step)
        for rolled in result.respeculate:
            engine.speculate(rolled)
        return self._check_state(replica, step)

    # -------------------------------------------------------------- oracles

    def _check_state(self, replica: int, step: Optional[int]
                     ) -> Optional[Violation]:
        """Clean log => snapshot equals the reference prefix, bit for bit."""
        engine = self.engines[replica]
        if not engine.clean:
            return None
        snapshot = _canonical(self.services[replica].snapshot())
        reference = self._reference_snapshots[self.cursors[replica]]
        if snapshot != reference:
            return Violation(
                "state-divergence",
                f"replica {replica} at conservative position "
                f"{self.cursors[replica]} with a clean speculation log has "
                f"state {snapshot}, reference {reference}",
                step)
        return None

    def finish(self, step: Optional[int] = None) -> Optional[Violation]:
        """Order everything, drain every replica, check the final states."""
        for command in self.issued:
            self._order(command)
        for replica in range(self.config.n_replicas):
            while self.cursors[replica] < len(self.order):
                violation = self._advance(replica, step)
                if violation is not None:
                    return violation
        for replica, engine in enumerate(self.engines):
            if not engine.clean:
                return Violation(
                    "stale-speculation",
                    f"replica {replica} still holds {engine.uncommitted} "
                    f"uncommitted speculative entr(ies) after confirming "
                    f"the full conservative order",
                    step)
            violation = self._check_state(replica, step)
            if violation is not None:
                return violation
        return None


def run_spec_schedule(config: SpecCheckConfig,
                      decisions: List[str]) -> Optional[Violation]:
    """Deterministically run one decision list; first violation or None."""
    harness = SpecRollbackHarness(config)
    for step, decision in enumerate(decisions):
        violation = harness.apply(decision, step)
        if violation is not None:
            return violation
    return harness.finish(len(decisions))


# ------------------------------------------------------------- exploration

def generate_schedule(config: SpecCheckConfig,
                      rng: random.Random) -> List[str]:
    """One seeded random-walk schedule over the decision vocabulary."""
    decisions: List[str] = []
    for _ in range(config.schedule_length):
        roll = rng.random()
        if roll < 0.18:
            decisions.append(
                f"put:{rng.randrange(config.key_space)}-"
                f"{rng.randrange(config.value_space)}")
        elif roll < 0.34:
            decisions.append(
                f"cas:{rng.randrange(config.key_space)}-"
                f"{rng.randrange(config.value_space)}-"
                f"{rng.randrange(config.value_space)}")
        elif roll < 0.38:
            decisions.append(f"get:{rng.randrange(config.key_space)}")
        elif roll < 0.62:
            decisions.append(
                f"opt:{rng.randrange(config.n_replicas)},"
                f"{rng.randrange(max(1, config.schedule_length))}")
        elif roll < 0.66:
            decisions.append(
                f"dup:{rng.randrange(config.n_replicas)},"
                f"{rng.randrange(max(1, config.schedule_length))}")
        elif roll < 0.80:
            decisions.append(
                f"ord:{rng.randrange(max(1, config.schedule_length))}")
        else:
            decisions.append(f"adv:{rng.randrange(config.n_replicas)}")
    return decisions


def shrink_spec(config: SpecCheckConfig, decisions: List[str],
                max_candidates: int = 400,
                ) -> Tuple[List[str], Violation, int]:
    """ddmin-style shrink: drop chunks while some violation persists."""
    current = list(decisions)
    violation = run_spec_schedule(config, current)
    if violation is None:
        raise SimulationError("shrink_spec needs a violating schedule")
    tried = 0
    chunk = max(1, len(current) // 2)
    while tried < max_candidates:
        index = 0
        removed = False
        while index < len(current) and tried < max_candidates:
            candidate = current[:index] + current[index + chunk:]
            tried += 1
            found = run_spec_schedule(config, candidate)
            if found is not None:
                current, violation, removed = candidate, found, True
            else:
                index += chunk
        if chunk == 1 and not removed:
            break
        if not removed:
            chunk = max(1, chunk // 2)
    return current, violation, tried


@dataclass
class SpecCheckReport:
    """Everything one spec-rollback exploration produced."""

    config: SpecCheckConfig
    schedules_explored: int
    violation: Optional[Violation] = None
    decisions: Optional[List[str]] = None
    shrunk_decisions: Optional[List[str]] = None
    shrink_candidates: int = 0

    @property
    def ok(self) -> bool:
        return self.violation is None

    def describe(self) -> str:
        if self.ok:
            return (f"explored {self.schedules_explored} schedules: "
                    f"no violation")
        assert self.violation is not None
        return (f"explored {self.schedules_explored} schedules: "
                f"{self.violation.describe()}")


def run_spec_check(
    config: SpecCheckConfig,
    *,
    max_schedules: int = 200,
    seed: int = 0,
    shrink_counterexamples: bool = True,
    max_shrink_candidates: int = 400,
) -> SpecCheckReport:
    """Random-walk the schedule space; shrink the first counterexample."""
    for index in range(max_schedules):
        rng = random.Random(seed * 1_000_003 + index)
        decisions = generate_schedule(config, rng)
        violation = run_spec_schedule(config, decisions)
        if violation is None:
            continue
        report = SpecCheckReport(
            config=config,
            schedules_explored=index + 1,
            violation=violation,
            decisions=decisions,
        )
        if shrink_counterexamples:
            shrunk, shrunk_violation, tried = shrink_spec(
                config, decisions, max_candidates=max_shrink_candidates)
            report.shrunk_decisions = shrunk
            report.violation = shrunk_violation
            report.shrink_candidates = tried
        return report
    return SpecCheckReport(config=config, schedules_explored=max_schedules)


# ------------------------------------------------------------------ replay

def save_spec_replay(path: str, config: SpecCheckConfig,
                     decisions: List[str], violation: Violation) -> None:
    """Write a spec-rollback counterexample replay file."""
    document = {
        "version": _VERSION,
        "harness": REPLAY_HARNESS,
        "config": config.as_dict(),
        "decisions": list(decisions),
        "violation": {
            "kind": violation.kind,
            "message": violation.message,
            "step": violation.step,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def load_spec_replay(
        path: str) -> Tuple[SpecCheckConfig, List[str], Violation]:
    """Read a spec replay back into (config, decisions, violation)."""
    with open(path, "r", encoding="utf-8") as handle:
        document: Dict[str, Any] = json.load(handle)
    if document.get("harness") != REPLAY_HARNESS:
        raise SimulationError(
            f"{path} is not a {REPLAY_HARNESS} replay file")
    if document.get("version") != _VERSION:
        raise SimulationError(
            f"unsupported replay file version {document.get('version')!r}")
    config = SpecCheckConfig.from_dict(document["config"])
    recorded = document["violation"]
    violation = Violation(recorded["kind"], recorded["message"],
                          recorded.get("step"))
    return config, list(document["decisions"]), violation


def replay_spec(path: str) -> Optional[Violation]:
    """Re-run a recorded counterexample; the violation seen, or None if
    the recorded schedule no longer violates (e.g. the bug was fixed)."""
    config, decisions, _recorded = load_spec_replay(path)
    return run_spec_schedule(config, decisions)
