"""Effect independence relation for schedule-space pruning.

Two pending effects of *different* processes are **independent** when firing
them in either order reaches the same state — in which case the explorer does
not need to try both orders (sleep-set pruning, Godefroid 1996).  The relation
here is syntactic and sound:

- ``Work`` is independent with everything (it only advances local state).
- Effects whose primitive-handle target sets (see
  :func:`repro.core.effects.effect_targets`) are disjoint are independent:
  an ``Acquire``/``Release`` pair on different mutexes, ``Load``/``Store``/
  ``Cas`` on different atomic cells, ``Down``/``Up`` on different semaphores.
- Two ``Load`` effects commute even on the same cell (both only read).
- Anything else sharing a handle is conservatively dependent.

Soundness matters more than precision: declaring dependent effects
independent would prune real interleavings and could miss bugs; the reverse
only costs exploration time.
"""

from __future__ import annotations

from repro.core.effects import Effect, effect_is_read, effect_targets

__all__ = ["independent"]


def independent(first: Effect, second: Effect) -> bool:
    """True when the two effects commute (may skip exploring both orders)."""
    targets_first = effect_targets(first)
    if not targets_first:
        return True
    targets_second = effect_targets(second)
    if not targets_second:
        return True
    shared = False
    for handle in targets_first:
        for other in targets_second:
            if handle is other:
                shared = True
                break
        if shared:
            break
    if not shared:
        return True
    return effect_is_read(first) and effect_is_read(second)
