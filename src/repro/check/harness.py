"""Builds the program the model checker explores.

One :class:`CheckExecution` is one controlled run of the paper's
scheduler/worker loop (Algorithm 1): a scheduler process inserts a
deterministic command workload (plus one poison-pill write per worker so the
system drains and terminates), and ``workers`` worker processes loop
``get -> execute -> remove``.  Every COS operation reports to the
:class:`~repro.check.oracle.SpecOracle`; every scheduling decision is taken
externally through :meth:`CheckExecution.step`.

The same decision sequence over the same :class:`CheckConfig` replays
bit-for-bit: commands, processes and primitives are rebuilt identically, and
controlled mode contains no clock and no RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core import (
    AlwaysConflicts,
    ClassConflicts,
    ConflictRelation,
    ReadWriteConflicts,
    make_cos,
    read_write_classes,
)
from repro.core.command import Command
from repro.core.runtime import EffectGen
from repro.core.effects import Work
from repro.errors import CheckViolation, SimulationError
from repro.check.oracle import SpecOracle, Violation
from repro.sim.process import SimProcess
from repro.sim.runtime import SimRuntime
from repro.sim.simulator import Simulator

__all__ = ["CheckConfig", "CheckExecution", "run_with_decisions",
           "STOP_OP"]

#: Poison-pill operation inserted once per worker after the workload.  Pills
#: write, so they conflict with everything and drain after all real commands.
STOP_OP = "__check_stop__"


@dataclass(frozen=True)
class CheckConfig:
    """Parameters of one checkable program (JSON-serializable).

    ``mutant`` names a seeded-bug variant from :mod:`repro.check.mutants`
    (``None`` checks the real implementation).
    """

    algorithm: str = "lock-free"
    workers: int = 3
    commands: int = 5
    max_size: int = 4
    write_every: int = 2
    key_space: int = 4
    mutant: Optional[str] = None

    def normalized_algorithm(self) -> str:
        # The CLI accepts paper-style underscores (``lock_free``) too.
        return self.algorithm.replace("_", "-")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "workers": self.workers,
            "commands": self.commands,
            "max_size": self.max_size,
            "write_every": self.write_every,
            "key_space": self.key_space,
            "mutant": self.mutant,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CheckConfig":
        return CheckConfig(**data)


def _make_commands(config: CheckConfig) -> List[Command]:
    """Deterministic read/write mix (mirrors the fuzz tests' workload)."""
    commands = []
    for index in range(config.commands):
        is_write = (config.write_every > 0
                    and index % config.write_every == 0)
        commands.append(Command(
            op="add" if is_write else "contains",
            args=(index % config.key_space,),
            writes=is_write,
        ))
    return commands


def _conflict_relation(algorithm: str) -> ConflictRelation:
    """The conflict relation the *specification* judges the history by."""
    if algorithm == "sequential":
        return AlwaysConflicts()       # the FIFO baseline orders everything
    if algorithm == "class-based":
        return ClassConflicts(read_write_classes())
    return ReadWriteConflicts()


class CheckExecution:
    """One controlled execution of the scheduler/worker program."""

    def __init__(self, config: CheckConfig):
        self.config = config
        algorithm = config.normalized_algorithm()
        self.runtime = SimRuntime(Simulator(), preemption="controlled")
        self.conflicts = _conflict_relation(algorithm)
        if config.mutant is not None:
            from repro.check.mutants import make_mutant
            self.cos = make_mutant(config.mutant, self.runtime,
                                   self.conflicts, config.max_size,
                                   workers=config.workers)
        else:
            self.cos = make_cos(algorithm, self.runtime, self.conflicts,
                                max_size=config.max_size,
                                workers=config.workers)
        workload = _make_commands(config)
        pills = [Command(op=STOP_OP, writes=True)
                 for _ in range(config.workers)]
        self.commands = workload + pills
        self.oracle = SpecOracle(self.commands, self.conflicts,
                                 config.max_size)
        self.trace: List[str] = []
        self.violation: Optional[Violation] = None
        self.runtime.spawn(self._scheduler(), "scheduler")
        for index in range(config.workers):
            self.runtime.spawn(self._worker(), f"worker-{index}")

    # ------------------------------------------------------------- program

    def _insert(self, cmd: Command) -> EffectGen:
        yield from self.cos.insert(cmd)
        self.oracle.after_insert(cmd)
        stats = getattr(self.cos, "chain_stats_unsafe", None)
        if stats is not None:
            live, removed = stats()
            self.oracle.check_chain(cmd, live, removed)

    def _scheduler(self) -> EffectGen:
        for cmd in self.commands:
            yield from self._insert(cmd)

    def _worker(self) -> EffectGen:
        while True:
            handle = yield from self.cos.get()
            cmd = self.cos.command_of(handle)
            self.oracle.on_get(cmd)
            if cmd.op != STOP_OP:
                yield Work(1e-6)  # the command's execution, an interleaving point
            self.oracle.before_remove(cmd)
            yield from self.cos.remove(handle)
            self.oracle.after_remove(cmd)
            if cmd.op == STOP_OP:
                return

    # ------------------------------------------------------------- driving

    def runnable(self) -> List[SimProcess]:
        if self.violation is not None:
            return []
        return self.runtime.runnable_processes()

    def pending_effect(self, proc: SimProcess):
        return self.runtime.pending_effect(proc)

    def step(self, proc: SimProcess) -> None:
        """Fire ``proc``'s next effect, recording the decision and trapping
        oracle violations and algorithm crashes at this exact step."""
        step_index = len(self.trace)
        self.trace.append(proc.name)
        try:
            self.runtime.controlled_step(proc)
        except CheckViolation as violation:
            self.violation = Violation(violation.kind, str(violation),
                                       step=step_index)
        except Exception as error:  # noqa: BLE001 - report algorithm crashes
            self.violation = Violation(
                "crash", f"{type(error).__name__}: {error}", step=step_index)

    def step_by_name(self, name: str) -> bool:
        """Fire the runnable process called ``name``; False if not runnable."""
        for proc in self.runnable():
            if proc.name == name:
                self.step(proc)
                return True
        return False

    # ------------------------------------------------------------- verdict

    def terminal_violation(self) -> Optional[Violation]:
        """The schedule's verdict once no process is runnable.

        A mid-schedule oracle violation wins; otherwise any still-live
        blocked process is a deadlock (or a lost wakeup: a ``ready`` credit
        that was never published); otherwise the end-of-schedule
        completeness checks run.
        """
        if self.violation is not None:
            return self.violation
        blocked = self.runtime.blocked_processes()
        if blocked:
            parked = ", ".join(
                f"{proc.name} on {self.runtime.blocking_effect(proc)!r}"
                for proc in blocked)
            return Violation(
                "deadlock",
                f"no process is runnable but {len(blocked)} are blocked "
                f"(deadlock or lost wakeup): {parked}",
                step=len(self.trace))
        return self.oracle.final_check()


def run_with_decisions(
    config: CheckConfig,
    decisions: Sequence[str],
    *,
    strict: bool = True,
    max_steps: int = 50_000,
) -> CheckExecution:
    """Replay a decision sequence (process names) over a fresh execution.

    With ``strict=True`` a decision naming a process that is not runnable
    raises :class:`~repro.errors.SimulationError` — the counterexample
    replay guarantee.  With ``strict=False`` (shrink candidates) such
    decisions fall back to the first runnable process, and after the
    sequence runs out the schedule is completed with the same first-runnable
    default policy.
    """
    exe = CheckExecution(config)
    for name in decisions:
        if exe.violation is not None or not exe.runnable():
            break
        if not exe.step_by_name(name):
            if strict:
                runnable = [proc.name for proc in exe.runnable()]
                raise SimulationError(
                    f"replay diverged at step {len(exe.trace)}: {name!r} is "
                    f"not runnable (runnable: {runnable})")
            exe.step(exe.runnable()[0])
    while (exe.violation is None and exe.runnable()
           and len(exe.trace) < max_steps):
        exe.step(exe.runnable()[0])
    return exe
