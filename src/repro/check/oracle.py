"""Executable COS sequential specification (paper §3.3) as a schedule oracle.

The checker harness reports every COS operation it completes to a
:class:`SpecOracle`, which validates the observed history against the
sequential specification:

- ``get`` returns a command at most once (**double-get**);
- ``get`` returns ``c`` only when every conflicting command delivered before
  ``c`` has left the structure, i.e. its ``remove`` has begun — the worker
  has finished executing it (**conflict-order**; this subsumes FIFO order
  within conflict classes, because commands of one class pairwise conflict);
- the live population — inserts completed minus removes completed — never
  exceeds the structure's capacity (**bounded-size**);
- for the lazy lock-free graph, the arrival list immediately after an
  ``insert`` completes holds at most ``max_size`` nodes: the single-writer
  traversal must have unlinked every logically removed node it passed
  (**graph-leak**, the ``chain_stats_unsafe`` bound);
- at the end of a schedule every delivered command was returned by ``get``
  and removed exactly once (**lost-command**).

Violations are raised as :class:`~repro.errors.CheckViolation` the moment
they are observed, so the explorer can stop the schedule at the exact
offending step — which also gives the shrinker a tight truncation point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.command import Command, ConflictRelation
from repro.errors import CheckViolation

__all__ = ["SpecOracle", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One specification violation found in an explored schedule.

    Attributes:
        kind: Machine-readable class, matching
            :class:`~repro.errors.CheckViolation` kinds.
        message: Human-readable description with the offending commands.
        step: Index into the decision sequence at which the violation was
            observed, or ``None`` for end-of-schedule checks.
    """

    kind: str
    message: str
    step: Optional[int] = None

    def describe(self) -> str:
        at = "" if self.step is None else f" at step {self.step}"
        return f"[{self.kind}]{at}: {self.message}"


class SpecOracle:
    """Checks one controlled execution against the COS specification."""

    def __init__(self, commands: Sequence[Command],
                 conflicts: ConflictRelation, max_size: int):
        self._conflicts = conflicts
        self._max_size = max_size
        # Delivery order is the scheduler's (sequential) insert order.
        self._delivery: Dict[int, int] = {
            cmd.uid: index for index, cmd in enumerate(commands)}
        self._commands: List[Command] = list(commands)
        self._inserted_done: Dict[int, bool] = {}
        self._got: Dict[int, bool] = {}
        self._removed_started: Dict[int, bool] = {}
        self._removed_done: Dict[int, bool] = {}

    # ------------------------------------------------------------- op hooks

    def after_insert(self, cmd: Command) -> None:
        self._inserted_done[cmd.uid] = True
        live = len(self._inserted_done) - len(self._removed_done)
        if live > self._max_size:
            raise CheckViolation(
                "bounded-size",
                f"{live} commands resident after inserting {cmd!r}, but "
                f"max_size={self._max_size}")

    def check_chain(self, cmd: Command, live: int, removed: int) -> None:
        """Lock-free lazy-removal bound, checked right after an insert:
        the traversal just unlinked every node it saw logically removed, so
        the whole arrival list fits in the capacity."""
        if live + removed > self._max_size:
            raise CheckViolation(
                "graph-leak",
                f"arrival list holds {live} live + {removed} logically "
                f"removed nodes after inserting {cmd!r}, but "
                f"max_size={self._max_size}: helped removal is not "
                f"unlinking garbage")

    def on_get(self, cmd: Command) -> None:
        if cmd.uid in self._got:
            raise CheckViolation(
                "double-get", f"get() returned {cmd!r} twice")
        if cmd.uid not in self._delivery:
            raise CheckViolation(
                "double-get", f"get() returned unknown command {cmd!r}")
        my_index = self._delivery[cmd.uid]
        for other in self._commands[:my_index]:
            if not self._conflicts.conflicts(other, cmd):
                continue
            if other.uid not in self._removed_started:
                raise CheckViolation(
                    "conflict-order",
                    f"get() returned {cmd!r} while conflicting predecessor "
                    f"{other!r} (delivered earlier) is still in the "
                    f"structure")
        self._got[cmd.uid] = True

    def before_remove(self, cmd: Command) -> None:
        if cmd.uid not in self._got:
            raise CheckViolation(
                "invalid-remove", f"remove() of never-returned {cmd!r}")
        if cmd.uid in self._removed_started:
            raise CheckViolation(
                "invalid-remove", f"remove() of already-removed {cmd!r}")
        self._removed_started[cmd.uid] = True

    def after_remove(self, cmd: Command) -> None:
        self._removed_done[cmd.uid] = True

    # --------------------------------------------------------- final checks

    def final_check(self) -> Optional[Violation]:
        """End-of-schedule completeness: everything executed exactly once."""
        for cmd in self._commands:
            if cmd.uid not in self._got:
                return Violation(
                    "lost-command",
                    f"{cmd!r} was delivered but never returned by get()")
            if cmd.uid not in self._removed_done:
                return Violation(
                    "lost-command", f"{cmd!r} was executed but never removed")
        return None
