"""Randomized checking of the cross-partition rendezvous merge rule.

The COS checker (:mod:`repro.check.harness`) enumerates thread schedules
and the lease harness (:mod:`repro.check.paxos_lease`) walks clock/network
interleavings; the partitioned-ordering hazard is different again: every
replica consumes the *same* per-group consensus logs, but each replica
interleaves the groups' streams in its own order.  The merge rule
(:class:`~repro.groups.merge.GroupMerger`) must make the per-class release
order — and every cross-partition command's merged position — a pure
function of the group logs, independent of that interleaving
(docs/partitioning.md).

This harness drives ``n_replicas`` pure mergers over shared per-group logs
under a seeded random walk with an explicit decision vocabulary:

=============== ======================================================
``sp:K``        append a single-partition write on key ``K`` to its
                owning group's log
``xp:K1-K2``    append a (usually) cross-partition write on two keys —
                one rendezvous marker per involved group's log
``dup:G``       re-append group ``G``'s most recent marker (at-least-once
                client retransmission reaching one group twice)
``adv:R,G``     replica ``R`` consumes the next item of group ``G``'s log
=============== ======================================================

Decisions that cannot apply (advancing past the end of a log, ``dup`` with
no marker) are deterministic no-ops, so recorded decision lists replay
bit-for-bit.  Four oracles run as the walk progresses:

- **position-divergence**: two replicas assign different merged positions
  to the same command;
- **class-divergence**: one conflict class's release history at some
  replica is not a prefix of another replica's (conflicting commands
  released in different orders);
- **fifo-violation**: within one replica, releases anchored in a group do
  not follow that group's consensus order (merged-position monotonicity);
- **incomplete-merge** (end of run): after every replica consumed every
  log in full, a merger still holds unreleased items, or the replicas'
  final positions/histories differ anywhere.

Checker self-validation uses :data:`GROUPS_MUTANTS` — seeded merge bugs
the walk must catch within a bounded budget (``groups-skip-hold`` releases
a rendezvous as soon as any one copy surfaces; see
tests/test_groups_check.py).  Counterexamples are shrunk ddmin-style and
frozen into replay files marked ``"harness": "groups-rendezvous"``.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.check.oracle import Violation
from repro.core.command import Command, MultiKeyedConflicts
from repro.errors import SimulationError
from repro.groups.merge import Emission, GroupMerger, SkipHoldMerger
from repro.groups.messages import Rendezvous, rendezvous_xid
from repro.groups.partition import PartitionMap

__all__ = [
    "GROUPS_MUTANTS",
    "GroupsCheckConfig",
    "GroupsCheckReport",
    "RendezvousHarness",
    "load_groups_replay",
    "replay_groups",
    "run_groups_check",
    "run_groups_schedule",
    "save_groups_replay",
    "shrink_groups",
]

#: Value of the ``"harness"`` key in this module's replay files.
REPLAY_HARNESS = "groups-rendezvous"

_VERSION = 1

#: Rendezvous-harness mutants, deliberately separate from the COS and
#: lease registries (different harness, different oracles).
GROUPS_MUTANTS = {
    "groups-skip-hold": SkipHoldMerger,
}


@dataclass
class GroupsCheckConfig:
    """Parameters of one rendezvous-harness run (fully determines it)."""

    n_groups: int = 2
    n_replicas: int = 3
    key_space: int = 8
    schedule_length: int = 100
    mutant: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GroupsCheckConfig":
        return cls(**data)

    def make_merger(self, conflicts: MultiKeyedConflicts) -> GroupMerger:
        cls: type = GroupMerger
        if self.mutant is not None:
            try:
                cls = GROUPS_MUTANTS[self.mutant]
            except KeyError:
                raise ValueError(
                    f"unknown groups mutant {self.mutant!r}; expected one "
                    f"of {sorted(GROUPS_MUTANTS)}") from None
        return cls(self.n_groups, record_history=True, conflicts=conflicts)


class RendezvousHarness:
    """``n_replicas`` mergers consuming shared per-group consensus logs."""

    def __init__(self, config: GroupsCheckConfig):
        self.config = config
        self.conflicts = MultiKeyedConflicts()
        self.partition_map = PartitionMap(self.conflicts, config.n_groups)
        self.mergers: List[GroupMerger] = [
            config.make_merger(self.conflicts)
            for _ in range(config.n_replicas)
        ]
        #: The groups' consensus orders — one shared log per group; every
        #: replica consumes the same logs (that is what consensus gives).
        self.logs: List[List[Any]] = [[] for _ in range(config.n_groups)]
        self.cursors: List[List[int]] = [
            [0] * config.n_groups for _ in range(config.n_replicas)]
        self._seq = 0
        #: Per replica: anchor group -> index of its latest release there
        #: (merged positions must be monotone per anchor group).
        self._last_index: List[Dict[int, int]] = [
            {} for _ in range(config.n_replicas)]

    # ------------------------------------------------------------ commands

    def _command(self, keys: Tuple[int, ...]) -> Command:
        self._seq += 1
        return Command(
            op="add-all" if len(keys) > 1 else "add",
            args=keys,
            client_id="chk",
            request_id=self._seq,
            writes=True,
        )

    def _append(self, keys: Tuple[int, ...]) -> None:
        command = self._command(keys)
        groups = self.partition_map.groups_of(command)
        if len(groups) == 1:
            self.logs[groups[0]].append(command)
            return
        marker = Rendezvous(rendezvous_xid(command), groups, command)
        for group in groups:
            self.logs[group].append(marker)

    # ------------------------------------------------------------ decisions

    def apply(self, decision: str, step: int) -> Optional[Violation]:
        """Apply one decision; returns the first violation observed."""
        op, _, arg = decision.partition(":")
        if op == "sp":
            self._append((int(arg) % self.config.key_space,))
        elif op == "xp":
            first, _, second = arg.partition("-")
            k1 = int(first) % self.config.key_space
            k2 = int(second) % self.config.key_space
            self._append((k1,) if k1 == k2 else (k1, k2))
        elif op == "dup":
            log = self.logs[int(arg) % self.config.n_groups]
            marker = next((item for item in reversed(log)
                           if isinstance(item, Rendezvous)), None)
            if marker is not None:
                log.append(marker)
        elif op == "adv":
            replica_s, _, group_s = arg.partition(",")
            replica = int(replica_s) % self.config.n_replicas
            group = int(group_s) % self.config.n_groups
            violation = self._advance(replica, group, step)
            if violation is not None:
                return violation
        else:
            raise SimulationError(f"unknown decision {decision!r}")
        return self._check_agreement(step)

    def _advance(self, replica: int, group: int,
                 step: Optional[int]) -> Optional[Violation]:
        cursor = self.cursors[replica][group]
        if cursor >= len(self.logs[group]):
            return None  # nothing left: deterministic no-op
        self.cursors[replica][group] = cursor + 1
        emissions = self.mergers[replica].offer(
            group, self.logs[group][cursor])
        return self._check_fifo(replica, emissions, step)

    # -------------------------------------------------------------- oracles

    def _check_fifo(self, replica: int, emissions: List[Emission],
                    step: Optional[int]) -> Optional[Violation]:
        last = self._last_index[replica]
        for emission in emissions:
            anchor, index = emission.position
            previous = last.get(anchor)
            if previous is not None and index <= previous:
                return Violation(
                    "fifo-violation",
                    f"replica {replica} released position "
                    f"{emission.position} after index {previous} of group "
                    f"{anchor} was already released",
                    step)
            last[anchor] = index
        return None

    def _check_agreement(self, step: Optional[int]) -> Optional[Violation]:
        positions = [merger.positions for merger in self.mergers]
        for replica, mine in enumerate(positions):
            for other in range(replica + 1, len(positions)):
                theirs = positions[other]
                for key, position in mine.items():
                    recorded = theirs.get(key)
                    if recorded is not None and recorded != position:
                        return Violation(
                            "position-divergence",
                            f"command {key} merged at {position} on "
                            f"replica {replica} but {recorded} on replica "
                            f"{other}",
                            step)
        histories = [merger.class_history for merger in self.mergers]
        classes = set()
        for history in histories:
            classes.update(history)
        for class_key in classes:
            per_replica = [history.get(class_key, [])
                           for history in histories]
            reference = max(per_replica, key=len)
            for replica, history in enumerate(per_replica):
                if history != reference[:len(history)]:
                    return Violation(
                        "class-divergence",
                        f"class {class_key!r} released as {history} on "
                        f"replica {replica}, not a prefix of {reference}",
                        step)
        return None

    def finish(self, step: Optional[int] = None) -> Optional[Violation]:
        """Force-drain every replica and check end-of-run completeness."""
        for replica in range(self.config.n_replicas):
            for group in range(self.config.n_groups):
                while self.cursors[replica][group] < len(self.logs[group]):
                    violation = self._advance(replica, group, step)
                    if violation is not None:
                        return violation
        violation = self._check_agreement(step)
        if violation is not None:
            return violation
        for replica, merger in enumerate(self.mergers):
            if not merger.idle():
                return Violation(
                    "incomplete-merge",
                    f"replica {replica} still holds unreleased items after "
                    f"consuming every group log in full",
                    step)
        reference = self.mergers[0]
        for replica, merger in enumerate(self.mergers[1:], start=1):
            if merger.positions != reference.positions:
                return Violation(
                    "position-divergence",
                    f"final merged positions differ between replica 0 and "
                    f"replica {replica}",
                    step)
            if merger.class_history != reference.class_history:
                return Violation(
                    "class-divergence",
                    f"final per-class histories differ between replica 0 "
                    f"and replica {replica}",
                    step)
        return None


def run_groups_schedule(config: GroupsCheckConfig,
                        decisions: List[str]) -> Optional[Violation]:
    """Deterministically run one decision list; first violation or None."""
    harness = RendezvousHarness(config)
    for step, decision in enumerate(decisions):
        violation = harness.apply(decision, step)
        if violation is not None:
            return violation
    return harness.finish(len(decisions))


# ------------------------------------------------------------- exploration

def generate_schedule(config: GroupsCheckConfig,
                      rng: random.Random) -> List[str]:
    """One seeded random-walk schedule over the decision vocabulary."""
    decisions: List[str] = []
    for _ in range(config.schedule_length):
        roll = rng.random()
        if roll < 0.50:
            decisions.append(
                f"adv:{rng.randrange(config.n_replicas)},"
                f"{rng.randrange(config.n_groups)}")
        elif roll < 0.70:
            decisions.append(f"sp:{rng.randrange(config.key_space)}")
        elif roll < 0.95:
            decisions.append(
                f"xp:{rng.randrange(config.key_space)}-"
                f"{rng.randrange(config.key_space)}")
        else:
            decisions.append(f"dup:{rng.randrange(config.n_groups)}")
    return decisions


def shrink_groups(config: GroupsCheckConfig, decisions: List[str],
                  max_candidates: int = 400,
                  ) -> Tuple[List[str], Violation, int]:
    """ddmin-style shrink: drop chunks while some violation persists."""
    current = list(decisions)
    violation = run_groups_schedule(config, current)
    if violation is None:
        raise SimulationError("shrink_groups needs a violating schedule")
    tried = 0
    chunk = max(1, len(current) // 2)
    while tried < max_candidates:
        index = 0
        removed = False
        while index < len(current) and tried < max_candidates:
            candidate = current[:index] + current[index + chunk:]
            tried += 1
            found = run_groups_schedule(config, candidate)
            if found is not None:
                current, violation, removed = candidate, found, True
            else:
                index += chunk
        if chunk == 1 and not removed:
            break
        if not removed:
            chunk = max(1, chunk // 2)
    return current, violation, tried


@dataclass
class GroupsCheckReport:
    """Everything one rendezvous-harness exploration produced."""

    config: GroupsCheckConfig
    schedules_explored: int
    violation: Optional[Violation] = None
    decisions: Optional[List[str]] = None
    shrunk_decisions: Optional[List[str]] = None
    shrink_candidates: int = 0

    @property
    def ok(self) -> bool:
        return self.violation is None

    def describe(self) -> str:
        if self.ok:
            return (f"explored {self.schedules_explored} schedules: "
                    f"no violation")
        assert self.violation is not None
        return (f"explored {self.schedules_explored} schedules: "
                f"{self.violation.describe()}")


def run_groups_check(
    config: GroupsCheckConfig,
    *,
    max_schedules: int = 200,
    seed: int = 0,
    shrink_counterexamples: bool = True,
    max_shrink_candidates: int = 400,
) -> GroupsCheckReport:
    """Random-walk the schedule space; shrink the first counterexample."""
    for index in range(max_schedules):
        rng = random.Random(seed * 1_000_003 + index)
        decisions = generate_schedule(config, rng)
        violation = run_groups_schedule(config, decisions)
        if violation is None:
            continue
        report = GroupsCheckReport(
            config=config,
            schedules_explored=index + 1,
            violation=violation,
            decisions=decisions,
        )
        if shrink_counterexamples:
            shrunk, shrunk_violation, tried = shrink_groups(
                config, decisions, max_candidates=max_shrink_candidates)
            report.shrunk_decisions = shrunk
            report.violation = shrunk_violation
            report.shrink_candidates = tried
        return report
    return GroupsCheckReport(config=config, schedules_explored=max_schedules)


# ------------------------------------------------------------------ replay

def save_groups_replay(path: str, config: GroupsCheckConfig,
                       decisions: List[str], violation: Violation) -> None:
    """Write a rendezvous-harness counterexample replay file."""
    document = {
        "version": _VERSION,
        "harness": REPLAY_HARNESS,
        "config": config.as_dict(),
        "decisions": list(decisions),
        "violation": {
            "kind": violation.kind,
            "message": violation.message,
            "step": violation.step,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def load_groups_replay(
        path: str) -> Tuple[GroupsCheckConfig, List[str], Violation]:
    """Read a groups replay back into (config, decisions, violation)."""
    with open(path, "r", encoding="utf-8") as handle:
        document: Dict[str, Any] = json.load(handle)
    if document.get("harness") != REPLAY_HARNESS:
        raise SimulationError(
            f"{path} is not a {REPLAY_HARNESS} replay file")
    if document.get("version") != _VERSION:
        raise SimulationError(
            f"unsupported replay file version {document.get('version')!r}")
    config = GroupsCheckConfig.from_dict(document["config"])
    recorded = document["violation"]
    violation = Violation(recorded["kind"], recorded["message"],
                          recorded.get("step"))
    return config, list(document["decisions"]), violation


def replay_groups(path: str) -> Optional[Violation]:
    """Re-run a recorded counterexample; the violation seen, or None if
    the recorded schedule no longer violates (e.g. the bug was fixed)."""
    config, decisions, _recorded = load_groups_replay(path)
    return run_groups_schedule(config, decisions)
