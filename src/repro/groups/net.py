"""Partitioned replica process: N consensus groups behind one TCP endpoint.

:class:`GroupedReplicaServer` is the grouped counterpart of
:class:`~repro.net.replica.ReplicaServer`: one OS process per replica, but
hosting one protocol node *per consensus group*, all of them sharing a
single :class:`~repro.net.transport.TcpTransport` endpoint.  On the wire
every protocol message travels wrapped in a
:class:`~repro.net.messages.GroupEnvelope`; the transport interceptor
demultiplexes inbound envelopes into per-group inbox queues, and a
per-group channel adapter wraps outbound messages symmetrically.  The
group streams feed one :class:`~repro.groups.replica.GroupedReplica`,
which merges them deterministically (docs/partitioning.md).

Client traffic: the interceptor is also the partition-aware router — an
incoming :class:`~repro.net.messages.ClientRequest` batch is split by
:class:`~repro.groups.partition.PartitionMap`; single-partition sub-batches
are submitted to the owning group's node (read-only sub-batches through
the lease fast path), and each cross-partition command becomes a
:class:`~repro.groups.messages.Rendezvous` marker submitted to every
involved group.  The marker rides each group's normal ordering: no extra
consensus round is introduced.

Run one as a process with ``python -m repro net replica`` against a config
whose ``n_groups > 1``, or spawn a fleet with ``python -m repro net
group-supervise``.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.apps import build_service
from repro.broadcast import MultiPaxos, SequencerBroadcast, ThreadedNode
from repro.core.command import Command
from repro.errors import ConfigurationError, ShutdownError
from repro.groups.messages import Rendezvous, rendezvous_xid
from repro.groups.partition import PartitionMap
from repro.groups.replica import GroupedReplica
from repro.net.config import NetConfig
from repro.net.messages import ClientRequest, ClientResponse, GroupEnvelope
from repro.net.transport import TcpTransport
from repro.obs import MetricsHTTPServer, MetricsRegistry, SnapshotWriter

__all__ = ["GroupedReplicaServer"]


class _GroupChannel:
    """One group's transport view over the replica's shared TCP transport.

    Satisfies exactly the contract :class:`ThreadedNode` needs — an
    ``inbox(node_id)`` queue and a ``send(src, dst, msg)`` — while the
    actual socket work happens on the shared transport.  Outbound messages
    are wrapped in a :class:`GroupEnvelope`; inbound ones arrive already
    unwrapped via :meth:`deliver` (the server's interceptor).
    """

    def __init__(self, transport: TcpTransport, group: int):
        self._transport = transport
        self.group = group
        self._inbox: "queue.Queue[Tuple[int, Any]]" = queue.Queue()

    def inbox(self, node_id: int) -> "queue.Queue[Tuple[int, Any]]":
        del node_id  # one node per (group, process); no routing needed
        return self._inbox

    def send(self, src: int, dst: int, msg: Any) -> None:
        self._transport.send(src, dst, GroupEnvelope(self.group, msg))

    def deliver(self, src: int, msg: Any) -> None:
        self._inbox.put((src, msg))


class GroupedReplicaServer:
    """N protocol nodes + one merged execution engine on a TCP endpoint."""

    def __init__(self, replica_id: int, config: NetConfig):
        config.validate()
        if config.n_groups < 2:
            raise ConfigurationError(
                "GroupedReplicaServer needs n_groups >= 2; use "
                "ReplicaServer for single-group deployments")
        if not 0 <= replica_id < config.n_replicas:
            raise ConfigurationError(
                f"replica_id {replica_id} out of range for "
                f"{config.n_replicas} replicas")
        self.replica_id = replica_id
        self.config = config
        self.registry = MetricsRegistry(trace=config.trace)
        self.service = build_service(config.service)
        # Raises ConfigurationError when the service's conflict relation
        # cannot provide footprints (routing soundness; docs/partitioning.md).
        self.partition_map = PartitionMap(
            self.service.conflicts, config.n_groups)
        self.grouped = GroupedReplica(
            replica_id,
            self.service,
            self.partition_map,
            cos_algorithm=config.cos_algorithm,
            workers=config.workers,
            max_graph_size=config.max_graph_size,
            record_history=config.record_merge_history,
            on_response=self._respond,
            registry=self.registry,
        )
        self._metrics_server: Optional[MetricsHTTPServer] = None
        self._snapshot_writer: Optional[SnapshotWriter] = None
        self.transport = TcpTransport(
            replica_id,
            config.address_map(),
            interceptor=self._intercept,
            seed=replica_id,
            registry=self.registry,
            wire=config.wire,
        )
        self._channels: List[_GroupChannel] = [
            _GroupChannel(self.transport, group)
            for group in range(config.n_groups)
        ]
        self.nodes: List[ThreadedNode] = [
            self._build_node(group) for group in range(config.n_groups)
        ]
        # client_id -> transport node id of the client's response endpoint.
        self._reply_to: Dict[str, int] = {}
        self._reply_lock = threading.Lock()
        self._started = False

    # --------------------------------------------------------------- builders

    def _build_protocol(self) -> Any:
        if self.config.protocol == "sequencer":
            return SequencerBroadcast(self.replica_id, self.config.n_replicas)
        linger = self.config.propose_linger
        if linger is None:
            linger = self.config.heartbeat_interval / 10
        # Same staggering as ReplicaServer; every group staggers alike, so
        # group leaderships co-locate in steady state but fail over
        # independently (docs/partitioning.md).
        return MultiPaxos(
            self.replica_id,
            self.config.n_replicas,
            batch_size=self.config.batch_size,
            heartbeat_interval=self.config.heartbeat_interval,
            leader_timeout=self.config.leader_timeout
            * (1 + 0.35 * self.replica_id),
            propose_linger=linger,
            cumulative_acks=self.config.cumulative_acks,
            lease_duration=self.config.lease_duration,
            lease_margin=self.config.lease_margin,
            lease_reads=self.config.lease_reads,
            registry=self.registry,
        )

    def _build_node(self, group: int) -> ThreadedNode:
        def on_deliver(instance: int, payload: Any,
                       _group: int = group) -> None:
            self.grouped.on_group_deliver(_group, instance, payload)

        def on_read(payload: Any, _group: int = group) -> None:
            self.grouped.on_group_read(_group, payload)

        return ThreadedNode(
            self.replica_id,
            self._build_protocol(),
            self._channels[group],
            on_deliver,
            name=f"net-group{group}-node-{self.replica_id}",
            on_read=on_read,
        )

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "GroupedReplicaServer":
        if self._started:
            raise ShutdownError("replica server already started")
        self._started = True
        self.transport.start()
        if self.config.metrics_addresses:
            host, port = self.config.metrics_addresses[self.replica_id]
            self._metrics_server = MetricsHTTPServer(
                self.registry, host=host, port=port).start()
        if self.config.metrics_snapshot_dir:
            path = os.path.join(
                self.config.metrics_snapshot_dir,
                f"replica-{self.replica_id}-metrics.json")
            self._snapshot_writer = SnapshotWriter(
                self.registry, path,
                interval=self.config.metrics_snapshot_interval).start()
        self.grouped.start()
        for node in self.nodes:
            node.start()
        return self

    def stop(self) -> None:
        """Graceful teardown: event loops, sockets, then workers."""
        for node in self.nodes:
            node.stop()
        self.transport.close()
        self.grouped.stop(timeout=2.0)
        if self._snapshot_writer is not None:
            self._snapshot_writer.stop()
            self._snapshot_writer = None
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None

    def __enter__(self) -> "GroupedReplicaServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and all(node.running for node in self.nodes)

    @property
    def replica(self) -> GroupedReplica:
        """Execution engine (TcpCluster helper parity with ReplicaServer)."""
        return self.grouped

    @property
    def metrics_address(self) -> Optional[Any]:
        if self._metrics_server is None:
            return None
        return self._metrics_server.address

    # ------------------------------------------------------------ client path

    def _intercept(self, src: int, msg: Any) -> bool:
        """Transport hook: demux group envelopes, route client batches."""
        if isinstance(msg, GroupEnvelope):
            if 0 <= msg.group < len(self._channels):
                self._channels[msg.group].deliver(src, msg.msg)
            return True  # out-of-range group: corrupt peer, drop
        if not isinstance(msg, ClientRequest):
            return False
        self.transport.add_peer(msg.reply_to, msg.reply_host, msg.reply_port)
        with self._reply_lock:
            self._reply_to[msg.client_id] = msg.reply_to
        try:
            self._route(msg.payload)
        except ShutdownError:
            pass  # stopping; the client will retry elsewhere
        return True

    def _route(self, payload: Tuple[Command, ...]) -> None:
        """Partition-aware submit: split a client batch by owning group."""
        singles: Dict[int, List[Command]] = {}
        cross: List[Tuple[Tuple[int, ...], Command]] = []
        for command in payload:
            groups = self.partition_map.groups_of(command)
            if len(groups) == 1:
                singles.setdefault(groups[0], []).append(command)
            else:
                cross.append((groups, command))
        for group, commands in singles.items():
            batch = tuple(commands)
            if (self.config.lease_reads
                    and all(not c.writes for c in commands)):
                self.nodes[group].submit_read(batch)
            else:
                self.nodes[group].submit(batch)
        for groups, command in cross:
            marker = Rendezvous(rendezvous_xid(command), groups, command)
            for group in groups:
                self.nodes[group].submit((marker,))

    def _respond(self, command: Command, response: Any,
                 replica_id: int) -> None:
        if command.client_id is None:
            return
        with self._reply_lock:
            reply_to = self._reply_to.get(command.client_id)
        if reply_to is None:
            # This replica never saw the client directly; the contact
            # replica — which has the mapping — answers instead.
            return
        try:
            self.transport.send(
                self.replica_id, reply_to,
                ClientResponse(command, response, self.replica_id))
        except ShutdownError:
            pass
