"""Partitioned SMR: one consensus group per state partition.

Everything below one Multi-Paxos group scales a *replica* (schedulers,
worker pools, shard processes); aggregate ordering throughput is still
capped by that one group's pipeline.  This package shards the ordering
layer itself, following the P-SMR/S-SMR line the source paper builds on
(Marandi et al., *Rethinking State-Machine Replication for Parallelism*;
see docs/partitioning.md):

- a :class:`~repro.groups.partition.PartitionMap` routes commands to
  groups by conflict-class footprint (the partitioned analogue of
  ``repro.par``'s :func:`~repro.core.command.stable_hash` shard routing);
- single-partition commands are ordered by their group alone — each group
  is a full Multi-Paxos instance with its own leases, cumulative acks and
  propose linger;
- cross-partition commands rendezvous: a hold marker is ordered in every
  involved group, and each replica's
  :class:`~repro.groups.merge.GroupMerger` releases the command only when
  all involved groups delivered their marker, at a merged position all
  replicas agree on (lowest involved group id, that group's sequence) —
  no extra consensus round;
- a :class:`~repro.groups.cluster.GroupedCluster` wires N such groups to
  in-process replicas; :mod:`repro.groups.net` deploys the same topology
  over TCP (``python -m repro net group-supervise``).
"""

from repro.groups.cluster import GroupedCluster, GroupsConfig
from repro.groups.merge import Emission, GroupMerger, SkipHoldMerger
from repro.groups.messages import Rendezvous, rendezvous_xid
from repro.groups.partition import PartitionMap
from repro.groups.replica import GroupedReplica

__all__ = [
    "Emission",
    "GroupMerger",
    "GroupedCluster",
    "GroupedReplica",
    "GroupsConfig",
    "PartitionMap",
    "Rendezvous",
    "SkipHoldMerger",
    "rendezvous_xid",
]
