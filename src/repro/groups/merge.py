"""Deterministic merge of N ordered group streams into one execution feed.

Each replica runs one :class:`GroupMerger`.  The merger consumes every
group's consensus output in order (``offer``) and releases commands to the
replica's Conflict-Ordered Set:

- a single-partition command is released immediately — its group's
  consensus order *is* its class order;
- a cross-partition :class:`~repro.groups.messages.Rendezvous` marker
  **holds** its group's stream.  The command is released exactly once, when
  every involved group's copy of the marker has reached the head of its
  stream; its merged position is the marker's sequence in the *lowest*
  involved group — a pure function of the groups' consensus orders, so all
  replicas agree without exchanging a single message.

Safety: the release rule never lets any group's stream overtake a hold, so
within each group the released order equals the consensus order; since
conflicting commands always share a group (or a rendezvous covering both —
see :class:`~repro.groups.partition.PartitionMap`), every pair of
conflicting commands is released in the same order at every replica.
Liveness requires each marker to be ordered in *all* its groups; that is
the submitter's at-least-once obligation (client retransmission), and
xid dedup makes the extra copies harmless: a bounded per-group window of
recently seen xids absorbs the common case, and the authoritative
released-xid set absorbs copies that arrive after the window rolled over
— a late copy queued as live would hold its group's stream forever
(docs/partitioning.md).

The merger is pure and single-threaded by design: callers serialize
``offer`` calls (the grouped replica holds one lock across all group
streams), and the model-checking harness
(:mod:`repro.check.groups_rendezvous`) drives it directly.
:class:`SkipHoldMerger` is that harness's seeded mutant.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.command import Command, ConflictRelation
from repro.errors import ConfigurationError, SimulationError
from repro.groups.messages import Rendezvous

__all__ = ["Emission", "GroupMerger", "SkipHoldMerger", "command_key"]

#: Per-group window of recently seen rendezvous xids: extra copies of a
#: marker (client retransmission racing its own success) are dropped on
#: arrival instead of waiting for partners that will never come.
DEFAULT_XID_WINDOW = 1024


def command_key(command: Command) -> Hashable:
    """A cross-process identity for a command (uids are process-local)."""
    if command.client_id is not None:
        return (command.client_id, command.request_id)
    return ("uid", command.uid)


@dataclass(frozen=True)
class Emission:
    """One command released by the merger.

    ``position`` is the merged position all replicas agree on:
    ``(group, sequence in that group's stream)`` — the owning group for a
    single-partition command, the lowest involved group for a rendezvous.
    """

    command: Command
    position: Tuple[int, int]
    groups: Tuple[int, ...] = ()
    xid: Optional[str] = None

    @property
    def cross_partition(self) -> bool:
        return self.xid is not None


@dataclass
class _Queued:
    item: Any
    index: int


class GroupMerger:
    """Merges per-group consensus streams under the rendezvous rule."""

    def __init__(
        self,
        n_groups: int,
        record_history: bool = False,
        conflicts: Optional[ConflictRelation] = None,
        xid_window: int = DEFAULT_XID_WINDOW,
    ):
        if n_groups < 1:
            raise ConfigurationError(
                f"n_groups must be >= 1, got {n_groups}")
        self.n_groups = n_groups
        self._queues: List[Deque[_Queued]] = [deque()
                                              for _ in range(n_groups)]
        #: Items offered per group so far == next sequence number.
        self._offered = [0] * n_groups
        #: Recently seen marker xids per group (arrival dedup).
        self._recent: List[OrderedDict] = [OrderedDict()
                                           for _ in range(n_groups)]
        self._xid_window = xid_window
        #: xid -> groups whose copy of an already-released marker is still
        #: in flight and must be discarded when it surfaces.
        self._released: Dict[str, Set[int]] = {}
        #: Every xid ever released (authoritative duplicate-absorption
        #: memory; the per-group ``_recent`` windows are only a fast
        #: path).  Grows with the number of *cross-partition* commands —
        #: one interned string each — which is the price of absorbing a
        #: duplicate that arrives arbitrarily late.
        self._released_xids: Set[str] = set()
        self.emitted = 0
        self.emitted_cross = 0
        #: Recording (tests, harness, differential suites) — off by
        #: default, it grows with the run.
        self._record = record_history
        self._conflicts = conflicts
        #: command key -> merged position of its (latest) release.
        self.positions: Dict[Hashable, Tuple[int, int]] = {}
        #: conflict class -> command keys in release order.
        self.class_history: Dict[Hashable, List[Hashable]] = {}

    # ------------------------------------------------------------- feeding

    def offer(self, group: int, item: Any) -> List[Emission]:
        """Feed the next consensus item of ``group``; return releases.

        ``item`` is a :class:`Command` or a :class:`Rendezvous`.  Calls
        must follow each group's consensus order; the caller serializes
        calls across groups (any interleaving of the per-group orders
        yields the same per-class release order — that is the point).
        """
        if not 0 <= group < self.n_groups:
            raise ConfigurationError(
                f"group {group} out of range for {self.n_groups} groups")
        index = self._offered[group]
        self._offered[group] = index + 1
        if isinstance(item, Rendezvous):
            if group not in item.groups:
                raise SimulationError(
                    f"marker {item.xid} for groups {item.groups} was "
                    f"ordered in group {group}")
            if item.command is None:
                raise SimulationError(
                    f"marker {item.xid} carries no command")
            recent = self._recent[group]
            if item.xid in recent:
                # Duplicate ordering of the same rendezvous in this group
                # (at-least-once submission); it still consumed a sequence
                # number, but must not wait for partners.
                return []
            if item.xid in self._released_xids:
                # Late duplicate of an already-released rendezvous.  The
                # per-group recent window above is a fast path only: it
                # can roll over (``xid_window`` newer markers) while a
                # slow replica's extra copy is still in flight, and such
                # a copy must not be queued — it would hold this group's
                # stream forever waiting for partner copies that will
                # never be re-offered.  The released set is the
                # authoritative memory (see the class docstring).
                owed = self._released.get(item.xid)
                if owed is not None:
                    owed.discard(group)
                    if not owed:
                        del self._released[item.xid]
                return []
            recent[item.xid] = None
            while len(recent) > self._xid_window:
                recent.popitem(last=False)
        elif not isinstance(item, Command):
            raise SimulationError(
                f"group streams carry Command or Rendezvous items, got "
                f"{type(item).__name__}")
        self._queues[group].append(_Queued(item, index))
        return self._drain()

    # ------------------------------------------------------------- release

    def _hold_ready(self, group: int, marker: Rendezvous) -> bool:
        """True when ``marker`` (head of ``group``) may be released.

        The correct rule: every involved group's head is this marker.
        """
        for involved in marker.groups:
            queue = self._queues[involved]
            if not queue:
                return False
            head = queue[0].item
            if not isinstance(head, Rendezvous) or head.xid != marker.xid:
                return False
        return True

    def _drain(self) -> List[Emission]:
        emissions: List[Emission] = []
        progress = True
        while progress:
            progress = False
            for group, queue in enumerate(self._queues):
                while queue:
                    queued = queue[0]
                    if not isinstance(queued.item, Rendezvous):
                        queue.popleft()
                        self._emit(emissions, queued.item,
                                   (group, queued.index), (group,), None)
                        progress = True
                        continue
                    marker = queued.item
                    owed = self._released.get(marker.xid)
                    if owed is not None and group in owed:
                        # Straggler copy of an already-released marker
                        # (skip-hold mutants leave these behind).
                        queue.popleft()
                        owed.discard(group)
                        if not owed:
                            del self._released[marker.xid]
                        progress = True
                        continue
                    if not self._hold_ready(group, marker):
                        break
                    self._release(emissions, marker)
                    progress = True
        return emissions

    def _release(self, emissions: List[Emission],
                 marker: Rendezvous) -> None:
        """Release a ready rendezvous: emit once, pop every copy at head."""
        position: Optional[Tuple[int, int]] = None
        remaining: Set[int] = set()
        anchor = min(marker.groups)
        for involved in sorted(marker.groups):
            queue = self._queues[involved]
            if (queue and isinstance(queue[0].item, Rendezvous)
                    and queue[0].item.xid == marker.xid):
                queued = queue.popleft()
                if involved == anchor:
                    position = (anchor, queued.index)
            else:
                remaining.add(involved)
        if position is None:
            # The anchor group's copy was not at head (only possible under
            # a mutated release rule); fall back to any popped copy so the
            # bug surfaces as divergence, not a crash.
            position = (anchor, -1)
        if remaining:
            self._released[marker.xid] = remaining
        self._released_xids.add(marker.xid)
        self._emit(emissions, marker.command, position,
                   tuple(sorted(marker.groups)), marker.xid)

    def _emit(self, emissions: List[Emission], command: Command,
              position: Tuple[int, int], groups: Tuple[int, ...],
              xid: Optional[str]) -> None:
        self.emitted += 1
        if xid is not None:
            self.emitted_cross += 1
        emission = Emission(command, position, groups, xid)
        emissions.append(emission)
        if self._record:
            key = command_key(command)
            self.positions[key] = position
            if self._conflicts is not None:
                for class_key, _writes in self._conflicts.footprint(command):
                    self.class_history.setdefault(class_key, []).append(key)

    # ---------------------------------------------------------- inspection

    def pending(self, group: int) -> int:
        """Items queued behind ``group``'s current hold (its merge lag)."""
        return len(self._queues[group])

    def held(self) -> int:
        """Groups currently blocked on an incomplete rendezvous."""
        return sum(
            1 for queue in self._queues
            if queue and isinstance(queue[0].item, Rendezvous))

    def idle(self) -> bool:
        """True when no stream has queued (unreleased) items."""
        return all(not queue for queue in self._queues)


class SkipHoldMerger(GroupMerger):
    """Seeded bug: release a rendezvous as soon as *any* copy surfaces.

    Dropping the wait-for-all-partners condition reintroduces the classic
    partitioned-ordering race: a replica that receives group A's marker
    first executes the cross command before the commands preceding its
    marker in group B, while a replica receiving B first executes them
    after — conflicting-order divergence.  The
    ``repro check --algorithm groups-rendezvous`` harness must catch this
    (tests/test_groups_check.py).
    """

    def _hold_ready(self, group: int, marker: Rendezvous) -> bool:
        return True
