"""Payloads of the partitioned ordering layer.

A cross-partition command is not broadcast once but ordered *in every
involved group* as a :class:`Rendezvous` hold marker.  The marker carries
the command itself plus the set of involved groups, so any replica can run
the release rule locally from its groups' ordered streams alone — the
merge needs no extra messages and no extra consensus round
(docs/partitioning.md).

``Rendezvous`` crosses the TCP wire inside ordinary protocol batches and
is therefore registered in :data:`repro.net.codec.WIRE_TYPES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.command import Command

__all__ = ["Rendezvous", "rendezvous_xid"]


def rendezvous_xid(command: Command) -> str:
    """The rendezvous exchange id stamped on a command's hold markers.

    All markers of one logical submission must carry the same xid — it is
    what lets a replica pair the copies ordered in different groups.  For
    client commands ``client_id#request_id`` is stable across
    retransmissions (a retransmitted cross command pairs with leftover
    markers of the original attempt instead of deadlocking behind them);
    anonymous commands fall back to the process-local uid, which is
    consistent because only the submitting router ever stamps the marker.
    """
    if command.client_id is not None:
        return f"{command.client_id}#{command.request_id}"
    return f"anon#{command.uid}"


@dataclass(frozen=True)
class Rendezvous:
    """Hold marker for one cross-partition command.

    Attributes:
        xid: Exchange id pairing this group's copy with the other groups'.
        groups: Every group the command must rendezvous in (sorted).
        command: The command to execute once all markers delivered.
    """

    xid: str
    groups: Tuple[int, ...]
    command: Optional[Command] = None

    def __repr__(self) -> str:  # compact, log-friendly
        return f"Rendezvous({self.xid}, groups={self.groups})"
