"""Command-to-group routing.

A :class:`PartitionMap` is the ordering-layer analogue of
:class:`repro.par.shard.ShardRouter`: where the shard router maps a
command's *state* footprint to executor shards inside one replica, the
partition map maps its *conflict* footprint to consensus groups.  Both use
:func:`~repro.core.command.stable_hash` so every process in a deployment
agrees, and for the example services the two coincide (their conflict
classes are their state keys).

Routing by conflict classes is what makes the partitioned order safe: two
conflicting commands always share a class, so they are either ordered by
the same group (same class hash) or forced through a rendezvous covering
both (docs/partitioning.md).  A relation without a class decomposition
cannot be partitioned — a coarse relation like
:class:`~repro.core.command.ReadWriteConflicts` degenerates honestly to a
single busy group rather than breaking correctness.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.command import Command, ConflictRelation, stable_hash
from repro.errors import ConfigurationError

__all__ = ["PartitionMap"]


class PartitionMap:
    """Maps commands to the consensus groups that must order them."""

    def __init__(self, conflicts: ConflictRelation, n_groups: int):
        if n_groups < 1:
            raise ConfigurationError(
                f"n_groups must be >= 1, got {n_groups}")
        if not conflicts.supports_footprint:
            raise ConfigurationError(
                f"{type(conflicts).__name__} has no conflict-class "
                f"decomposition; partitioned ordering routes by footprint "
                f"classes (see docs/partitioning.md)")
        self._conflicts = conflicts
        self.n_groups = n_groups

    def group_of_class(self, class_key) -> int:
        """The group that orders one conflict class."""
        return stable_hash(class_key) % self.n_groups

    def groups_of(self, command: Command) -> Tuple[int, ...]:
        """The sorted, non-empty set of groups ``command`` is ordered in.

        Commands with an empty footprint conflict with nothing, so *any*
        single group preserves correctness; they are spread by a stable
        hash of the operation for load balance.
        """
        footprint = self._conflicts.footprint(command)
        if not footprint:
            return (stable_hash((command.op,) + tuple(command.args))
                    % self.n_groups,)
        groups = {self.group_of_class(class_key)
                  for class_key, _writes in footprint}
        return tuple(sorted(groups))

    def is_cross_partition(self, command: Command) -> bool:
        return len(self.groups_of(command)) > 1
